/**
 * @file
 * Example: engineering a one-shot outage and watching the operator's
 * protocol respond minute by minute.
 *
 * Scenario: an attacker colocates four multi-GPU servers (950 W peak
 * each) behind 0.8 kW of subscribed capacity and a 0.5 kWh built-in
 * battery bank. It waits for the afternoon peak, then discharges 3 kW of
 * behind-the-meter heat. We print the live timeline: emergency capping,
 * the battery pressing on regardless, and the 45 C automatic shutdown.
 *
 * Run: ./build/examples/one_shot_outage
 */

#include <iostream>

#include "core/engine.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;

    SimulationConfig config = SimulationConfig::paperDefault();
    config.attackLoad = Kilowatts(3.0); // 4 x 750 W from batteries
    config.batterySpec.maxDischargeRate = Kilowatts(3.0);
    config.batterySpec.capacity = KilowattHours(0.5);

    Simulation sim(config,
                   makeOneShotPolicy(config, Kilowatts(7.0),
                                     /*arm_delay=*/12 * 60));

    std::cout << "Waiting for a high-load window, then striking...\n\n";
    TextTable table({"t (min)", "metered kW", "heat kW", "inlet C",
                     "operator"});
    bool printing = false;
    MinuteIndex strike_time = -1;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        if (!printing && r.attackBatteryPower.value() > 1.0) {
            printing = true;
            strike_time = r.time;
        }
        if (printing && strike_time >= 0 &&
            r.time - strike_time < 30) {
            table.addRow(r.time - strike_time,
                         fixed(r.meteredTotal.value(), 2),
                         fixed(r.actualHeat.value(), 2),
                         fixed(r.maxInlet.value(), 1),
                         r.outage          ? "OUTAGE (PDU off)"
                         : r.cappingActive ? "emergency capping"
                                           : "normal");
        }
    });
    sim.runDays(2.0);
    table.print(std::cout);

    const auto &m = sim.metrics();
    std::cout << "\noutages: " << m.outages()
              << ", outage minutes: " << m.outageMinutes()
              << ", hottest inlet: " << fixed(m.maxInlet().max(), 1)
              << " C\n";
    if (m.outages() > 0) {
        std::cout << "The shared PDU powered off: every tenant in the edge "
                     "site lost service.\n";
    }
    return 0;
}
