/**
 * @file
 * Example: a coordinated wide-area one-shot campaign.
 *
 * The paper warns that a one-shot attack "can also be coordinated across
 * multiple edge colocations for a wide-area service interruption" -- the
 * nightmare scenario for edge-assisted driving. This example arms
 * identical attackers in six independent edge sites for the same strike
 * minute (the regional evening peak) and reports the fleet-level
 * availability impact.
 *
 * Run: ./build/examples/coordinated_fleet_attack
 */

#include <iostream>

#include "core/fleet.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;

    SimulationConfig config = SimulationConfig::paperDefault();
    config.attackLoad = Kilowatts(3.0);
    config.batterySpec.maxDischargeRate = Kilowatts(3.0);
    config.batterySpec.capacity = KilowattHours(0.5);

    const std::size_t num_sites = 6;
    const MinuteIndex strike = kMinutesPerDay + 18 * 60; // day-1 evening
    FleetSimulation fleet(config, num_sites, strike, Kilowatts(6.6));

    std::cout << "Arming " << num_sites
              << " edge sites for a coordinated strike at minute "
              << strike << " (day-1 evening peak)...\n";
    fleet.run(2 * kMinutesPerDay);

    const FleetResult &r = fleet.result();
    TextTable table({"metric", "value"});
    table.addRow("sites", r.numSites);
    table.addRow("sites suffering an outage", r.sitesWithOutage);
    table.addRow("max sites down simultaneously",
                 r.maxSimultaneousOutages);
    table.addRow("wide-area interruption (>= half down), minutes",
                 r.wideAreaInterruptionMinutes);
    table.addRow("first outage after strike (min)", r.firstOutageDelay);
    table.print(std::cout);

    TextTable per_site({"site", "outage minutes"});
    for (std::size_t s = 0; s < r.siteOutageMinutes.size(); ++s)
        per_site.addRow(s, r.siteOutageMinutes[s]);
    per_site.print(std::cout);

    std::cout << "\nA single site outage strands its tenants; "
              << r.maxSimultaneousOutages
              << " sites down at once leaves no nearby edge to fail over "
                 "to -- the paper's wide-area interruption scenario.\n";
    return 0;
}
