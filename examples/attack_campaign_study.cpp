/**
 * @file
 * Example: a quarter-long repeated-attack campaign study.
 *
 * Compares the three repeated-attack strategies over 90 simulated days of
 * the default 8 kW edge colocation, then prices the damage with the cost
 * model -- the workflow a security analyst would use to size the threat
 * for a specific site.
 *
 * Run: ./build/examples/attack_campaign_study
 */

#include <iostream>
#include <memory>
#include <vector>

#include "core/cost.hh"
#include "core/engine.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;

    const SimulationConfig config = SimulationConfig::paperDefault();
    const double days = 90.0;
    const CostModel cost;

    struct Row
    {
        const char *name;
        std::unique_ptr<AttackPolicy> policy;
    };
    std::vector<Row> rows;
    rows.push_back({"No attack", std::make_unique<StandbyPolicy>()});
    rows.push_back({"Random (8%)", makeRandomPolicy(config, 0.08)});
    rows.push_back({"Myopic (7.4 kW)",
                    makeMyopicPolicy(config, Kilowatts(7.4))});
    rows.push_back({"Foresighted (w=14)",
                    makeForesightedPolicy(config, 14.0)});

    std::cout << "Simulating " << days << " days per strategy...\n";
    TextTable table({"strategy", "attack h/day", "emergencies",
                     "emergency %", "norm. 95p latency",
                     "tenant damage $/yr", "attacker cost $/yr"});
    for (auto &row : rows) {
        Simulation sim(config, std::move(row.policy));
        sim.runDays(days);
        const auto &m = sim.metrics();
        const auto benign = cost.benignAnnualCost(config, m);
        const auto attacker = cost.attackerAnnualCost(config, m);
        table.addRow(row.name, fixed(m.attackHoursPerDay(), 2),
                     m.emergencies(),
                     fixed(100.0 * m.emergencyFraction(), 2),
                     m.emergencyPerf().count()
                         ? fixed(m.emergencyPerf().mean(), 2)
                         : "n/a",
                     fixed(benign.total(), 0),
                     fixed(attacker.total(), 0));
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    table.print(std::cout);

    std::cout << "\nReading: the learning attacker converts a ~$6-7K/year "
                 "budget into tens of thousands of dollars of tenant "
                 "damage; the load-oblivious attacker achieves almost "
                 "nothing with the same hardware.\n";
    return 0;
}
