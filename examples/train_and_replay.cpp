/**
 * @file
 * Example: train the Foresighted attacker once, persist its Q tables, and
 * replay the frozen policy on a fresh site.
 *
 * Useful for studies that separate the learning phase from evaluation
 * (e.g., "how would a pre-trained attacker perform against MY site?"),
 * and it demonstrates the saveTables/loadTables API.
 *
 * Run: ./build/examples/train_and_replay
 */

#include <iostream>
#include <sstream>

#include "core/engine.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;

    const SimulationConfig config = SimulationConfig::paperDefault();

    // ---- Phase 1: train online for 60 days. ----
    std::cout << "Training Foresighted (w = 14) for 60 days...\n";
    auto trained_owner = makeForesightedPolicy(config, 14.0);
    ForesightedPolicy *trained = trained_owner.get();
    Simulation train_sim(config, std::move(trained_owner));
    train_sim.runDays(60.0);
    std::stringstream tables;
    trained->saveTables(tables);
    std::cout << "  training run: " << train_sim.metrics().emergencies()
              << " emergencies ("
              << fixed(100.0 * train_sim.metrics().emergencyFraction(), 2)
              << "% of time)\n";

    // ---- Phase 2: replay the frozen policy on a different year. ----
    std::cout << "Replaying the frozen policy on a fresh site "
                 "(different seed, exploration off)...\n";
    auto replay_config = config;
    replay_config.seed = 4242; // different tenants and traces
    auto replay_owner = makeForesightedPolicy(replay_config, 14.0,
                                              /*warm_start=*/false);
    replay_owner->loadTables(tables);
    Simulation replay_sim(replay_config, std::move(replay_owner));
    replay_sim.runDays(60.0);

    TextTable table({"phase", "emergencies", "emergency %",
                     "attack h/day"});
    table.addRow("training (seed 42)", train_sim.metrics().emergencies(),
                 fixed(100.0 * train_sim.metrics().emergencyFraction(), 2),
                 fixed(train_sim.metrics().attackHoursPerDay(), 2));
    table.addRow("replay (seed 4242)",
                 replay_sim.metrics().emergencies(),
                 fixed(100.0 * replay_sim.metrics().emergencyFraction(),
                       2),
                 fixed(replay_sim.metrics().attackHoursPerDay(), 2));
    table.print(std::cout);

    std::cout << "\nThe learned timing transfers across sites because the "
                 "policy conditions only on (battery, estimated load) -- "
                 "the paper's claim that the attack generalizes across "
                 "load patterns.\n";
    return 0;
}
