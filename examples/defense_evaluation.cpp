/**
 * @file
 * Example: the operator's defense playbook (paper Section VII).
 *
 * Runs a Foresighted attack campaign against an instrumented operator:
 * a thermal-residual CUSUM detector cross-checking power meters against
 * thermal sensors, a per-server airflow audit to pinpoint the attacker,
 * and an SLA-statistics monitor. Then shows the two prevention knobs:
 * jamming the voltage side channel and adding cooling capacity.
 *
 * Run: ./build/examples/defense_evaluation
 */

#include <iostream>

#include "core/engine.hh"
#include "defense/detectors.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;

    const SimulationConfig config = SimulationConfig::paperDefault();

    // ---- Detection: instrument a 30-day attack campaign. ----
    Simulation sim(config, makeForesightedPolicy(config, 14.0));
    defense::ThermalResidualDetector residual({}, config.cooling);
    defense::AirflowAudit audit({}, config.numServers());
    defense::SlaMonitor::Params sla_params;
    sla_params.slaTemperature = Celsius(27.5);
    sla_params.slaBudget = 0.005;
    defense::SlaMonitor sla(sla_params);
    Rng rng(1234);

    sim.setMinuteCallback([&](const MinuteRecord &r) {
        residual.observeMinute(r.meteredTotal, r.supply, rng);
        sla.observeMinute(r.maxInlet);
        audit.observeMinute(sim.lastServerHeat(), sim.lastServerMetered(),
                            rng);
    });
    std::cout << "Running a 30-day Foresighted campaign against an "
                 "instrumented operator...\n\n";
    sim.runDays(30.0);

    TextTable detection({"defense", "result"});
    detection.addRow(
        "thermal residual (CUSUM)",
        residual.alarmed()
            ? "ALARM after " +
                  fixed(residual.alarmLatencyMinutes() / 60.0, 1) + " h"
            : std::string("no alarm"));
    detection.addRow(
        "temperature SLA statistics",
        sla.alarmed() ? "ALARM after " +
                            fixed(sla.alarmLatencyMinutes() / 60.0 / 24.0,
                                  1) +
                            " days"
                      : std::string("no alarm"));
    std::string flagged = "servers:";
    for (std::size_t s : audit.flaggedServers())
        flagged += " " + std::to_string(s);
    detection.addRow("airflow audit pinpoints",
                     audit.flaggedServers().empty() ? "none" : flagged);
    detection.print(std::cout);
    std::cout << "(attacker owns servers 0.."
              << config.attackerNumServers - 1 << ")\n";

    // ---- Prevention knob 1: jam the voltage side channel. ----
    std::cout << "\nPrevention: jamming the side channel\n";
    TextTable jam({"extra estimation noise", "emergency h/yr"});
    for (double noise : {0.0, 0.10, 0.20}) {
        auto jammed = config;
        jammed.sideChannel.extraRelativeNoise = noise;
        Simulation run(jammed, makeForesightedPolicy(jammed, 14.0));
        run.runDays(60.0);
        jam.addRow(fixed(noise, 2),
                   fixed(run.metrics().emergencyHoursPerYear(), 0));
    }
    jam.print(std::cout);

    // ---- Prevention knob 2: extra cooling capacity. ----
    std::cout << "\nPrevention: extra cooling capacity\n";
    TextTable extra({"cooling capacity", "emergency h/yr"});
    for (double factor : {1.0, 1.05, 1.10}) {
        auto upgraded = config;
        upgraded.cooling.capacity = config.capacity * factor;
        Simulation run(upgraded, makeForesightedPolicy(upgraded, 14.0));
        run.runDays(60.0);
        extra.addRow(fixed(8.0 * factor, 1) + " kW",
                     fixed(run.metrics().emergencyHoursPerYear(), 0));
    }
    extra.print(std::cout);

    std::cout << "\nTakeaway (paper Sec. VII): the attack is detectable "
                 "within hours by cross-checking meters against thermal "
                 "sensors, and the airflow audit localizes the attacker "
                 "for eviction -- the threat exists only while operators "
                 "rely on power meters alone.\n";
    return 0;
}
