/**
 * @file
 * Quickstart: build the paper's default 8 kW edge colocation, run a month
 * under the Myopic attacker, and print the headline numbers.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/cost.hh"
#include "core/engine.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;

    // 1. The paper's Table I configuration: 8 kW, 4 tenants, 40 servers,
    //    attacker with 0.8 kW subscription and a 0.2 kWh built-in battery.
    SimulationConfig config = SimulationConfig::paperDefault();

    // 2. Pick an attack policy. Myopic attacks greedily whenever the
    //    side-channel estimate crosses 7.4 kW.
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));

    // 3. Run one simulated month (one-minute slots).
    std::cout << "Simulating 30 days of the 8 kW edge colocation under a "
                 "Myopic thermal attacker...\n";
    sim.runDays(30.0);

    // 4. Inspect the damage.
    const SimulationMetrics &m = sim.metrics();
    TextTable table({"metric", "value"});
    table.addRow("simulated days", fixed(m.minutes() / 1440.0, 1));
    table.addRow("attack time (h/day)", fixed(m.attackHoursPerDay(), 2));
    table.addRow("thermal emergencies", m.emergencies());
    table.addRow("emergency time (% of total)",
                 fixed(100.0 * m.emergencyFraction(), 2));
    table.addRow("mean inlet rise (deg C)", fixed(m.inletRise().mean(), 2));
    table.addRow("hottest inlet seen (deg C)",
                 fixed(m.maxInlet().max(), 1));
    table.addRow("norm. 95p latency during emergencies",
                 m.emergencyPerf().count()
                     ? fixed(m.emergencyPerf().mean(), 2)
                     : "n/a");
    table.print(std::cout);

    // 5. What does it cost whom?
    CostModel cost;
    const auto attacker = cost.attackerAnnualCost(config, m);
    const auto benign = cost.benignAnnualCost(config, m);
    std::cout << "\nAttacker annual cost:  $" << fixed(attacker.total(), 0)
              << "  (subscription $" << fixed(attacker.subscriptionUsd, 0)
              << ", energy $" << fixed(attacker.energyUsd, 0)
              << ", servers $" << fixed(attacker.serversUsd, 0) << ")\n";
    std::cout << "Benign tenants' annualized damage:  $"
              << fixed(benign.total(), 0) << "\n";
    return 0;
}
