/**
 * @file
 * Built-in battery energy model.
 *
 * The paper validates (Fig. 7(b)) that a *linear* energy model,
 * b_{k+1} = min(b_k + e_k, B), captures server-integrated battery dynamics
 * for attack purposes; charge and discharge rates are bounded and losses
 * make effective charging slower than discharging. This module implements
 * exactly that model, with explicit efficiency knobs that default to the
 * asymmetry observed in the paper's prototype.
 */

#ifndef ECOLO_BATTERY_BATTERY_HH
#define ECOLO_BATTERY_BATTERY_HH

#include "util/state_io.hh"
#include "util/units.hh"

namespace ecolo::battery {

/** Static battery characteristics. */
struct BatterySpec
{
    KilowattHours capacity{0.2};      //!< usable energy, Table I default
    Kilowatts maxChargeRate{0.2};     //!< vendor-recommended charge power
    Kilowatts maxDischargeRate{1.0};  //!< peak deliverable power
    double chargeEfficiency = 0.90;   //!< stored / grid energy while charging
    double dischargeEfficiency = 0.95;//!< delivered / stored energy
    /**
     * Optional thermal dependence (the paper notes "even more complicated
     * and detailed battery models (e.g., impact of ambient temperature)
     * may be adopted [but do] not offer much additional insight" -- this
     * knob lets the ablation benchmark check that claim): usable capacity
     * shrinks by this fraction per kelvin of ambient above the reference.
     */
    double capacityLossPerKelvin = 0.0;
    Celsius thermalReference{25.0};   //!< no derating at or below this
};

/** Mutable battery state following the linear energy model. */
class Battery
{
  public:
    explicit Battery(BatterySpec spec, double initial_soc = 1.0);

    const BatterySpec &spec() const { return spec_; }

    /** Stored energy. */
    KilowattHours energy() const { return energy_; }

    /** State of charge in [0, 1]. */
    double soc() const;

    bool full() const;
    bool empty() const;

    /**
     * Charge from the grid for a duration at the requested grid-side power
     * (clamped to the max charge rate and remaining headroom).
     * @return grid power actually drawn, averaged over the duration.
     */
    Kilowatts charge(Kilowatts requested_grid_power, Seconds dt);

    /**
     * Discharge to deliver power to the load for a duration. The requested
     * power is clamped to the max discharge rate, and delivery degrades
     * once stored energy runs out mid-slot.
     * @return load-side power actually delivered, averaged over dt.
     */
    Kilowatts discharge(Kilowatts requested_delivered_power, Seconds dt);

    /**
     * Longest duration the battery can sustain the given delivered power
     * before running empty.
     */
    Seconds sustainableFor(Kilowatts delivered_power) const;

    /** Force the state of charge (tests/initialization). */
    void setSoc(double soc);

    /**
     * Inform the battery of the ambient temperature it sits in (the
     * attacker's servers breathe the data center air). Only meaningful
     * when spec.capacityLossPerKelvin > 0; stored energy above the
     * derated usable capacity is curtailed.
     */
    void setAmbient(Celsius ambient);

    /** Usable capacity at the current ambient temperature. */
    KilowattHours usableCapacity() const;

    /**
     * Inject a capacity-fade fault (faults::FaultKind::BatteryFade): the
     * usable capacity is multiplied by this factor and stored energy above
     * the faded ceiling is curtailed. 1.0 restores the healthy model
     * bit-identically.
     */
    void setFaultCapacityFactor(double factor);
    double faultCapacityFactor() const { return faultCapacityFactor_; }

    /** Serialize / restore the mutable state (checkpointing). */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

  private:
    BatterySpec spec_;
    KilowattHours energy_;
    Celsius ambient_{25.0};
    double faultCapacityFactor_ = 1.0;
};

} // namespace ecolo::battery

#endif // ECOLO_BATTERY_BATTERY_HH
