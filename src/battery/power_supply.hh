/**
 * @file
 * Dual-source power supply: the attacker-side component that blends PDU
 * power with built-in battery power (Fig. 4(a) in the paper).
 *
 * The supply enforces the attacker's contract with the operator -- grid draw
 * never exceeds the subscribed capacity -- while letting the servers consume
 * more than that by discharging the battery. The difference between server
 * power (heat) and grid power (what the meter sees) is exactly the paper's
 * "behind the meter" cooling load.
 */

#ifndef ECOLO_BATTERY_POWER_SUPPLY_HH
#define ECOLO_BATTERY_POWER_SUPPLY_HH

#include <optional>

#include "battery/battery.hh"
#include "util/units.hh"

namespace ecolo::battery {

/** Outcome of one supply timeslot. */
struct SupplyResult
{
    Kilowatts gridPower;    //!< drawn from the PDU (what the meter sees)
    Kilowatts batteryPower; //!< delivered by the battery (+) or stored (-)
    Kilowatts serverPower;  //!< power actually consumed by the servers
};

/** What the supply should do this slot. */
enum class SupplyMode
{
    /** Serve the load from the grid only (normal operation). */
    GridOnly,
    /** Serve the load and charge the battery with leftover grid headroom. */
    ChargeBattery,
    /** Serve the load from grid up to the cap plus battery discharge. */
    DischargeBattery,
};

/** Dual-source (grid + battery) supply with a hard grid-draw cap. */
class DualSourcePowerSupply
{
  public:
    DualSourcePowerSupply(BatterySpec battery_spec, Kilowatts grid_cap,
                          double initial_soc = 1.0);

    Battery &battery() { return battery_; }
    const Battery &battery() const { return battery_; }
    Kilowatts gridCap() const { return gridCap_; }

    /**
     * Run one timeslot.
     *
     * @param demand     power the servers want to consume this slot
     * @param mode       grid-only / charge / discharge
     * @param dt         slot duration
     * @param grid_limit optional tighter grid cap for this slot (emergency
     *                   capping lowers the allowed draw below the
     *                   subscription)
     * @return           the realized grid/battery/server power split
     *
     * Invariants: result.gridPower <= min(gridCap, grid_limit) (the
     * operator-enforced subscription / cap), and result.serverPower =
     * result.gridPower + max(result.batteryPower, 0) - charging draw.
     */
    SupplyResult step(Kilowatts demand, SupplyMode mode, Seconds dt,
                      std::optional<Kilowatts> grid_limit = std::nullopt);

    /** Serialize / restore the mutable state (checkpointing). */
    void saveState(util::StateWriter &writer) const
    { battery_.saveState(writer); }
    void loadState(util::StateReader &reader)
    { battery_.loadState(reader); }

  private:
    Battery battery_;
    Kilowatts gridCap_;
};

} // namespace ecolo::battery

#endif // ECOLO_BATTERY_POWER_SUPPLY_HH
