#include "battery/power_supply.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ecolo::battery {

DualSourcePowerSupply::DualSourcePowerSupply(BatterySpec battery_spec,
                                             Kilowatts grid_cap,
                                             double initial_soc)
    : battery_(battery_spec, initial_soc), gridCap_(grid_cap)
{
    ECOLO_ASSERT(gridCap_.value() > 0.0, "grid cap must be positive");
}

SupplyResult
DualSourcePowerSupply::step(Kilowatts demand, SupplyMode mode, Seconds dt,
                            std::optional<Kilowatts> grid_limit)
{
    ECOLO_ASSERT(demand.value() >= 0.0, "negative power demand");
    const Kilowatts cap =
        grid_limit ? std::min(gridCap_, *grid_limit) : gridCap_;
    ECOLO_ASSERT(cap.value() >= 0.0, "negative grid limit");
    SupplyResult result{Kilowatts(0.0), Kilowatts(0.0), Kilowatts(0.0)};

    switch (mode) {
      case SupplyMode::GridOnly: {
        // Demand beyond the cap is simply unservable without the battery.
        result.gridPower = std::min(demand, cap);
        result.serverPower = result.gridPower;
        break;
      }
      case SupplyMode::ChargeBattery: {
        const Kilowatts load_grid = std::min(demand, cap);
        const Kilowatts headroom =
            std::max(Kilowatts(0.0), cap - load_grid);
        const Kilowatts charge_draw = battery_.charge(headroom, dt);
        result.gridPower = load_grid + charge_draw;
        result.batteryPower = -charge_draw;
        result.serverPower = load_grid;
        break;
      }
      case SupplyMode::DischargeBattery: {
        result.gridPower = std::min(demand, cap);
        const Kilowatts shortfall =
            std::max(Kilowatts(0.0), demand - result.gridPower);
        result.batteryPower = battery_.discharge(shortfall, dt);
        result.serverPower = result.gridPower + result.batteryPower;
        break;
      }
    }

    ECOLO_ASSERT(result.gridPower.value() <= cap.value() + 1e-9,
                 "grid draw exceeded the subscription cap");
    return result;
}

} // namespace ecolo::battery
