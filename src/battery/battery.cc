#include "battery/battery.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ecolo::battery {

Battery::Battery(BatterySpec spec, double initial_soc)
    : spec_(spec), energy_(spec.capacity * std::clamp(initial_soc, 0.0, 1.0))
{
    ECOLO_ASSERT(spec_.capacity.value() > 0.0,
                 "battery capacity must be positive");
    ECOLO_ASSERT(spec_.maxChargeRate.value() >= 0.0 &&
                 spec_.maxDischargeRate.value() > 0.0,
                 "battery rates must be non-negative / positive");
    ECOLO_ASSERT(spec_.chargeEfficiency > 0.0 &&
                 spec_.chargeEfficiency <= 1.0 &&
                 spec_.dischargeEfficiency > 0.0 &&
                 spec_.dischargeEfficiency <= 1.0,
                 "battery efficiencies must be in (0, 1]");
}

double
Battery::soc() const
{
    return energy_ / spec_.capacity;
}

KilowattHours
Battery::usableCapacity() const
{
    // *1.0 when healthy, so the fault-free path stays bit-identical.
    if (spec_.capacityLossPerKelvin <= 0.0)
        return spec_.capacity * faultCapacityFactor_;
    const double above =
        std::max(0.0, (ambient_ - spec_.thermalReference).value());
    const double fraction =
        std::max(0.5, 1.0 - spec_.capacityLossPerKelvin * above);
    return spec_.capacity * fraction * faultCapacityFactor_;
}

void
Battery::setAmbient(Celsius ambient)
{
    ambient_ = ambient;
    energy_ = clamp(energy_, KilowattHours(0.0), usableCapacity());
}

bool
Battery::full() const
{
    return energy_.value() >= usableCapacity().value() - 1e-12;
}

bool
Battery::empty() const
{
    return energy_.value() <= 1e-12;
}

Kilowatts
Battery::charge(Kilowatts requested_grid_power, Seconds dt)
{
    ECOLO_ASSERT(dt.value() > 0.0, "non-positive charge duration");
    const Kilowatts grid_power = clamp(requested_grid_power, Kilowatts(0.0),
                                       spec_.maxChargeRate);
    if (grid_power.value() <= 0.0 || full())
        return Kilowatts(0.0);

    const KilowattHours headroom = usableCapacity() - energy_;
    const KilowattHours stored_if_full_slot =
        grid_power * dt * spec_.chargeEfficiency;
    const KilowattHours stored = std::min(stored_if_full_slot, headroom);
    energy_ += stored;
    // Grid draw averaged over the slot (charging stops once full).
    return stored / spec_.chargeEfficiency / dt;
}

Kilowatts
Battery::discharge(Kilowatts requested_delivered_power, Seconds dt)
{
    ECOLO_ASSERT(dt.value() > 0.0, "non-positive discharge duration");
    const Kilowatts delivered_power =
        clamp(requested_delivered_power, Kilowatts(0.0),
              spec_.maxDischargeRate);
    if (delivered_power.value() <= 0.0 || empty())
        return Kilowatts(0.0);

    const KilowattHours deliverable = KilowattHours(
        energy_.value() * spec_.dischargeEfficiency);
    const KilowattHours wanted = delivered_power * dt;
    const KilowattHours delivered = std::min(wanted, deliverable);
    energy_ -= KilowattHours(delivered.value() / spec_.dischargeEfficiency);
    energy_ = clamp(energy_, KilowattHours(0.0), spec_.capacity);
    return delivered / dt;
}

Seconds
Battery::sustainableFor(Kilowatts delivered_power) const
{
    const Kilowatts p = clamp(delivered_power, Kilowatts(0.0),
                              spec_.maxDischargeRate);
    if (p.value() <= 0.0)
        return hours(1e9); // effectively forever
    const KilowattHours deliverable = KilowattHours(
        energy_.value() * spec_.dischargeEfficiency);
    return deliverable / p;
}

void
Battery::setSoc(double soc_value)
{
    ECOLO_ASSERT(soc_value >= 0.0 && soc_value <= 1.0,
                 "state of charge out of [0,1]: ", soc_value);
    energy_ = spec_.capacity * soc_value;
}

void
Battery::setFaultCapacityFactor(double factor)
{
    ECOLO_ASSERT(factor >= 0.0 && factor <= 1.0,
                 "battery fault factor out of [0,1]: ", factor);
    faultCapacityFactor_ = factor;
    energy_ = clamp(energy_, KilowattHours(0.0), usableCapacity());
}

void
Battery::saveState(util::StateWriter &writer) const
{
    writer.tag("BATT");
    writer.f64(energy_.value());
    writer.f64(ambient_.value());
    writer.f64(faultCapacityFactor_);
}

void
Battery::loadState(util::StateReader &reader)
{
    reader.tag("BATT");
    energy_ = KilowattHours(reader.f64());
    ambient_ = Celsius(reader.f64());
    faultCapacityFactor_ = reader.f64();
}

} // namespace ecolo::battery
