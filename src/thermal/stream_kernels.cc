#include "thermal/stream_kernels.hh"

namespace ecolo::thermal::kernels {

// The elementwise kernels are deliberately out-of-line (and never
// LTO'd): the scalar model and the lane bank execute the same machine
// code, so vector-body-vs-epilogue contraction choices apply per
// element identically in both callers.

void
streamAccumAdvance(double *a, const double *pnew, const double *slot,
                   double lambda, double tail, std::size_t count)
{
    for (std::size_t k = 0; k < count; ++k)
        a[k] = lambda * a[k] + pnew[k] - tail * slot[k];
}

void
streamCombineFirst(double *s, const double *a, double w, std::size_t count)
{
    for (std::size_t k = 0; k < count; ++k)
        s[k] = w * a[k];
}

void
streamCombineAdd(double *s, const double *a, double w, std::size_t count)
{
    for (std::size_t k = 0; k < count; ++k)
        s[k] += w * a[k];
}

#if defined(__GNUC__) || defined(__clang__)

/** 8-wide double vector; on ISAs narrower than 512 bits the compiler
 * lowers each op to several native-width ops, lane math unchanged. */
typedef double Vec8 __attribute__((vector_size(64)));

// The helpers always inline into the clones below, so the by-value
// vector ABI the -Wpsabi warning is about never crosses a real call.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace {

__attribute__((always_inline)) inline Vec8
loadVec8(const double *p)
{
    Vec8 v;
    __builtin_memcpy(&v, p, sizeof(v)); // unaligned vector load
    return v;
}

__attribute__((always_inline)) inline void
storeVec8(double *p, Vec8 v)
{
    __builtin_memcpy(p, &v, sizeof(v));
}

} // namespace

// Multiversioning emits an IFUNC whose resolver gcc instruments like
// any other function; under TSan/ASan that resolver calls into the
// sanitizer runtime during IRELATIVE relocation, before the runtime's
// TLS exists, and the process segfaults at load. Sanitizer builds take
// the default-ISA body instead — they measure races, not throughput —
// and both the scalar model and the lane bank still share that one
// body, so the bit-identity contracts are unaffected.
#if defined(__x86_64__) && !defined(__clang__) \
        && !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define ECOLO_KERNEL_CLONES \
    __attribute__((target_clones("avx512f", "avx2,fma", "default")))
#else
#define ECOLO_KERNEL_CLONES
#endif

ECOLO_KERNEL_CLONES
void
accumulateColumnAxpy(const double *ut, const double *s, double *rises,
                     std::size_t n)
{
    // Register blocking: an 8-row block of the output accumulates in
    // four explicit vector registers for the whole column sweep, so
    // rises[] is touched once per block instead of once per column
    // group, and the four independent chains hide FMA latency. The
    // explicit vector type pins the lowering -- GCC's auto-vectorizer
    // scalarizes the equivalent array form. Per-lane math and the final
    // chain association are fixed, so results do not depend on n or on
    // which clone the resolver picks being re-lowered differently.
    constexpr std::size_t kBlock = 8;
    std::size_t i0 = 0;
    for (; i0 + kBlock <= n; i0 += kBlock) {
        Vec8 acc0 = {}, acc1 = {}, acc2 = {}, acc3 = {};
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const double *c0 = &ut[j * n + i0];
            const double *c1 = c0 + n;
            const double *c2 = c1 + n;
            const double *c3 = c2 + n;
            acc0 += s[j] * loadVec8(c0);
            acc1 += s[j + 1] * loadVec8(c1);
            acc2 += s[j + 2] * loadVec8(c2);
            acc3 += s[j + 3] * loadVec8(c3);
        }
        for (; j < n; ++j)
            acc0 += s[j] * loadVec8(&ut[j * n + i0]);
        const Vec8 sum = (acc0 + acc1) + (acc2 + acc3);
        storeVec8(&rises[i0], loadVec8(&rises[i0]) + sum);
    }
    for (; i0 < n; ++i0) {
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            acc += s[j] * ut[j * n + i0];
        rises[i0] += acc;
    }
}

ECOLO_KERNEL_CLONES
void
laneAccumulateColumnAxpy8(const double *ut, const double *sK,
                          double *risesK, std::size_t n)
{
    // The vector axis is the lane dimension: one Vec8 holds the eight
    // lanes' values of a single (row, column) term. To keep lane l's
    // result bitwise equal to the scalar GEMV, rows follow the scalar
    // association exactly -- rows the scalar processes in 8-blocks use
    // its four j-chains (leftover columns into chain 0, combined as
    // (c0 + c1) + (c2 + c3)); the scalar's tail rows use its single
    // serial chain. Multiplication operand roles match too: the column
    // state is the vector operand, the matrix entry the broadcast one,
    // and a * b is IEEE-commutative bitwise.
    const std::size_t blocked = (n / 8) * 8;
    for (std::size_t i = 0; i < blocked; ++i) {
        Vec8 acc0 = {}, acc1 = {}, acc2 = {}, acc3 = {};
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            acc0 += loadVec8(&sK[j * 8]) * ut[j * n + i];
            acc1 += loadVec8(&sK[(j + 1) * 8]) * ut[(j + 1) * n + i];
            acc2 += loadVec8(&sK[(j + 2) * 8]) * ut[(j + 2) * n + i];
            acc3 += loadVec8(&sK[(j + 3) * 8]) * ut[(j + 3) * n + i];
        }
        for (; j < n; ++j)
            acc0 += loadVec8(&sK[j * 8]) * ut[j * n + i];
        const Vec8 sum = (acc0 + acc1) + (acc2 + acc3);
        storeVec8(&risesK[i * 8], loadVec8(&risesK[i * 8]) + sum);
    }
    for (std::size_t i = blocked; i < n; ++i) {
        Vec8 acc = {};
        for (std::size_t j = 0; j < n; ++j)
            acc += loadVec8(&sK[j * 8]) * ut[j * n + i];
        storeVec8(&risesK[i * 8], loadVec8(&risesK[i * 8]) + acc);
    }
}

#pragma GCC diagnostic pop

#else // !(__GNUC__ || __clang__): portable column-AXPY fallbacks

void
accumulateColumnAxpy(const double *ut, const double *s, double *rises,
                     std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j) {
        const double sj = s[j];
        const double *col = &ut[j * n];
        for (std::size_t i = 0; i < n; ++i)
            rises[i] += sj * col[i];
    }
}

void
laneAccumulateColumnAxpy8(const double *ut, const double *sK,
                          double *risesK, std::size_t n)
{
    // Mirrors the portable scalar form: a column sweep accumulating
    // straight into rises, so per (row, lane) the association is the
    // same single ascending-j chain rooted at the output element.
    for (std::size_t j = 0; j < n; ++j) {
        const double *sl = &sK[j * kLaneWidth];
        const double *col = &ut[j * n];
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t l = 0; l < kLaneWidth; ++l)
                risesK[i * kLaneWidth + l] += sl[l] * col[i];
    }
}

#endif

} // namespace ecolo::thermal::kernels
