/**
 * @file
 * Truncated separable factorization of a heat-distribution tensor.
 *
 * The impulse-response tensor h[i][j][tau] is, for the analytic default,
 * *exactly* separable: h = G[i][j] * k[tau] (spatial gain times a shared
 * temporal kernel). CFD-extracted tensors are close to separable -- the
 * airflow pattern fixes the spatial structure while the thermal build-up
 * fixes the temporal shape -- so a few separable terms reproduce them to
 * within extraction noise. This module computes the optimal (in the
 * Frobenius sense) rank-R decomposition
 *
 *     h[i][j][tau] ~= sum_r  U_r[i][j] * V_r[tau]
 *
 * via an eigendecomposition of the H x H Gram matrix of the mode-3
 * unfolding (H = horizon, typically 10), which is exactly the truncated
 * SVD of that unfolding. MatrixThermalModel uses the factors to turn the
 * O(N^2 H) per-minute convolution into R temporally-smoothed power states
 * (O(N H) each) followed by R N x N GEMVs -- O(R (N H + N^2)) total.
 */

#ifndef ECOLO_THERMAL_FACTORIZATION_HH
#define ECOLO_THERMAL_FACTORIZATION_HH

#include <cstddef>
#include <vector>

namespace ecolo::thermal {

class HeatDistributionMatrix;

/** Knobs for the truncated factorization. */
struct FactorizationOptions
{
    /**
     * Relative Frobenius-norm reconstruction error bound: the smallest
     * rank meeting it is chosen. The analytic matrix factorizes at rank 1
     * with error ~1e-16; CFD tensors typically need 2-4 terms at 1e-6.
     */
    double relTolerance = 1e-6;
    /** Largest admissible rank; 0 means the full horizon (exact). */
    std::size_t maxRank = 0;
};

/** The computed factors, ordered by decreasing singular value. */
class TemporalFactorization
{
  public:
    /** An empty rank-0 factorization (placeholder until compute()). */
    TemporalFactorization() = default;

    /** Factorize the given tensor. Always succeeds: at rank == horizon
     * the decomposition is numerically exact, so the achieved error only
     * exceeds opts.relTolerance when opts.maxRank truncates it. */
    static TemporalFactorization
    compute(const HeatDistributionMatrix &matrix,
            FactorizationOptions opts = FactorizationOptions());

    std::size_t rank() const { return temporal_.size(); }
    std::size_t numServers() const { return numServers_; }
    std::size_t horizon() const { return horizon_; }

    /** Achieved relative Frobenius reconstruction error. */
    double relError() const { return relError_; }

    /** Spatial factor U_r, row-major N x N (includes the sigma scale). */
    const std::vector<double> &spatial(std::size_t r) const
    { return spatial_.at(r); }

    /** Temporal factor V_r, length horizon, unit Euclidean norm. */
    const std::vector<double> &temporal(std::size_t r) const
    { return temporal_.at(r); }

  private:
    std::size_t numServers_ = 0;
    std::size_t horizon_ = 0;
    double relError_ = 0.0;
    std::vector<std::vector<double>> spatial_;
    std::vector<std::vector<double>> temporal_;
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_FACTORIZATION_HH
