/**
 * @file
 * Truncated separable factorization of a heat-distribution tensor.
 *
 * The impulse-response tensor h[i][j][tau] is, for the analytic default,
 * *exactly* separable: h = G[i][j] * k[tau] (spatial gain times a shared
 * temporal kernel). CFD-extracted tensors are close to separable -- the
 * airflow pattern fixes the spatial structure while the thermal build-up
 * fixes the temporal shape -- so a few separable terms reproduce them to
 * within extraction noise. This module computes the optimal (in the
 * Frobenius sense) rank-R decomposition
 *
 *     h[i][j][tau] ~= sum_r  U_r[i][j] * V_r[tau]
 *
 * via an eigendecomposition of the H x H Gram matrix of the mode-3
 * unfolding (H = horizon, typically 10), which is exactly the truncated
 * SVD of that unfolding. MatrixThermalModel uses the factors to turn the
 * O(N^2 H) per-minute convolution into R temporally-smoothed power states
 * (O(N H) each) followed by R N x N GEMVs -- O(R (N H + N^2)) total.
 *
 * On top of the factors this module also fits each temporal factor with a
 * short sum of exponential modes, V_r[tau] ~= sum_m w_m * lambda_m^tau
 * (Prony's method). A factor that admits such a fit turns the smoothed
 * power state into a *streaming recurrence* -- each mode accumulator
 * updates as a <- lambda * a + p, with an exact window-tail correction --
 * so MatrixThermalModel::pushPowers advances the thermal state in O(N)
 * per mode with no history traversal at all (KernelMode::Streaming). The
 * analytic default kernel, increments of 1 - exp(-t/T), is *exactly* one
 * exponential mode with lambda = exp(-1/T), so the fit is machine-exact
 * there; CFD-extracted factors fall back to the factorized walk whenever
 * the combined fit residual exceeds FactorizationOptions::streamingTolerance.
 */

#ifndef ECOLO_THERMAL_FACTORIZATION_HH
#define ECOLO_THERMAL_FACTORIZATION_HH

#include <cstddef>
#include <vector>

namespace ecolo::thermal {

class HeatDistributionMatrix;

/** Knobs for the truncated factorization. */
struct FactorizationOptions
{
    /**
     * Relative Frobenius-norm reconstruction error bound: the smallest
     * rank meeting it is chosen. The analytic matrix factorizes at rank 1
     * with error ~1e-16; CFD tensors typically need 2-4 terms at 1e-6.
     */
    double relTolerance = 1e-6;
    /** Largest admissible rank; 0 means the full horizon (exact). */
    std::size_t maxRank = 0;
    /**
     * Admission bound for the streaming kernel: the relative error the
     * exponential-mode fits add on top of the factorized reconstruction
     * must stay below this for KernelMode::Streaming (or Auto's streaming
     * preference) to engage. The analytic kernel fits at ~1e-16; CFD
     * tensors that fit worse silently use the factorized walk instead.
     * Scenario key: thermal.streamingTolerance.
     */
    double streamingTolerance = 1e-9;
    /** Most exponential modes tried per temporal factor (Prony order). */
    std::size_t maxModesPerFactor = 3;
};

/** One term of an exponential-sum fit: weight * decay^tau. */
struct ExponentialMode
{
    double weight = 0.0;
    double decay = 0.0; //!< |decay| <= 1 so the recurrence is stable
};

/** Exponential-sum fit of one temporal factor. */
struct ExponentialFit
{
    std::vector<ExponentialMode> modes;
    /** Relative L2 misfit ||v - fit|| / ||v||; 1.0 when nothing fit. */
    double relError = 1.0;
};

/**
 * Fit `values` (length >= 1) with at most max_modes exponential terms via
 * Prony's method: linear-prediction least squares for the characteristic
 * polynomial, closed-form real roots (order <= 3), then a Vandermonde
 * least-squares solve for the weights. Stops at the first order whose
 * relative misfit is <= rel_tolerance; otherwise returns the best order
 * tried. Complex, unstable (|lambda| > 1), or near-duplicate roots reject
 * that order. An all-zero input fits exactly with zero modes.
 */
ExponentialFit fitExponentialModes(const std::vector<double> &values,
                                   std::size_t max_modes,
                                   double rel_tolerance);

/** The computed factors, ordered by decreasing singular value. */
class TemporalFactorization
{
  public:
    /** An empty rank-0 factorization (placeholder until compute()). */
    TemporalFactorization() = default;

    /** Factorize the given tensor. Always succeeds: at rank == horizon
     * the decomposition is numerically exact, so the achieved error only
     * exceeds opts.relTolerance when opts.maxRank truncates it. */
    static TemporalFactorization
    compute(const HeatDistributionMatrix &matrix,
            FactorizationOptions opts = FactorizationOptions());

    std::size_t rank() const { return temporal_.size(); }
    std::size_t numServers() const { return numServers_; }
    std::size_t horizon() const { return horizon_; }

    /** Achieved relative Frobenius reconstruction error. */
    double relError() const { return relError_; }

    /** Spatial factor U_r, row-major N x N (includes the sigma scale). */
    const std::vector<double> &spatial(std::size_t r) const
    { return spatial_.at(r); }

    /** Temporal factor V_r, length horizon, unit Euclidean norm. */
    const std::vector<double> &temporal(std::size_t r) const
    { return temporal_.at(r); }

    /** Exponential-mode fit of temporal factor r (for streaming). */
    const ExponentialFit &temporalFit(std::size_t r) const
    { return fits_.at(r); }

    /**
     * Relative Frobenius error the exponential-mode fits add on top of
     * the factorized reconstruction: the per-factor misfits weighted by
     * their singular values. This is the number the streaming kernel's
     * admission is gated on; the end-to-end error against the dense
     * tensor is bounded by relError() + streamingRelError().
     */
    double streamingRelError() const { return streamingRelError_; }

  private:
    std::size_t numServers_ = 0;
    std::size_t horizon_ = 0;
    double relError_ = 0.0;
    double streamingRelError_ = 0.0;
    std::vector<std::vector<double>> spatial_;
    std::vector<std::vector<double>> temporal_;
    std::vector<ExponentialFit> fits_;
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_FACTORIZATION_HH
