#include "thermal/cooling.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::thermal {

namespace {

constexpr double kAirDensity = 1.18;        // kg/m^3
constexpr double kAirHeatCapacity = 1005.0; // J/(kg K)

} // namespace

CoolingSystem::CoolingSystem(CoolingParams params)
    : params_(params),
      capacitance_(kAirDensity * kAirHeatCapacity * params.airVolume *
                   params.thermalMassFactor)
{
    ECOLO_ASSERT(params_.capacity.value() > 0.0,
                 "cooling capacity must be positive");
    ECOLO_ASSERT(params_.airVolume > 0.0 && params_.thermalMassFactor > 0.0,
                 "room thermal mass must be positive");
    ECOLO_ASSERT(params_.recoveryTimeConstant > 0.0,
                 "recovery time constant must be positive");
}

Kilowatts
CoolingSystem::effectiveCapacity() const
{
    const double above_design =
        std::max(0.0, (supplyTemperature() -
                       params_.designReferenceTemp).value());
    const double fraction = std::max(
        params_.minCapacityFraction,
        1.0 - params_.capacityDeratingPerKelvin * above_design);
    return params_.capacity * fraction;
}

void
CoolingSystem::step(Kilowatts total_heat, Seconds dt)
{
    ECOLO_ASSERT(total_heat.value() >= 0.0, "negative heat load");
    ECOLO_ASSERT(dt.value() > 0.0, "non-positive step duration");

    const double excess_watts =
        (total_heat - effectiveCapacity()).value() * 1000.0;
    overloaded_ = excess_watts > 0.0;
    lastExcess_ = Kilowatts(std::max(0.0, excess_watts / 1000.0));

    double delta = overload_.value();
    if (excess_watts > 0.0) {
        // Heat the CRAC cannot remove accumulates in the room air.
        delta += excess_watts * dt.value() / capacitance_;
    } else {
        // Spare capacity pulls the room back down; near the set point the
        // pull-down is exponential (coil effectiveness falls with the
        // shrinking temperature difference).
        const double spare_watts = -excess_watts;
        const double max_rate = spare_watts / capacitance_; // K/s
        const double exp_rate = delta / params_.recoveryTimeConstant;
        delta -= std::min(max_rate, exp_rate) * dt.value();
    }
    delta = std::clamp(delta, 0.0, params_.maxOverload.value());
    overload_ = CelsiusDelta(delta);
}

Seconds
CoolingSystem::timeToReach(Celsius threshold, Kilowatts overload,
                           Celsius starting_supply) const
{
    const double rise_needed = (threshold - starting_supply).value();
    if (rise_needed <= 0.0)
        return Seconds(0.0);
    if (overload.value() <= 0.0)
        return hours(1e9);

    // Integrate dDelta/dt = (overload + derated_capacity_loss) / C
    // numerically; the derating term makes the rise slightly superlinear.
    const double start_delta =
        (starting_supply - params_.supplySetPoint).value();
    double delta = std::max(0.0, start_delta);
    const double target = delta + rise_needed;
    const double dt = 1.0; // s
    double t = 0.0;
    const double nameplate_watts = params_.capacity.value() * 1000.0;
    const double design_offset =
        (params_.supplySetPoint - params_.designReferenceTemp).value();
    while (delta < target) {
        const double above_design =
            std::max(0.0, delta + design_offset);
        const double fraction = std::max(
            params_.minCapacityFraction,
            1.0 - params_.capacityDeratingPerKelvin * above_design);
        const double lost_watts = nameplate_watts * (1.0 - fraction);
        const double net_watts = overload.value() * 1000.0 + lost_watts;
        delta += net_watts * dt / capacitance_;
        t += dt;
        if (t > 3600.0 * 1e6)
            return hours(1e9);
    }
    return Seconds(t);
}

void
CoolingSystem::setOverloadDelta(CelsiusDelta delta)
{
    ECOLO_ASSERT(delta.value() >= 0.0 &&
                 delta.value() <= params_.maxOverload.value(),
                 "overload delta out of range: ", delta.value());
    overload_ = delta;
}

void
CoolingSystem::reset()
{
    overload_ = CelsiusDelta(0.0);
    lastExcess_ = Kilowatts(0.0);
    overloaded_ = false;
}

} // namespace ecolo::thermal
