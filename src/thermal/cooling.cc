#include "thermal/cooling.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::thermal {

namespace {

constexpr double kAirDensity = 1.18;        // kg/m^3
constexpr double kAirHeatCapacity = 1005.0; // J/(kg K)

} // namespace

CoolingSystem::CoolingSystem(CoolingParams params)
    : params_(params),
      capacitance_(kAirDensity * kAirHeatCapacity * params.airVolume *
                   params.thermalMassFactor)
{
    ECOLO_ASSERT(params_.capacity.value() > 0.0,
                 "cooling capacity must be positive");
    ECOLO_ASSERT(params_.airVolume > 0.0 && params_.thermalMassFactor > 0.0,
                 "room thermal mass must be positive");
    ECOLO_ASSERT(params_.recoveryTimeConstant > 0.0,
                 "recovery time constant must be positive");
}

Kilowatts
CoolingSystem::effectiveCapacity() const
{
    const double above_design =
        std::max(0.0, (supplyTemperature() -
                       params_.designReferenceTemp).value());
    const double fraction = std::max(
        params_.minCapacityFraction,
        1.0 - params_.capacityDeratingPerKelvin * above_design);
    // A commanded set-point raise regains coil capacity (warmer return
    // air); an injected fault strands part of the unit. Both terms are
    // exact identities (+0.0, *1.0) when healthy, so the fault-free path
    // stays bit-identical.
    const double raise_gain =
        params_.capacityGainPerKelvinRaised * setPointOffset_.value();
    return params_.capacity * (fraction + raise_gain) * faultCapacityFactor_;
}

void
CoolingSystem::step(Kilowatts total_heat, Seconds dt)
{
    ECOLO_ASSERT(total_heat.value() >= 0.0, "negative heat load");
    ECOLO_ASSERT(dt.value() > 0.0, "non-positive step duration");

    const double excess_watts =
        (total_heat - effectiveCapacity()).value() * 1000.0;
    overloaded_ = excess_watts > 0.0;
    lastExcess_ = Kilowatts(std::max(0.0, excess_watts / 1000.0));

    double delta = overload_.value();
    if (excess_watts > 0.0) {
        // Heat the CRAC cannot remove accumulates in the room air.
        delta += excess_watts * dt.value() / capacitance_;
    } else {
        // Spare capacity pulls the room back down; near the set point the
        // pull-down is exponential (coil effectiveness falls with the
        // shrinking temperature difference).
        const double spare_watts = -excess_watts;
        // A derated fan moves less air across the coil, so both the bulk
        // and the exponential pull-down rates shrink with the fault factor
        // (*1.0 when healthy: bit-identical).
        const double max_rate =
            spare_watts / capacitance_ * faultRecoveryFactor_; // K/s
        const double exp_rate =
            delta / params_.recoveryTimeConstant * faultRecoveryFactor_;
        delta -= std::min(max_rate, exp_rate) * dt.value();
    }
    delta = std::clamp(delta, 0.0, params_.maxOverload.value());
    overload_ = CelsiusDelta(delta);
}

Seconds
CoolingSystem::timeToReach(Celsius threshold, Kilowatts overload,
                           Celsius starting_supply) const
{
    const double rise_needed = (threshold - starting_supply).value();
    if (rise_needed <= 0.0)
        return Seconds(0.0);
    if (overload.value() <= 0.0)
        return hours(1e9);

    // Integrate dDelta/dt = (overload + derated_capacity_loss) / C
    // numerically; the derating term makes the rise slightly superlinear.
    const double start_delta =
        (starting_supply - params_.supplySetPoint).value();
    double delta = std::max(0.0, start_delta);
    const double target = delta + rise_needed;
    const double dt = 1.0; // s
    double t = 0.0;
    const double nameplate_watts = params_.capacity.value() * 1000.0;
    const double design_offset =
        (params_.supplySetPoint - params_.designReferenceTemp).value();
    while (delta < target) {
        const double above_design =
            std::max(0.0, delta + design_offset);
        const double fraction = std::max(
            params_.minCapacityFraction,
            1.0 - params_.capacityDeratingPerKelvin * above_design);
        const double lost_watts = nameplate_watts * (1.0 - fraction);
        const double net_watts = overload.value() * 1000.0 + lost_watts;
        delta += net_watts * dt / capacitance_;
        t += dt;
        if (t > 3600.0 * 1e6)
            return hours(1e9);
    }
    return Seconds(t);
}

void
CoolingSystem::setOverloadDelta(CelsiusDelta delta)
{
    ECOLO_ASSERT(delta.value() >= 0.0 &&
                 delta.value() <= params_.maxOverload.value(),
                 "overload delta out of range: ", delta.value());
    overload_ = delta;
}

void
CoolingSystem::setFaultDerating(double capacity_factor,
                                double recovery_factor)
{
    ECOLO_ASSERT(capacity_factor >= 0.0 && capacity_factor <= 1.0,
                 "fault capacity factor out of range: ", capacity_factor);
    ECOLO_ASSERT(recovery_factor >= 0.0 && recovery_factor <= 1.0,
                 "fault recovery factor out of range: ", recovery_factor);
    faultCapacityFactor_ = capacity_factor;
    faultRecoveryFactor_ = recovery_factor;
}

void
CoolingSystem::setSetPointOffset(CelsiusDelta offset)
{
    ECOLO_ASSERT(offset.value() >= 0.0,
                 "set-point offset must be non-negative: ", offset.value());
    setPointOffset_ = offset;
}

void
CoolingSystem::reset()
{
    overload_ = CelsiusDelta(0.0);
    lastExcess_ = Kilowatts(0.0);
    overloaded_ = false;
    faultCapacityFactor_ = 1.0;
    faultRecoveryFactor_ = 1.0;
    setPointOffset_ = CelsiusDelta(0.0);
}

void
CoolingSystem::saveState(util::StateWriter &writer) const
{
    writer.tag("COOL");
    writer.f64(overload_.value());
    writer.f64(lastExcess_.value());
    writer.boolean(overloaded_);
    writer.f64(faultCapacityFactor_);
    writer.f64(faultRecoveryFactor_);
    writer.f64(setPointOffset_.value());
}

void
CoolingSystem::loadState(util::StateReader &reader)
{
    reader.tag("COOL");
    overload_ = CelsiusDelta(reader.f64());
    lastExcess_ = Kilowatts(reader.f64());
    overloaded_ = reader.boolean();
    faultCapacityFactor_ = reader.f64();
    faultRecoveryFactor_ = reader.f64();
    setPointOffset_ = CelsiusDelta(reader.f64());
}

} // namespace ecolo::thermal
