/**
 * @file
 * LaneThermalBank: SoA arena advancing 8 streaming thermal models at once.
 *
 * The streaming kernel's per-slot work (mode-accumulator advance, ring
 * rotation, mode combine, spatial GEMV) is elementwise or GEMV-shaped,
 * so eight independent simulations' states can be interleaved lane-wise
 * -- arrays indexed [..., lane] with lane innermost -- and advanced by
 * the same shared kernels over count = N * 8 elements, or by the
 * lane-vectorized GEMV, in one pass. Per lane the arithmetic is bitwise
 * what the scalar model computes (see stream_kernels.hh), so a
 * simulation advanced through the bank reports exactly what it would
 * alone.
 *
 * Masking, not branching: the bank always advances all 8 lanes. A lane
 * with no simulation attached (or whose simulation finished early) has
 * its new-power scratch zeroed every slot by beginSlot(), so its state
 * decays harmlessly and is never read. Ownership protocol: gatherLane()
 * copies a model's streaming state in, the bank is then authoritative
 * until scatterLane() copies it back (restoring checkpointability);
 * all lanes in a bank share one ring phase (head/filled), which the
 * packing predicate MatrixThermalModel::streamingStateCompatible
 * guarantees.
 */

#ifndef ECOLO_THERMAL_LANE_BANK_HH
#define ECOLO_THERMAL_LANE_BANK_HH

#include <cstddef>
#include <vector>

#include "thermal/heat_matrix.hh"
#include "thermal/stream_kernels.hh"
#include "util/units.hh"

namespace ecolo::thermal {

class LaneThermalBank
{
  public:
    /** Lanes per bank: one 8-wide double vector. */
    static constexpr std::size_t kLanes = kernels::kLaneWidth;

    LaneThermalBank() = default;

    /**
     * Size the arena and copy the recurrence constants (decays, tails,
     * weights, spatial factors, ring phase) from a reference model.
     * Every model later gathered must be streamingStateCompatible with
     * the reference. Allocates; call once per (re)packing, not per slot.
     */
    void configure(const MatrixThermalModel &reference);

    /**
     * Re-adopt the ring phase (head/filled) from a model about to be
     * gathered -- e.g. at a run boundary after the models were restored
     * from a checkpoint. Every model gathered afterwards must share it.
     */
    void adoptPhase(const MatrixThermalModel &model);

    /** Copy `model`'s streaming state (accumulators, ring, cached
     * rises) into lane `l`. The bank is authoritative for the lane
     * until scatterLane. */
    void gatherLane(std::size_t l, const MatrixThermalModel &model);

    /** Copy lane `l`'s state back into `model`, including the shared
     * ring phase, restoring normal scalar operation / checkpointing. */
    void scatterLane(std::size_t l, MatrixThermalModel &model) const;

    /** Start a slot: zero the new-power scratch so lanes that do not
     * call setLanePowers this slot (dead or finished) push zeros. */
    void beginSlot();

    /** Record lane `l`'s per-server heat for the current slot. */
    void setLanePowers(std::size_t l, const std::vector<Kilowatts> &powers);

    /** Advance every lane one minute: accumulator advance, ring
     * rotation, rise recomputation. Allocation-free. */
    void step();

    /**
     * Lane `l`'s rises as a strided view: element i lives at
     * laneRises(l)[i * riseStride()]. Valid until the next step().
     */
    const double *laneRises(std::size_t l) const
    { return risesK_.data() + l; }

    static constexpr std::size_t riseStride() { return kLanes; }

    std::size_t numServers() const { return n_; }

  private:
    std::size_t n_ = 0;
    std::size_t horizon_ = 0;
    std::size_t rank_ = 0;
    std::size_t head_ = 0;
    std::size_t filled_ = 0;

    // Recurrence constants, copied from the reference model.
    std::vector<double> modeDecay_;
    std::vector<double> modeTail_;
    std::vector<double> modeWeight_;
    std::vector<std::size_t> rankModeBegin_;
    std::vector<double> spatialT_; //!< [r][j][i], as in the model

    // Lane-interleaved state (lane index innermost throughout).
    std::vector<double> accumK_; //!< [q][j][lane]
    std::vector<double> ringK_;  //!< [slot][j][lane]
    std::vector<double> pnewK_;  //!< [j][lane] this slot's powers
    std::vector<double> sK_;     //!< [j][lane] per-rank combined state
    std::vector<double> risesK_; //!< [i][lane]
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_LANE_BANK_HH
