#include "thermal/lane_bank.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace ecolo::thermal {

void
LaneThermalBank::configure(const MatrixThermalModel &reference)
{
    ECOLO_ASSERT(reference.active_ == KernelMode::Streaming,
                 "lane bank requires the streaming kernel");
    n_ = reference.matrix_.numServers();
    horizon_ = reference.matrix_.horizon();
    rank_ = reference.factors_.rank();
    head_ = reference.head_;
    filled_ = reference.filled_;
    modeDecay_ = reference.modeDecay_;
    modeTail_ = reference.modeTail_;
    modeWeight_ = reference.modeWeight_;
    rankModeBegin_ = reference.rankModeBegin_;
    spatialT_ = reference.spatialT_;

    const std::size_t cnt = n_ * kLanes;
    accumK_.assign(modeDecay_.size() * cnt, 0.0);
    ringK_.assign(horizon_ * cnt, 0.0);
    pnewK_.assign(cnt, 0.0);
    sK_.assign(cnt, 0.0);
    risesK_.assign(cnt, 0.0);
}

void
LaneThermalBank::adoptPhase(const MatrixThermalModel &model)
{
    head_ = model.head_;
    filled_ = model.filled_;
}

void
LaneThermalBank::gatherLane(std::size_t l, const MatrixThermalModel &model)
{
    ECOLO_ASSERT(l < kLanes, "lane index out of range");
    ECOLO_ASSERT(model.head_ == head_ && model.filled_ == filled_,
                 "lane model ring phase diverged from the bank");
    const std::size_t accum = modeDecay_.size() * n_;
    for (std::size_t k = 0; k < accum; ++k)
        accumK_[k * kLanes + l] = model.modeAccum_[k];
    const std::size_t ring = horizon_ * n_;
    for (std::size_t k = 0; k < ring; ++k)
        ringK_[k * kLanes + l] = model.history_[k];
    for (std::size_t i = 0; i < n_; ++i)
        risesK_[i * kLanes + l] = model.streamRises_[i];
}

void
LaneThermalBank::scatterLane(std::size_t l, MatrixThermalModel &model) const
{
    ECOLO_ASSERT(l < kLanes, "lane index out of range");
    const std::size_t accum = modeDecay_.size() * n_;
    for (std::size_t k = 0; k < accum; ++k)
        model.modeAccum_[k] = accumK_[k * kLanes + l];
    const std::size_t ring = horizon_ * n_;
    for (std::size_t k = 0; k < ring; ++k)
        model.history_[k] = ringK_[k * kLanes + l];
    for (std::size_t i = 0; i < n_; ++i)
        model.streamRises_[i] = risesK_[i * kLanes + l];
    model.head_ = head_;
    model.filled_ = filled_;
}

void
LaneThermalBank::beginSlot()
{
    std::fill(pnewK_.begin(), pnewK_.end(), 0.0);
}

void
LaneThermalBank::setLanePowers(std::size_t l,
                               const std::vector<Kilowatts> &powers)
{
    ECOLO_ASSERT(l < kLanes && powers.size() == n_,
                 "lane power vector mismatch");
    for (std::size_t j = 0; j < n_; ++j)
        pnewK_[j * kLanes + l] = powers[j].value();
}

void
LaneThermalBank::step()
{
    // One lane-interleaved pass over what MatrixThermalModel::pushPowers
    // + updateStreamingRises do per model, through the same shared
    // kernels (count = N * kLanes instead of N), so per lane every
    // intermediate value is bitwise the scalar one.
    const std::size_t cnt = n_ * kLanes;
    double *slot = &ringK_[head_ * cnt];
    const std::size_t total_modes = modeDecay_.size();
    for (std::size_t q = 0; q < total_modes; ++q) {
        kernels::streamAccumAdvance(&accumK_[q * cnt], pnewK_.data(), slot,
                                    modeDecay_[q], modeTail_[q], cnt);
    }
    std::memcpy(slot, pnewK_.data(), cnt * sizeof(double));
    head_ = (head_ + 1) % horizon_;
    filled_ = std::min(filled_ + 1, horizon_);

    std::fill(risesK_.begin(), risesK_.end(), 0.0);
    for (std::size_t r = 0; r < rank_; ++r) {
        const std::size_t begin = rankModeBegin_[r];
        const std::size_t end = rankModeBegin_[r + 1];
        if (begin == end)
            continue; // a zero factor fits with zero modes
        kernels::streamCombineFirst(sK_.data(), &accumK_[begin * cnt],
                                    modeWeight_[begin], cnt);
        for (std::size_t q = begin + 1; q < end; ++q)
            kernels::streamCombineAdd(sK_.data(), &accumK_[q * cnt],
                                      modeWeight_[q], cnt);
        kernels::laneAccumulateColumnAxpy8(&spatialT_[r * n_ * n_],
                                           sK_.data(), risesK_.data(), n_);
    }
}

} // namespace ecolo::thermal
