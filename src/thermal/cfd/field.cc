#include "thermal/cfd/field.hh"

#include <algorithm>

namespace ecolo::thermal {

double
Field3::mean() const
{
    if (data_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : data_)
        sum += v;
    return sum / static_cast<double>(data_.size());
}

double
Field3::max() const
{
    if (data_.empty())
        return 0.0;
    return *std::max_element(data_.begin(), data_.end());
}

} // namespace ecolo::thermal
