/**
 * @file
 * CFD-lite: a coarse-grid finite-volume advection-diffusion solver for the
 * containerized edge colocation.
 *
 * The paper extracts its heat-distribution matrix from commercial CFD runs;
 * we stand in for that tool with a deliberately simple solver that captures
 * the transport physics that matter for the study:
 *
 *  - The circulation loop (CRAC -> floor-level cold supply -> racks ->
 *    ceiling return -> CRAC) is prescribed from a streamfunction, so the
 *    discrete velocity field is *exactly divergence-free* and the flux-form
 *    upwind advection conserves thermal energy to machine precision.
 *  - Temperature is advected along the loop, diffused with an effective
 *    turbulent diffusivity, heated by per-server volumetric sources at the
 *    servers' rack positions, and cooled in the CRAC band subject to the
 *    unit's capacity limit.
 *
 * This reproduces the two behaviours the rest of the system depends on:
 * (1) spatially structured impulse responses of inlet temperatures to
 * server heat (the heat-distribution matrix), and (2) room-level heat
 * build-up at the correct minutes-scale when total load exceeds the
 * cooling capacity.
 */

#ifndef ECOLO_THERMAL_CFD_SOLVER_HH
#define ECOLO_THERMAL_CFD_SOLVER_HH

#include <cstddef>
#include <vector>

#include "power/layout.hh"
#include "thermal/cfd/field.hh"
#include "util/units.hh"

namespace ecolo::thermal {

/** Tunables for the CFD-lite solver. */
struct CfdParams
{
    double cellSize = 0.2;             //!< m
    Celsius supplySetPoint{27.0};      //!< CRAC supply temperature target
    Kilowatts coolingCapacity{8.0};    //!< max heat removal
    double loopSpeed = 1.2;            //!< m/s peak speed along the loop
    double effectiveDiffusivity = 3e-2; //!< m^2/s (turbulent mixing)
    double exchangeTimeConstant = 1.5; //!< s, CRAC coil heat exchange
    double dt = 0.08;                  //!< s, explicit step (CFL-safe)
    /** Racks/walls add effective thermal mass beyond the air itself. */
    double solidHeatCapacityFactor = 1.3;
    /**
     * Server fans drive vigorous turbulent mixing within each rack
     * column; cells in a rack band relax toward the band mean with this
     * time constant (seconds). Energy-conserving redistribution.
     */
    double rackMixingTimeConstant = 8.0;
};

/** The solver itself; one instance per container geometry. */
class CfdSolver
{
  public:
    CfdSolver(const power::DataCenterLayout &layout, CfdParams params);

    std::size_t numServers() const { return probeCells_.size(); }

    /** Set the heat injected by server j (its actual power). */
    void setServerPower(std::size_t j, Kilowatts power);

    /** Set every server's heat at once. */
    void setAllServerPowers(const std::vector<Kilowatts> &powers);

    /** Advance one explicit step of params.dt seconds. */
    void step();

    /** Advance by (at least) the given duration. */
    void run(Seconds duration);

    /** Air temperature at server j's inlet probe. */
    Celsius inletTemperature(std::size_t j) const;

    /** Hottest inlet across all servers. */
    Celsius maxInletTemperature() const;

    /** Mean air temperature over the whole container. */
    Celsius meanTemperature() const;

    /** Simulated time since construction/reset. */
    Seconds time() const { return Seconds(time_); }

    /** Reset all air to the given uniform temperature, zero sources. */
    void reset(Celsius initial);

    const CfdParams &params() const { return params_; }

    /** Grid dimensions (for tests / diagnostics). */
    std::size_t nx() const { return temp_.nx(); }
    std::size_t ny() const { return temp_.ny(); }
    std::size_t nz() const { return temp_.nz(); }

  private:
    void buildGeometry(const power::DataCenterLayout &layout);
    void buildVelocity();
    void applyAdvection();
    void applyDiffusion();
    void applyRackMixing();
    void applySources();
    void applyCrac();

    std::size_t
    cellIndex(std::size_t i, std::size_t j, std::size_t k) const
    {
        return (i * temp_.ny() + j) * temp_.nz() + k;
    }

    CfdParams params_;
    Field3 temp_;    //!< air temperature (deg C)
    Field3 scratch_; //!< double-buffer for updates
    /**
     * Face-normal velocities from the loop streamfunction (identical for
     * every y-slice): faceUx_[i][k] is the x-velocity on the face between
     * cells (i-1, *, k) and (i, *, k) for i in [0, nx]; faceUz_[i][k] is
     * the z-velocity on the face below/above analogous cells.
     */
    std::vector<double> faceUx_; //!< (nx+1) * nz
    std::vector<double> faceUz_; //!< nx * (nz+1)
    std::vector<std::size_t> cracCells_;
    /** Per rack: the cells fan-driven mixing homogenizes. */
    std::vector<std::vector<std::size_t>> rackBands_;
    /** Per-server: the cells its heat is injected into. */
    std::vector<std::vector<std::size_t>> sourceCells_;
    /** Per-server: the cold-aisle cell its inlet samples. */
    std::vector<std::size_t> probeCells_;
    std::vector<double> serverPowerWatts_;
    double effRhoCp_ = 0.0; //!< J/(m^3 K), incl. solid factor
    double cellVolume_ = 0.0; //!< m^3
    double time_ = 0.0;       //!< s
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_CFD_SOLVER_HH
