#include "thermal/cfd/solver.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::thermal {

namespace {

constexpr double kAirDensity = 1.18;        // kg/m^3
constexpr double kAirHeatCapacity = 1005.0; // J/(kg K)

std::size_t
cellsFor(double meters, double cell)
{
    return std::max<std::size_t>(3, static_cast<std::size_t>(
        std::ceil(meters / cell)));
}

} // namespace

CfdSolver::CfdSolver(const power::DataCenterLayout &layout, CfdParams params)
    : params_(params)
{
    ECOLO_ASSERT(params_.cellSize > 0.0 && params_.dt > 0.0,
                 "bad CFD discretization");
    const double cfl = params_.loopSpeed * params_.dt / params_.cellSize;
    ECOLO_ASSERT(cfl <= 0.5, "advection CFL violated: ", cfl);
    const double dif = params_.effectiveDiffusivity * params_.dt /
                       (params_.cellSize * params_.cellSize);
    ECOLO_ASSERT(dif <= 1.0 / 6.0, "diffusion stability violated: ", dif);

    effRhoCp_ = kAirDensity * kAirHeatCapacity *
                params_.solidHeatCapacityFactor;
    cellVolume_ = params_.cellSize * params_.cellSize * params_.cellSize;

    buildGeometry(layout);
    buildVelocity();
    reset(params_.supplySetPoint);
}

void
CfdSolver::buildGeometry(const power::DataCenterLayout &layout)
{
    const auto &lp = layout.params();
    const double cell = params_.cellSize;
    const std::size_t nx = cellsFor(lp.containerLength, cell);
    const std::size_t ny = cellsFor(lp.containerWidth, cell);
    const std::size_t nz = cellsFor(lp.containerHeight, cell);

    temp_ = Field3(nx, ny, nz, params_.supplySetPoint.value());
    scratch_ = temp_;

    // CRAC band at the near end of the container.
    const std::size_t crac_x1 = std::max<std::size_t>(
        2, static_cast<std::size_t>((lp.crakX + 0.9) / cell));
    cracCells_.clear();
    for (std::size_t i = 0; i < std::min(crac_x1, nx); ++i)
        for (std::size_t j = 0; j < ny; ++j)
            for (std::size_t k = 0; k < nz; ++k)
                cracCells_.push_back(cellIndex(i, j, k));

    // Rack x-bands and server source/probe cells.
    const std::size_t n_servers = layout.numServers();
    sourceCells_.assign(n_servers, {});
    probeCells_.assign(n_servers, 0);
    serverPowerWatts_.assign(n_servers, 0.0);

    const std::size_t rack_y0 = ny / 3;
    const std::size_t rack_y1 =
        std::min(ny - 1, rack_y0 + std::max<std::size_t>(1, ny / 4));
    // Racks occupy a vertical band between floor and ceiling layers.
    const std::size_t z_lo = std::max<std::size_t>(1, nz / 5);
    const std::size_t z_hi = std::max(z_lo + 1, nz - nz / 5);
    const std::size_t rack_span_z = z_hi - z_lo;

    const double rack_x0_m = lp.crakX + 1.0;
    rackBands_.assign(lp.numRacks, {});
    for (std::size_t r = 0; r < lp.numRacks; ++r) {
        const double x_m = rack_x0_m + static_cast<double>(r) *
                           lp.rackSpacing;
        const std::size_t x0 = std::min(
            nx - 2, static_cast<std::size_t>(x_m / cell));
        const std::size_t x1 = std::min(
            nx - 1, x0 + std::max<std::size_t>(1, cellsFor(0.6, cell) / 2));
        for (std::size_t i = x0; i < x1; ++i)
            for (std::size_t j = rack_y0; j < rack_y1; ++j)
                for (std::size_t k = z_lo; k < z_hi; ++k)
                    rackBands_[r].push_back(cellIndex(i, j, k));
    }

    for (std::size_t s = 0; s < n_servers; ++s) {
        const power::RackSlot rs = layout.rackSlotOf(s);
        const double x_m = rack_x0_m +
                           static_cast<double>(rs.rack) * lp.rackSpacing;
        std::size_t x0 = std::min(
            nx - 2, static_cast<std::size_t>(x_m / cell));
        const std::size_t x1 = std::min(
            nx - 1, x0 + std::max<std::size_t>(1, cellsFor(0.6, cell) / 2));

        const double frac = (static_cast<double>(rs.slot) + 0.5) /
                            static_cast<double>(layout.serversPerRack());
        const std::size_t kz = std::min(
            z_hi - 1,
            z_lo + static_cast<std::size_t>(
                frac * static_cast<double>(rack_span_z)));

        for (std::size_t i = x0; i < x1; ++i)
            for (std::size_t j = rack_y0; j < rack_y1; ++j)
                sourceCells_[s].push_back(cellIndex(i, j, kz));
        ECOLO_ASSERT(!sourceCells_[s].empty(),
                     "server ", s, " got no source cells");

        const std::size_t probe_j = rack_y0 > 0 ? rack_y0 - 1 : 0;
        probeCells_[s] = cellIndex((x0 + x1) / 2, probe_j, kz);
    }
}

void
CfdSolver::buildVelocity()
{
    // A single-vortex streamfunction psi(x, z) = A sin(pi x / Lx)
    // sin(pi z / Lz) drives the canonical loop: along the floor away from
    // the CRAC, up at the far wall, back along the ceiling, down through
    // the CRAC. Face velocities are discrete streamfunction differences,
    // so the discrete divergence of every cell is exactly zero and the
    // flux-form advection below conserves energy.
    const std::size_t nx = temp_.nx(), nz = temp_.nz();
    const double h = params_.cellSize;

    auto psi = [&](std::size_t i, std::size_t k) {
        return std::sin(M_PI * static_cast<double>(i) /
                        static_cast<double>(nx)) *
               std::sin(M_PI * static_cast<double>(k) /
                        static_cast<double>(nz));
    };

    faceUx_.assign((nx + 1) * nz, 0.0);
    faceUz_.assign(nx * (nz + 1), 0.0);

    // u_x = d(psi)/dz on x-faces; u_z = -d(psi)/dx on z-faces. psi is
    // sampled at cell corners indexed by face positions.
    for (std::size_t i = 0; i <= nx; ++i)
        for (std::size_t k = 0; k < nz; ++k)
            faceUx_[i * nz + k] = (psi(i, k + 1) - psi(i, k)) / h;
    for (std::size_t i = 0; i < nx; ++i)
        for (std::size_t k = 0; k <= nz; ++k)
            faceUz_[i * (nz + 1) + k] = -(psi(i + 1, k) - psi(i, k)) / h;

    // Normalize so the peak face speed equals loopSpeed.
    double peak = 0.0;
    for (double u : faceUx_)
        peak = std::max(peak, std::abs(u));
    for (double u : faceUz_)
        peak = std::max(peak, std::abs(u));
    ECOLO_ASSERT(peak > 0.0, "degenerate velocity field");
    const double scale = params_.loopSpeed / peak;
    for (double &u : faceUx_)
        u *= scale;
    for (double &u : faceUz_)
        u *= scale;
}

void
CfdSolver::setServerPower(std::size_t j, Kilowatts power)
{
    ECOLO_ASSERT(j < serverPowerWatts_.size(),
                 "server index out of range: ", j);
    ECOLO_ASSERT(power.value() >= 0.0, "negative server power");
    serverPowerWatts_[j] = power.value() * 1000.0;
}

void
CfdSolver::setAllServerPowers(const std::vector<Kilowatts> &powers)
{
    ECOLO_ASSERT(powers.size() == serverPowerWatts_.size(),
                 "power vector size mismatch");
    for (std::size_t j = 0; j < powers.size(); ++j)
        setServerPower(j, powers[j]);
}

void
CfdSolver::applyAdvection()
{
    // Conservative flux-form upwind transport: every unit of T that leaves
    // one cell lands in its neighbor, so total thermal energy is conserved
    // exactly (walls are closed; the streamfunction vanishes there).
    const std::size_t nx = temp_.nx(), ny = temp_.ny(), nz = temp_.nz();
    const double courant = params_.dt / params_.cellSize;

    auto &t = temp_.raw();
    auto &out = scratch_.raw();
    out = t;

    // x-direction faces (interior only; boundary faces carry psi = 0).
    for (std::size_t i = 1; i < nx; ++i) {
        for (std::size_t k = 0; k < nz; ++k) {
            const double u = faceUx_[i * nz + k];
            if (u == 0.0)
                continue;
            const double c = u * courant;
            for (std::size_t j = 0; j < ny; ++j) {
                const std::size_t left = cellIndex(i - 1, j, k);
                const std::size_t right = cellIndex(i, j, k);
                const double upwind = c > 0.0 ? t[left] : t[right];
                const double flux = c * upwind;
                out[left] -= flux;
                out[right] += flux;
            }
        }
    }

    // z-direction faces.
    for (std::size_t i = 0; i < nx; ++i) {
        for (std::size_t k = 1; k < nz; ++k) {
            const double u = faceUz_[i * (nz + 1) + k];
            if (u == 0.0)
                continue;
            const double c = u * courant;
            for (std::size_t j = 0; j < ny; ++j) {
                const std::size_t below = cellIndex(i, j, k - 1);
                const std::size_t above = cellIndex(i, j, k);
                const double upwind = c > 0.0 ? t[below] : t[above];
                const double flux = c * upwind;
                out[below] -= flux;
                out[above] += flux;
            }
        }
    }

    temp_.raw().swap(scratch_.raw());
}

void
CfdSolver::applyDiffusion()
{
    const std::size_t nx = temp_.nx(), ny = temp_.ny(), nz = temp_.nz();
    const double h = params_.cellSize;
    const double a = params_.effectiveDiffusivity * params_.dt / (h * h);

    const auto &t = temp_.raw();
    auto &out = scratch_.raw();

    for (std::size_t i = 0; i < nx; ++i) {
        for (std::size_t j = 0; j < ny; ++j) {
            for (std::size_t k = 0; k < nz; ++k) {
                const std::size_t c = cellIndex(i, j, k);
                const double tc = t[c];
                // Zero-flux (adiabatic) walls: missing neighbors mirror
                // the cell itself, which keeps diffusion conservative.
                const double t_xm =
                    i > 0 ? t[cellIndex(i - 1, j, k)] : tc;
                const double t_xp =
                    i + 1 < nx ? t[cellIndex(i + 1, j, k)] : tc;
                const double t_ym =
                    j > 0 ? t[cellIndex(i, j - 1, k)] : tc;
                const double t_yp =
                    j + 1 < ny ? t[cellIndex(i, j + 1, k)] : tc;
                const double t_zm =
                    k > 0 ? t[cellIndex(i, j, k - 1)] : tc;
                const double t_zp =
                    k + 1 < nz ? t[cellIndex(i, j, k + 1)] : tc;
                out[c] = tc + a * (t_xm + t_xp + t_ym + t_yp + t_zm +
                                   t_zp - 6.0 * tc);
            }
        }
    }
    temp_.raw().swap(scratch_.raw());
}

void
CfdSolver::applyRackMixing()
{
    if (params_.rackMixingTimeConstant <= 0.0)
        return;
    const double blend = std::min(
        1.0, params_.dt / params_.rackMixingTimeConstant);
    auto &t = temp_.raw();
    for (const auto &band : rackBands_) {
        if (band.empty())
            continue;
        double mean = 0.0;
        for (std::size_t c : band)
            mean += t[c];
        mean /= static_cast<double>(band.size());
        for (std::size_t c : band)
            t[c] += blend * (mean - t[c]);
    }
}

void
CfdSolver::applySources()
{
    const double dt = params_.dt;
    for (std::size_t s = 0; s < sourceCells_.size(); ++s) {
        const double watts = serverPowerWatts_[s];
        if (watts <= 0.0)
            continue;
        const auto &cells = sourceCells_[s];
        const double volume =
            cellVolume_ * static_cast<double>(cells.size());
        const double d_temp = watts * dt / (effRhoCp_ * volume);
        for (std::size_t c : cells)
            temp_.raw()[c] += d_temp;
    }
}

void
CfdSolver::applyCrac()
{
    const double dt = params_.dt;
    const double t_set = params_.supplySetPoint.value();
    const double tau = params_.exchangeTimeConstant;

    double desired_watts = 0.0;
    for (std::size_t c : cracCells_) {
        const double excess = temp_.raw()[c] - t_set;
        if (excess > 0.0)
            desired_watts += effRhoCp_ * cellVolume_ * excess / tau;
    }
    if (desired_watts <= 0.0)
        return;

    const double capacity_watts = params_.coolingCapacity.value() * 1000.0;
    const double scale = std::min(1.0, capacity_watts / desired_watts);
    for (std::size_t c : cracCells_) {
        const double excess = temp_.raw()[c] - t_set;
        if (excess > 0.0)
            temp_.raw()[c] -= scale * excess * dt / tau;
    }
}

void
CfdSolver::step()
{
    applyAdvection();
    applyDiffusion();
    applyRackMixing();
    applySources();
    applyCrac();
    time_ += params_.dt;
}

void
CfdSolver::run(Seconds duration)
{
    const auto steps = static_cast<std::size_t>(
        std::ceil(duration.value() / params_.dt));
    for (std::size_t i = 0; i < steps; ++i)
        step();
}

Celsius
CfdSolver::inletTemperature(std::size_t j) const
{
    ECOLO_ASSERT(j < probeCells_.size(), "server index out of range: ", j);
    return Celsius(temp_.raw()[probeCells_[j]]);
}

Celsius
CfdSolver::maxInletTemperature() const
{
    double best = -1e30;
    for (std::size_t c : probeCells_)
        best = std::max(best, temp_.raw()[c]);
    return Celsius(best);
}

Celsius
CfdSolver::meanTemperature() const
{
    return Celsius(temp_.mean());
}

void
CfdSolver::reset(Celsius initial)
{
    temp_.fill(initial.value());
    scratch_.fill(initial.value());
    std::fill(serverPowerWatts_.begin(), serverPowerWatts_.end(), 0.0);
    time_ = 0.0;
}

} // namespace ecolo::thermal
