/**
 * @file
 * Dense 3-D scalar field used by the CFD-lite solver (temperature, heat
 * source density, velocity components).
 */

#ifndef ECOLO_THERMAL_CFD_FIELD_HH
#define ECOLO_THERMAL_CFD_FIELD_HH

#include <cstddef>
#include <vector>

#include "util/logging.hh"

namespace ecolo::thermal {

/** A (nx, ny, nz) scalar field stored contiguously, x-major. */
class Field3
{
  public:
    Field3() = default;
    Field3(std::size_t nx, std::size_t ny, std::size_t nz,
           double initial = 0.0)
        : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, initial)
    {
        ECOLO_ASSERT(nx > 0 && ny > 0 && nz > 0, "empty field dimensions");
    }

    std::size_t nx() const { return nx_; }
    std::size_t ny() const { return ny_; }
    std::size_t nz() const { return nz_; }
    std::size_t size() const { return data_.size(); }

    double &
    at(std::size_t i, std::size_t j, std::size_t k)
    {
        return data_[index(i, j, k)];
    }

    double
    at(std::size_t i, std::size_t j, std::size_t k) const
    {
        return data_[index(i, j, k)];
    }

    void fill(double value) { data_.assign(data_.size(), value); }

    double mean() const;
    double max() const;

    const std::vector<double> &raw() const { return data_; }
    std::vector<double> &raw() { return data_; }

  private:
    std::size_t
    index(std::size_t i, std::size_t j, std::size_t k) const
    {
        ECOLO_ASSERT(i < nx_ && j < ny_ && k < nz_,
                     "field index out of range: (", i, ",", j, ",", k, ")");
        return (i * ny_ + j) * nz_ + k;
    }

    std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
    std::vector<double> data_;
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_CFD_FIELD_HH
