#include "thermal/factorization.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "thermal/heat_matrix.hh"
#include "util/logging.hh"

namespace ecolo::thermal {

namespace {

/**
 * Cyclic Jacobi eigendecomposition of a symmetric h x h matrix (h is the
 * horizon, typically 10, so cost is negligible). On return `a` holds a
 * near-diagonal matrix whose diagonal are the eigenvalues and `v` the
 * corresponding orthonormal eigenvectors (columns).
 */
void
jacobiEigen(std::vector<double> &a, std::vector<double> &v, std::size_t h)
{
    v.assign(h * h, 0.0);
    for (std::size_t i = 0; i < h; ++i)
        v[i * h + i] = 1.0;

    for (int sweep = 0; sweep < 64; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < h; ++p)
            for (std::size_t q = p + 1; q < h; ++q)
                off += a[p * h + q] * a[p * h + q];
        if (off < 1e-28 * std::max(1e-300, std::abs(std::accumulate(
                              a.begin(), a.end(), 0.0))))
            break;

        for (std::size_t p = 0; p < h; ++p) {
            for (std::size_t q = p + 1; q < h; ++q) {
                const double apq = a[p * h + q];
                if (std::abs(apq) < 1e-300)
                    continue;
                const double app = a[p * h + p];
                const double aqq = a[q * h + q];
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::abs(theta) +
                                  std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (std::size_t k = 0; k < h; ++k) {
                    const double akp = a[k * h + p];
                    const double akq = a[k * h + q];
                    a[k * h + p] = c * akp - s * akq;
                    a[k * h + q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < h; ++k) {
                    const double apk = a[p * h + k];
                    const double aqk = a[q * h + k];
                    a[p * h + k] = c * apk - s * aqk;
                    a[q * h + k] = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < h; ++k) {
                    const double vkp = v[k * h + p];
                    const double vkq = v[k * h + q];
                    v[k * h + p] = c * vkp - s * vkq;
                    v[k * h + q] = s * vkp + c * vkq;
                }
            }
        }
    }
}

} // namespace

TemporalFactorization
TemporalFactorization::compute(const HeatDistributionMatrix &matrix,
                               FactorizationOptions opts)
{
    const std::size_t n = matrix.numServers();
    const std::size_t h = matrix.horizon();
    const std::size_t pairs = n * n;

    TemporalFactorization out;
    out.numServers_ = n;
    out.horizon_ = h;

    // Gram matrix C = B^T B of the mode-3 unfolding B[(i,j)][tau].
    std::vector<double> gram(h * h, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t a = 0; a < h; ++a) {
                const double ca = matrix.coeff(i, j, a);
                for (std::size_t b = a; b < h; ++b)
                    gram[a * h + b] += ca * matrix.coeff(i, j, b);
            }
        }
    }
    for (std::size_t a = 0; a < h; ++a)
        for (std::size_t b = 0; b < a; ++b)
            gram[a * h + b] = gram[b * h + a];

    double total = 0.0; // trace(C) = ||B||_F^2
    for (std::size_t a = 0; a < h; ++a)
        total += gram[a * h + a];
    if (total <= 0.0) {
        out.relError_ = 0.0; // all-zero tensor: rank 0 is exact
        return out;
    }

    std::vector<double> eigvecs;
    jacobiEigen(gram, eigvecs, h);

    std::vector<std::size_t> order(h);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return gram[a * h + a] > gram[b * h + b];
    });

    // suffix[r] = residual ||B - B_r||_F^2 of the rank-r truncation.
    std::vector<double> suffix(h + 1, 0.0);
    for (std::size_t r = h; r-- > 0;) {
        suffix[r] = suffix[r + 1] +
                    std::max(0.0, gram[order[r] * h + order[r]]);
    }
    const std::size_t max_rank =
        opts.maxRank > 0 ? std::min(opts.maxRank, h) : h;
    std::size_t rank = max_rank;
    for (std::size_t r = 0; r <= max_rank; ++r) {
        if (std::sqrt(suffix[r] / total) <= opts.relTolerance) {
            rank = r;
            break;
        }
    }
    out.relError_ = std::sqrt(suffix[rank] / total);

    out.temporal_.reserve(rank);
    out.spatial_.reserve(rank);
    for (std::size_t r = 0; r < rank; ++r) {
        const std::size_t col = order[r];
        std::vector<double> v(h);
        for (std::size_t a = 0; a < h; ++a)
            v[a] = eigvecs[a * h + col];
        // Spatial factor U_r = B v_r (carries the singular-value scale).
        std::vector<double> u(pairs, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                double acc = 0.0;
                for (std::size_t a = 0; a < h; ++a)
                    acc += matrix.coeff(i, j, a) * v[a];
                u[i * n + j] = acc;
            }
        }
        out.temporal_.push_back(std::move(v));
        out.spatial_.push_back(std::move(u));
    }
    return out;
}

} // namespace ecolo::thermal
