#include "thermal/factorization.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "thermal/heat_matrix.hh"
#include "util/logging.hh"

namespace ecolo::thermal {

namespace {

/**
 * Cyclic Jacobi eigendecomposition of a symmetric h x h matrix (h is the
 * horizon, typically 10, so cost is negligible). On return `a` holds a
 * near-diagonal matrix whose diagonal are the eigenvalues and `v` the
 * corresponding orthonormal eigenvectors (columns).
 */
void
jacobiEigen(std::vector<double> &a, std::vector<double> &v, std::size_t h)
{
    v.assign(h * h, 0.0);
    for (std::size_t i = 0; i < h; ++i)
        v[i * h + i] = 1.0;

    for (int sweep = 0; sweep < 64; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < h; ++p)
            for (std::size_t q = p + 1; q < h; ++q)
                off += a[p * h + q] * a[p * h + q];
        if (off < 1e-28 * std::max(1e-300, std::abs(std::accumulate(
                              a.begin(), a.end(), 0.0))))
            break;

        for (std::size_t p = 0; p < h; ++p) {
            for (std::size_t q = p + 1; q < h; ++q) {
                const double apq = a[p * h + q];
                if (std::abs(apq) < 1e-300)
                    continue;
                const double app = a[p * h + p];
                const double aqq = a[q * h + q];
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::abs(theta) +
                                  std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (std::size_t k = 0; k < h; ++k) {
                    const double akp = a[k * h + p];
                    const double akq = a[k * h + q];
                    a[k * h + p] = c * akp - s * akq;
                    a[k * h + q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < h; ++k) {
                    const double apk = a[p * h + k];
                    const double aqk = a[q * h + k];
                    a[p * h + k] = c * apk - s * aqk;
                    a[q * h + k] = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < h; ++k) {
                    const double vkp = v[k * h + p];
                    const double vkq = v[k * h + q];
                    v[k * h + p] = c * vkp - s * vkq;
                    v[k * h + q] = s * vkp + c * vkq;
                }
            }
        }
    }
}

/**
 * Solve the m x m system a * x = b in place via Gaussian elimination with
 * partial pivoting (m <= 3 here). Returns false when near-singular --
 * callers treat that as "this Prony order is degenerate, try another".
 */
bool
solveSmallSystem(std::vector<double> &a, std::vector<double> &b,
                 std::size_t m)
{
    double scale = 0.0;
    for (double v : a)
        scale = std::max(scale, std::abs(v));
    if (scale <= 0.0)
        return false;
    for (std::size_t col = 0; col < m; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < m; ++row) {
            if (std::abs(a[row * m + col]) > std::abs(a[pivot * m + col]))
                pivot = row;
        }
        if (std::abs(a[pivot * m + col]) < 1e-12 * scale)
            return false;
        if (pivot != col) {
            for (std::size_t k = 0; k < m; ++k)
                std::swap(a[col * m + k], a[pivot * m + k]);
            std::swap(b[col], b[pivot]);
        }
        for (std::size_t row = col + 1; row < m; ++row) {
            const double f = a[row * m + col] / a[col * m + col];
            for (std::size_t k = col; k < m; ++k)
                a[row * m + k] -= f * a[col * m + k];
            b[row] -= f * b[col];
        }
    }
    for (std::size_t col = m; col-- > 0;) {
        double acc = b[col];
        for (std::size_t k = col + 1; k < m; ++k)
            acc -= a[col * m + k] * b[k];
        b[col] = acc / a[col * m + col];
    }
    return true;
}

/**
 * Real roots of z^m - c[0] z^(m-1) - ... - c[m-1] = 0 (the Prony
 * characteristic polynomial), closed form for m <= 3. Returns false when
 * any root is complex -- an oscillatory pair this order cannot represent
 * with real decays.
 */
bool
characteristicRoots(const std::vector<double> &c, std::size_t m,
                    std::vector<double> &roots_out)
{
    roots_out.clear();
    if (m == 1) {
        roots_out.push_back(c[0]);
        return true;
    }
    if (m == 2) {
        const double disc = c[0] * c[0] + 4.0 * c[1];
        if (disc < 0.0)
            return false;
        const double s = std::sqrt(disc);
        roots_out.push_back(0.5 * (c[0] + s));
        roots_out.push_back(0.5 * (c[0] - s));
        return true;
    }
    // m == 3: depressed cubic t^3 + p t + q with z = t - a2 / 3.
    const double a2 = -c[0], a1 = -c[1], a0 = -c[2];
    const double p = a1 - a2 * a2 / 3.0;
    const double q = 2.0 * a2 * a2 * a2 / 27.0 - a2 * a1 / 3.0 + a0;
    const double disc = -4.0 * p * p * p - 27.0 * q * q;
    const double magnitude =
        std::max({std::abs(p), std::abs(q), 1e-30});
    if (disc < -1e-12 * magnitude * magnitude * magnitude)
        return false; // one real + complex pair
    if (std::abs(p) < 1e-14 * magnitude) {
        const double t = std::cbrt(-q);
        roots_out.assign(3, t - a2 / 3.0);
        return true;
    }
    if (p > 0.0)
        return false; // disc >= 0 requires p <= 0 away from degeneracy
    const double r = 2.0 * std::sqrt(-p / 3.0);
    const double arg =
        std::clamp(3.0 * q / (p * r), -1.0, 1.0);
    const double theta = std::acos(arg) / 3.0;
    for (int k = 0; k < 3; ++k) {
        roots_out.push_back(
            r * std::cos(theta - 2.0 * M_PI * k / 3.0) - a2 / 3.0);
    }
    return true;
}

} // namespace

ExponentialFit
fitExponentialModes(const std::vector<double> &values,
                    std::size_t max_modes, double rel_tolerance)
{
    const std::size_t h = values.size();
    ExponentialFit best;

    double norm2 = 0.0;
    for (double v : values)
        norm2 += v * v;
    if (norm2 <= 0.0) {
        best.relError = 0.0; // the zero signal: zero modes, exact
        return best;
    }

    std::vector<double> normal, rhs, coeffs, roots, fitted;
    const std::size_t order_cap = std::min(max_modes, h / 2);
    for (std::size_t m = 1; m <= order_cap; ++m) {
        // Linear prediction: v[t] ~= sum_k c_k v[t-k] for t in [m, h).
        normal.assign(m * m, 0.0);
        rhs.assign(m, 0.0);
        for (std::size_t t = m; t < h; ++t) {
            for (std::size_t a = 0; a < m; ++a) {
                rhs[a] += values[t] * values[t - 1 - a];
                for (std::size_t b = a; b < m; ++b) {
                    normal[a * m + b] +=
                        values[t - 1 - a] * values[t - 1 - b];
                }
            }
        }
        for (std::size_t a = 0; a < m; ++a)
            for (std::size_t b = 0; b < a; ++b)
                normal[a * m + b] = normal[b * m + a];
        coeffs = rhs;
        if (!solveSmallSystem(normal, coeffs, m))
            continue;
        if (!characteristicRoots(coeffs, m, roots))
            continue;

        // Stability / conditioning guards. |lambda| == 1 is fine: the
        // streaming window subtracts the exact lambda^H tail, so even a
        // non-decaying mode cannot drift.
        bool usable = true;
        for (double &lam : roots) {
            if (!std::isfinite(lam))
                usable = false;
            else if (std::abs(lam) > 1.0 + 1e-9)
                usable = false;
            else if (std::abs(lam) > 1.0)
                lam = lam > 0.0 ? 1.0 : -1.0;
        }
        for (std::size_t a = 0; usable && a < roots.size(); ++a)
            for (std::size_t b = a + 1; b < roots.size(); ++b)
                if (std::abs(roots[a] - roots[b]) < 1e-9)
                    usable = false;
        if (!usable)
            continue;

        // Weights: least-squares on the Vandermonde columns lambda^tau.
        normal.assign(m * m, 0.0);
        rhs.assign(m, 0.0);
        for (std::size_t t = 0; t < h; ++t) {
            const double td = static_cast<double>(t);
            for (std::size_t a = 0; a < m; ++a) {
                const double ea = std::pow(roots[a], td);
                rhs[a] += ea * values[t];
                for (std::size_t b = a; b < m; ++b)
                    normal[a * m + b] += ea * std::pow(roots[b], td);
            }
        }
        for (std::size_t a = 0; a < m; ++a)
            for (std::size_t b = 0; b < a; ++b)
                normal[a * m + b] = normal[b * m + a];
        std::vector<double> weights = rhs;
        if (!solveSmallSystem(normal, weights, m))
            continue;

        fitted.assign(h, 0.0);
        for (std::size_t a = 0; a < m; ++a)
            for (std::size_t t = 0; t < h; ++t)
                fitted[t] +=
                    weights[a] * std::pow(roots[a],
                                          static_cast<double>(t));
        double err2 = 0.0;
        for (std::size_t t = 0; t < h; ++t) {
            const double d = values[t] - fitted[t];
            err2 += d * d;
        }
        const double rel = std::sqrt(err2 / norm2);
        if (rel < best.relError) {
            best.relError = rel;
            best.modes.clear();
            for (std::size_t a = 0; a < m; ++a)
                best.modes.push_back({weights[a], roots[a]});
        }
        if (best.relError <= rel_tolerance)
            break;
    }
    return best;
}

TemporalFactorization
TemporalFactorization::compute(const HeatDistributionMatrix &matrix,
                               FactorizationOptions opts)
{
    const std::size_t n = matrix.numServers();
    const std::size_t h = matrix.horizon();
    const std::size_t pairs = n * n;

    TemporalFactorization out;
    out.numServers_ = n;
    out.horizon_ = h;

    // Gram matrix C = B^T B of the mode-3 unfolding B[(i,j)][tau].
    std::vector<double> gram(h * h, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t a = 0; a < h; ++a) {
                const double ca = matrix.coeff(i, j, a);
                for (std::size_t b = a; b < h; ++b)
                    gram[a * h + b] += ca * matrix.coeff(i, j, b);
            }
        }
    }
    for (std::size_t a = 0; a < h; ++a)
        for (std::size_t b = 0; b < a; ++b)
            gram[a * h + b] = gram[b * h + a];

    double total = 0.0; // trace(C) = ||B||_F^2
    for (std::size_t a = 0; a < h; ++a)
        total += gram[a * h + a];
    if (total <= 0.0) {
        out.relError_ = 0.0; // all-zero tensor: rank 0 is exact
        return out;
    }

    std::vector<double> eigvecs;
    jacobiEigen(gram, eigvecs, h);

    std::vector<std::size_t> order(h);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return gram[a * h + a] > gram[b * h + b];
    });

    // suffix[r] = residual ||B - B_r||_F^2 of the rank-r truncation.
    std::vector<double> suffix(h + 1, 0.0);
    for (std::size_t r = h; r-- > 0;) {
        suffix[r] = suffix[r + 1] +
                    std::max(0.0, gram[order[r] * h + order[r]]);
    }
    const std::size_t max_rank =
        opts.maxRank > 0 ? std::min(opts.maxRank, h) : h;
    std::size_t rank = max_rank;
    for (std::size_t r = 0; r <= max_rank; ++r) {
        if (std::sqrt(suffix[r] / total) <= opts.relTolerance) {
            rank = r;
            break;
        }
    }
    out.relError_ = std::sqrt(suffix[rank] / total);

    out.temporal_.reserve(rank);
    out.spatial_.reserve(rank);
    for (std::size_t r = 0; r < rank; ++r) {
        const std::size_t col = order[r];
        std::vector<double> v(h);
        for (std::size_t a = 0; a < h; ++a)
            v[a] = eigvecs[a * h + col];
        // Spatial factor U_r = B v_r (carries the singular-value scale).
        std::vector<double> u(pairs, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                double acc = 0.0;
                for (std::size_t a = 0; a < h; ++a)
                    acc += matrix.coeff(i, j, a) * v[a];
                u[i * n + j] = acc;
            }
        }
        out.temporal_.push_back(std::move(v));
        out.spatial_.push_back(std::move(u));
    }

    // Exponential-mode fits per factor, and the streaming fit residual:
    // each factor's misfit scaled by its singular value (sigma_r^2 ==
    // ||U_r||_F^2 since U_r = B v_r). The truncation residual is NOT
    // included -- the streaming kernel replaces the *factorized* walk, so
    // its admission gate measures only the error the fits add on top.
    // (suffix[rank] is also a cancellation-limited estimate: for the
    // analytic rank-1 tensor it floors near sqrt(eps) while the actual
    // reconstruction is exact to ~1e-12, and gating on it would wrongly
    // reject a machine-exact fit.)
    double stream_err2 = 0.0;
    out.fits_.reserve(rank);
    for (std::size_t r = 0; r < rank; ++r) {
        ExponentialFit fit = fitExponentialModes(
            out.temporal_[r], opts.maxModesPerFactor,
            opts.streamingTolerance);
        double sigma2 = 0.0;
        for (double u : out.spatial_[r])
            sigma2 += u * u;
        stream_err2 += sigma2 * fit.relError * fit.relError;
        out.fits_.push_back(std::move(fit));
    }
    out.streamingRelError_ = std::sqrt(std::max(0.0, stream_err2) / total);
    return out;
}

} // namespace ecolo::thermal
