#include "thermal/heat_matrix.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::thermal {

HeatDistributionMatrix::HeatDistributionMatrix(std::size_t num_servers,
                                               std::size_t horizon_minutes)
    : numServers_(num_servers), horizon_(horizon_minutes),
      coeffs_(num_servers * num_servers * horizon_minutes, 0.0)
{
    ECOLO_ASSERT(num_servers > 0 && horizon_minutes > 0,
                 "degenerate heat distribution matrix");
}

double &
HeatDistributionMatrix::coeff(std::size_t i, std::size_t j, std::size_t tau)
{
    ECOLO_ASSERT(i < numServers_ && j < numServers_ && tau < horizon_,
                 "matrix index out of range");
    return coeffs_[(i * numServers_ + j) * horizon_ + tau];
}

double
HeatDistributionMatrix::coeff(std::size_t i, std::size_t j,
                              std::size_t tau) const
{
    ECOLO_ASSERT(i < numServers_ && j < numServers_ && tau < horizon_,
                 "matrix index out of range");
    return coeffs_[(i * numServers_ + j) * horizon_ + tau];
}

double
HeatDistributionMatrix::steadyGain(std::size_t i, std::size_t j) const
{
    double sum = 0.0;
    for (std::size_t tau = 0; tau < horizon_; ++tau)
        sum += coeff(i, j, tau);
    return sum;
}

double
HeatDistributionMatrix::totalSteadyGain(std::size_t i) const
{
    double sum = 0.0;
    for (std::size_t j = 0; j < numServers_; ++j)
        sum += steadyGain(i, j);
    return sum;
}

HeatDistributionMatrix
HeatDistributionMatrix::analyticDefault(const power::DataCenterLayout &layout,
                                        AnalyticParams params,
                                        std::size_t horizon_minutes)
{
    const std::size_t n = layout.numServers();
    HeatDistributionMatrix matrix(n, horizon_minutes);

    // Temporal kernel: increments of 1 - exp(-t/T), normalized to sum 1 so
    // the per-pair steady gain equals the spatial coefficient.
    std::vector<double> kernel(horizon_minutes);
    double kernel_sum = 0.0;
    const double rise = std::max(params.riseTimeMinutes, 1e-6);
    for (std::size_t tau = 0; tau < horizon_minutes; ++tau) {
        const double t0 = static_cast<double>(tau);
        kernel[tau] = std::exp(-t0 / rise) - std::exp(-(t0 + 1.0) / rise);
        kernel_sum += kernel[tau];
    }
    for (double &k : kernel)
        k /= kernel_sum;

    const auto per_rack = static_cast<double>(layout.serversPerRack());
    for (std::size_t i = 0; i < n; ++i) {
        const power::RackSlot ri = layout.rackSlotOf(i);
        // Containment leaks more near the top of the rack, so upper slots
        // couple more strongly to everything.
        const double slot_bias =
            1.0 + params.topSlotBias * static_cast<double>(ri.slot) /
                      std::max(1.0, per_rack - 1.0);
        for (std::size_t j = 0; j < n; ++j) {
            const power::RackSlot rj = layout.rackSlotOf(j);
            double gain = params.globalGain / static_cast<double>(n);
            if (i == j) {
                gain += params.selfGain;
            } else if (ri.rack == rj.rack) {
                const double dist = std::abs(
                    static_cast<double>(ri.slot) -
                    static_cast<double>(rj.slot));
                gain += params.neighborGain *
                        std::exp(-dist / params.slotDecay);
            } else {
                gain += params.crossRackGain / per_rack;
            }
            gain *= slot_bias;
            for (std::size_t tau = 0; tau < horizon_minutes; ++tau)
                matrix.coeff(i, j, tau) = gain * kernel[tau];
        }
    }
    return matrix;
}

HeatDistributionMatrix
HeatDistributionMatrix::extractFromCfd(
    const power::DataCenterLayout &layout, const CfdParams &cfd_params,
    const std::vector<Kilowatts> &baseline_powers, Kilowatts spike,
    std::size_t horizon_minutes, Seconds settle_time)
{
    const std::size_t n = layout.numServers();
    ECOLO_ASSERT(baseline_powers.size() == n,
                 "baseline power vector size mismatch");
    ECOLO_ASSERT(spike.value() > 0.0, "spike must be positive");

    // Bring the container to a quasi-steady state once, then reuse it as
    // the starting point of every spike run (the solver is copyable).
    CfdSolver steady(layout, cfd_params);
    steady.setAllServerPowers(baseline_powers);
    steady.run(settle_time);

    HeatDistributionMatrix matrix(n, horizon_minutes);
    for (std::size_t j = 0; j < n; ++j) {
        CfdSolver spiked = steady;
        CfdSolver reference = steady;
        std::vector<Kilowatts> powers = baseline_powers;
        powers[j] += spike;
        spiked.setAllServerPowers(powers);

        std::vector<double> prev_rise(n, 0.0);
        for (std::size_t tau = 0; tau < horizon_minutes; ++tau) {
            spiked.run(minutes(1));
            reference.run(minutes(1));
            for (std::size_t i = 0; i < n; ++i) {
                const double rise =
                    (spiked.inletTemperature(i) -
                     reference.inletTemperature(i)).value();
                matrix.coeff(i, j, tau) =
                    (rise - prev_rise[i]) / spike.value();
                prev_rise[i] = rise;
            }
        }
    }
    return matrix;
}

MatrixThermalModel::MatrixThermalModel(HeatDistributionMatrix matrix)
    : matrix_(std::move(matrix)),
      history_(matrix_.horizon(),
               std::vector<double>(matrix_.numServers(), 0.0))
{
}

void
MatrixThermalModel::pushPowers(const std::vector<Kilowatts> &powers)
{
    ECOLO_ASSERT(powers.size() == matrix_.numServers(),
                 "power vector size mismatch");
    auto &slot = history_[head_];
    for (std::size_t j = 0; j < powers.size(); ++j)
        slot[j] = powers[j].value();
    head_ = (head_ + 1) % history_.size();
    filled_ = std::min(filled_ + 1, history_.size());
}

CelsiusDelta
MatrixThermalModel::inletRise(std::size_t i) const
{
    const std::size_t horizon = history_.size();
    double rise = 0.0;
    for (std::size_t tau = 0; tau < filled_; ++tau) {
        // tau = 0 is the most recently pushed vector.
        const std::size_t pos = (head_ + horizon - 1 - tau) % horizon;
        const auto &powers = history_[pos];
        for (std::size_t j = 0; j < powers.size(); ++j)
            rise += matrix_.coeff(i, j, tau) * powers[j];
    }
    return CelsiusDelta(rise);
}

void
MatrixThermalModel::computeAllRises(std::vector<double> &rises_out) const
{
    const std::size_t n = matrix_.numServers();
    const std::size_t horizon = history_.size();
    rises_out.assign(n, 0.0);
    for (std::size_t tau = 0; tau < filled_; ++tau) {
        const std::size_t pos = (head_ + horizon - 1 - tau) % horizon;
        const auto &powers = history_[pos];
        for (std::size_t i = 0; i < n; ++i) {
            double acc = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                acc += matrix_.coeff(i, j, tau) * powers[j];
            rises_out[i] += acc;
        }
    }
}

CelsiusDelta
MatrixThermalModel::maxInletRise() const
{
    CelsiusDelta best(0.0);
    for (std::size_t i = 0; i < matrix_.numServers(); ++i)
        best = std::max(best, inletRise(i));
    return best;
}

void
MatrixThermalModel::reset()
{
    for (auto &slot : history_)
        std::fill(slot.begin(), slot.end(), 0.0);
    head_ = 0;
    filled_ = 0;
}

} // namespace ecolo::thermal
