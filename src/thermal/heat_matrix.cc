#include "thermal/heat_matrix.hh"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hh"
#include "thermal/stream_kernels.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace ecolo::thermal {

namespace {

/**
 * The factorized kernel must beat the dense convolution by a real margin
 * before it is selected: rank * (N H + N^2) multiply-adds per minute vs.
 * the dense N^2 H.
 */
constexpr double kFactorizedCostAdvantage = 0.75;

/** Stable ids for the checkpoint section (never reorder). */
constexpr std::uint32_t
kernelModeId(KernelMode mode)
{
    switch (mode) {
      case KernelMode::Auto:
        return 0;
      case KernelMode::Dense:
        return 1;
      case KernelMode::Factorized:
        return 2;
      case KernelMode::Streaming:
        return 3;
    }
    return 1;
}

} // namespace

const char *
kernelModeName(KernelMode mode)
{
    switch (mode) {
      case KernelMode::Auto:
        return "auto";
      case KernelMode::Dense:
        return "dense";
      case KernelMode::Factorized:
        return "factorized";
      case KernelMode::Streaming:
        return "streaming";
    }
    return "dense";
}

bool
parseKernelMode(std::string_view text, KernelMode &out)
{
    for (KernelMode mode : {KernelMode::Auto, KernelMode::Dense,
                            KernelMode::Factorized, KernelMode::Streaming}) {
        if (text == kernelModeName(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

HeatDistributionMatrix::HeatDistributionMatrix(std::size_t num_servers,
                                               std::size_t horizon_minutes)
    : numServers_(num_servers), horizon_(horizon_minutes),
      coeffs_(num_servers * num_servers * horizon_minutes, 0.0)
{
    ECOLO_ASSERT(num_servers > 0 && horizon_minutes > 0,
                 "degenerate heat distribution matrix");
}

double &
HeatDistributionMatrix::coeff(std::size_t i, std::size_t j, std::size_t tau)
{
    ECOLO_ASSERT(i < numServers_ && j < numServers_ && tau < horizon_,
                 "matrix index out of range");
    gainsDirty_ = true;
    return coeffs_[(i * numServers_ + j) * horizon_ + tau];
}

double
HeatDistributionMatrix::coeff(std::size_t i, std::size_t j,
                              std::size_t tau) const
{
    ECOLO_ASSERT(i < numServers_ && j < numServers_ && tau < horizon_,
                 "matrix index out of range");
    return coeffs_[(i * numServers_ + j) * horizon_ + tau];
}

void
HeatDistributionMatrix::ensureGainCache() const
{
    if (!gainsDirty_)
        return;
    steadyGains_.assign(numServers_ * numServers_, 0.0);
    totalGains_.assign(numServers_, 0.0);
    for (std::size_t i = 0; i < numServers_; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < numServers_; ++j) {
            const double *cell =
                &coeffs_[(i * numServers_ + j) * horizon_];
            double sum = 0.0;
            for (std::size_t tau = 0; tau < horizon_; ++tau)
                sum += cell[tau];
            steadyGains_[i * numServers_ + j] = sum;
            row += sum;
        }
        totalGains_[i] = row;
    }
    gainsDirty_ = false;
}

double
HeatDistributionMatrix::steadyGain(std::size_t i, std::size_t j) const
{
    ECOLO_ASSERT(i < numServers_ && j < numServers_,
                 "matrix index out of range");
    ensureGainCache();
    return steadyGains_[i * numServers_ + j];
}

double
HeatDistributionMatrix::totalSteadyGain(std::size_t i) const
{
    ECOLO_ASSERT(i < numServers_, "matrix index out of range");
    ensureGainCache();
    return totalGains_[i];
}

HeatDistributionMatrix
HeatDistributionMatrix::analyticDefault(const power::DataCenterLayout &layout,
                                        AnalyticParams params,
                                        std::size_t horizon_minutes)
{
    const std::size_t n = layout.numServers();
    HeatDistributionMatrix matrix(n, horizon_minutes);

    // Temporal kernel: increments of 1 - exp(-t/T), normalized to sum 1 so
    // the per-pair steady gain equals the spatial coefficient.
    std::vector<double> kernel(horizon_minutes);
    double kernel_sum = 0.0;
    const double rise = std::max(params.riseTimeMinutes, 1e-6);
    for (std::size_t tau = 0; tau < horizon_minutes; ++tau) {
        const double t0 = static_cast<double>(tau);
        kernel[tau] = std::exp(-t0 / rise) - std::exp(-(t0 + 1.0) / rise);
        kernel_sum += kernel[tau];
    }
    for (double &k : kernel)
        k /= kernel_sum;

    const auto per_rack = static_cast<double>(layout.serversPerRack());
    for (std::size_t i = 0; i < n; ++i) {
        const power::RackSlot ri = layout.rackSlotOf(i);
        // Containment leaks more near the top of the rack, so upper slots
        // couple more strongly to everything.
        const double slot_bias =
            1.0 + params.topSlotBias * static_cast<double>(ri.slot) /
                      std::max(1.0, per_rack - 1.0);
        for (std::size_t j = 0; j < n; ++j) {
            const power::RackSlot rj = layout.rackSlotOf(j);
            double gain = params.globalGain / static_cast<double>(n);
            if (i == j) {
                gain += params.selfGain;
            } else if (ri.rack == rj.rack) {
                const double dist = std::abs(
                    static_cast<double>(ri.slot) -
                    static_cast<double>(rj.slot));
                gain += params.neighborGain *
                        std::exp(-dist / params.slotDecay);
            } else {
                gain += params.crossRackGain / per_rack;
            }
            gain *= slot_bias;
            for (std::size_t tau = 0; tau < horizon_minutes; ++tau)
                matrix.coeff(i, j, tau) = gain * kernel[tau];
        }
    }
    matrix.ensureGainCache();
    return matrix;
}

HeatDistributionMatrix
HeatDistributionMatrix::extractFromCfd(
    const power::DataCenterLayout &layout, const CfdParams &cfd_params,
    const std::vector<Kilowatts> &baseline_powers, Kilowatts spike,
    std::size_t horizon_minutes, Seconds settle_time)
{
    const std::size_t n = layout.numServers();
    ECOLO_ASSERT(baseline_powers.size() == n,
                 "baseline power vector size mismatch");
    ECOLO_ASSERT(spike.value() > 0.0, "spike must be positive");

    telemetry::TraceSpan extract_span("cfd.extract");

    // Bring the container to a quasi-steady state once, then reuse it as
    // the starting point of every spike run (the solver is copyable).
    CfdSolver steady(layout, cfd_params);
    steady.setAllServerPowers(baseline_powers);
    steady.run(settle_time);

    HeatDistributionMatrix matrix(n, horizon_minutes);
    // Spike columns j are independent: each worker copies the settled
    // solver and writes the disjoint [*][j][*] slice. The solver is
    // deterministic, so the result is bit-identical to a serial loop.
    // (Direct coeffs_ writes keep workers off the shared dirty flag.)
    double *coeffs = matrix.coeffs_.data();
    util::parallelFor(0, n, [&](std::size_t j) {
        CfdSolver spiked = steady;
        CfdSolver reference = steady;
        std::vector<Kilowatts> powers = baseline_powers;
        powers[j] += spike;
        spiked.setAllServerPowers(powers);

        std::vector<double> prev_rise(n, 0.0);
        for (std::size_t tau = 0; tau < horizon_minutes; ++tau) {
            spiked.run(minutes(1));
            reference.run(minutes(1));
            for (std::size_t i = 0; i < n; ++i) {
                const double rise =
                    (spiked.inletTemperature(i) -
                     reference.inletTemperature(i)).value();
                coeffs[(i * n + j) * horizon_minutes + tau] =
                    (rise - prev_rise[i]) / spike.value();
                prev_rise[i] = rise;
            }
        }
    });
    matrix.ensureGainCache();
    return matrix;
}

MatrixThermalModel::MatrixThermalModel(
    HeatDistributionMatrix matrix, KernelMode mode,
    FactorizationOptions factorization,
    std::shared_ptr<const TemporalFactorization> precomputed)
    : matrix_(std::move(matrix)), requested_(mode),
      history_(matrix_.horizon() * matrix_.numServers(), 0.0)
{
    if (mode == KernelMode::Dense) {
        active_ = KernelMode::Dense;
        return;
    }

    const double n = static_cast<double>(matrix_.numServers());
    const double h = static_cast<double>(matrix_.horizon());
    // A precomputed factorization (the campaign setup cache) must have
    // been computed from the same matrix with the same options, so
    // copying it is bit-identical to recomputing -- compute() is
    // deterministic.
    TemporalFactorization factors =
        precomputed ? *precomputed
                    : TemporalFactorization::compute(matrix_, factorization);
    const double factorized_cost =
        static_cast<double>(factors.rank()) * (n * h + n * n);
    const double dense_cost = n * n * h;
    const bool factorized_worthwhile =
        factors.relError() <= factorization.relTolerance &&
        factorized_cost <= kFactorizedCostAdvantage * dense_cost;
    const bool streaming_fits =
        factors.streamingRelError() <= factorization.streamingTolerance;

    switch (mode) {
      case KernelMode::Factorized:
        // Forced: exact at full rank by construction, so always honored.
        factors_ = std::move(factors);
        active_ = KernelMode::Factorized;
        break;
      case KernelMode::Streaming:
        factors_ = std::move(factors);
        if (streaming_fits) {
            active_ = KernelMode::Streaming;
        } else {
            ECOLO_WARN_ONCE(
                "streaming kernel requested but the exponential fit "
                "misses tolerance (", factors_.streamingRelError(), " > ",
                factorization.streamingTolerance,
                "); falling back to the factorized walk");
            active_ = KernelMode::Factorized;
        }
        break;
      case KernelMode::Auto:
      default:
        if (factorized_worthwhile) {
            factors_ = std::move(factors);
            active_ = streaming_fits ? KernelMode::Streaming
                                     : KernelMode::Factorized;
        } else {
            active_ = KernelMode::Dense;
        }
        break;
    }
    if (active_ == KernelMode::Streaming)
        initStreamingState();
}

void
MatrixThermalModel::initStreamingState()
{
    const std::size_t n = matrix_.numServers();
    const std::size_t rank = factors_.rank();
    const double horizon = static_cast<double>(matrix_.horizon());

    rankModeBegin_.assign(rank + 1, 0);
    for (std::size_t r = 0; r < rank; ++r) {
        rankModeBegin_[r + 1] =
            rankModeBegin_[r] + factors_.temporalFit(r).modes.size();
    }
    const std::size_t total_modes = rankModeBegin_[rank];
    modeDecay_.resize(total_modes);
    modeTail_.resize(total_modes);
    modeWeight_.resize(total_modes);
    for (std::size_t r = 0; r < rank; ++r) {
        const auto &modes = factors_.temporalFit(r).modes;
        for (std::size_t m = 0; m < modes.size(); ++m) {
            const std::size_t q = rankModeBegin_[r] + m;
            modeDecay_[q] = modes[m].decay;
            modeTail_[q] = std::pow(modes[m].decay, horizon);
            modeWeight_[q] = modes[m].weight;
        }
    }
    modeAccum_.assign(total_modes * n, 0.0);
    spatialT_.assign(rank * n * n, 0.0);
    for (std::size_t r = 0; r < rank; ++r) {
        const double *u = factors_.spatial(r).data();
        double *ut = &spatialT_[r * n * n];
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                ut[j * n + i] = u[i * n + j];
    }
    streamRises_.assign(n, 0.0);
    pushScratch_.assign(n, 0.0);
    streamSum_.assign(n, 0.0);
}

void
MatrixThermalModel::pushPowers(const std::vector<Kilowatts> &powers)
{
    const std::size_t n = matrix_.numServers();
    const std::size_t horizon = matrix_.horizon();
    ECOLO_ASSERT(powers.size() == n, "power vector size mismatch");
    double *slot = &history_[head_ * n];
    if (active_ == KernelMode::Streaming) {
        double *pnew = pushScratch_.data();
        for (std::size_t j = 0; j < n; ++j)
            pnew[j] = powers[j].value();
        // `slot` still holds P(t - H) -- exactly the sample leaving the
        // window (zeros while warming up, so the correction is a no-op
        // then): a_q <- lambda_q a_q + P(t) - lambda_q^H P(t - H).
        // The advance runs through the shared out-of-line kernel so the
        // lane bank (count = N * kLaneWidth) executes the same code.
        const std::size_t total_modes = modeDecay_.size();
        for (std::size_t q = 0; q < total_modes; ++q) {
            kernels::streamAccumAdvance(&modeAccum_[q * n], pnew, slot,
                                        modeDecay_[q], modeTail_[q], n);
        }
        std::copy(pnew, pnew + n, slot);
    } else {
        for (std::size_t j = 0; j < n; ++j)
            slot[j] = powers[j].value();
    }
    head_ = (head_ + 1) % horizon;
    filled_ = std::min(filled_ + 1, horizon);
    if (active_ == KernelMode::Streaming)
        updateStreamingRises();
}

CelsiusDelta
MatrixThermalModel::inletRise(std::size_t i) const
{
    const std::size_t n = matrix_.numServers();
    const std::size_t horizon = matrix_.horizon();
    double rise = 0.0;
    for (std::size_t tau = 0; tau < filled_; ++tau) {
        // tau = 0 is the most recently pushed vector.
        const std::size_t pos = (head_ + horizon - 1 - tau) % horizon;
        const double *powers = &history_[pos * n];
        for (std::size_t j = 0; j < n; ++j)
            rise += matrix_.coeff(i, j, tau) * powers[j];
    }
    return CelsiusDelta(rise);
}

void
MatrixThermalModel::computeAllRises(std::vector<double> &rises_out) const
{
    if (active_ == KernelMode::Streaming) {
        // The recurrence already advanced in pushPowers; serve the cache.
        rises_out.assign(streamRises_.begin(), streamRises_.end());
        return;
    }
    if (active_ == KernelMode::Factorized)
        computeAllRisesFactorized(rises_out);
    else
        computeAllRisesDense(rises_out);
}

void
MatrixThermalModel::computeAllRisesDense(std::vector<double> &rises_out)
    const
{
    const std::size_t n = matrix_.numServers();
    const std::size_t horizon = matrix_.horizon();
    rises_out.assign(n, 0.0);
    for (std::size_t tau = 0; tau < filled_; ++tau) {
        const std::size_t pos = (head_ + horizon - 1 - tau) % horizon;
        const double *powers = &history_[pos * n];
        for (std::size_t i = 0; i < n; ++i) {
            double acc = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                acc += matrix_.coeff(i, j, tau) * powers[j];
            rises_out[i] += acc;
        }
    }
}

void
MatrixThermalModel::computeAllRisesFactorized(
    std::vector<double> &rises_out) const
{
    const std::size_t n = matrix_.numServers();
    const std::size_t horizon = matrix_.horizon();
    const std::size_t rank = factors_.rank();

    // Temporally-smoothed power states s_r[j] = sum_tau V_r[tau] P_j(t-tau).
    smoothed_.assign(rank * n, 0.0);
    for (std::size_t tau = 0; tau < filled_; ++tau) {
        const std::size_t pos = (head_ + horizon - 1 - tau) % horizon;
        const double *powers = &history_[pos * n];
        for (std::size_t r = 0; r < rank; ++r) {
            const double k = factors_.temporal(r)[tau];
            double *s = &smoothed_[r * n];
            for (std::size_t j = 0; j < n; ++j)
                s[j] += k * powers[j];
        }
    }

    // rises = sum_r U_r * s_r (R GEMVs).
    rises_out.assign(n, 0.0);
    for (std::size_t r = 0; r < rank; ++r) {
        const double *u = factors_.spatial(r).data();
        const double *s = &smoothed_[r * n];
        for (std::size_t i = 0; i < n; ++i) {
            const double *row = &u[i * n];
            double acc = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                acc += row[j] * s[j];
            rises_out[i] += acc;
        }
    }
}

void
MatrixThermalModel::updateStreamingRises()
{
    const std::size_t n = matrix_.numServers();
    const std::size_t rank = factors_.rank();
    double *rises = streamRises_.data();
    std::fill(rises, rises + n, 0.0);
    for (std::size_t r = 0; r < rank; ++r) {
        // Combine the rank's mode accumulators into its smoothed state
        // s_r[j] = sum_m w_m a_m[j] ...
        const std::size_t begin = rankModeBegin_[r];
        const std::size_t end = rankModeBegin_[r + 1];
        if (begin == end)
            continue; // a zero factor fits with zero modes
        double *s = streamSum_.data();
        kernels::streamCombineFirst(s, &modeAccum_[begin * n],
                                    modeWeight_[begin], n);
        for (std::size_t q = begin + 1; q < end; ++q)
            kernels::streamCombineAdd(s, &modeAccum_[q * n],
                                      modeWeight_[q], n);
        // ... then the spatial GEMV, rises += U_r s_r (see
        // stream_kernels.hh for the layout and dispatch story).
        kernels::accumulateColumnAxpy(&spatialT_[r * n * n], s, rises, n);
    }
}

bool
MatrixThermalModel::streamingStateCompatible(
    const MatrixThermalModel &other) const
{
    // Lane-bank packing predicate: two models can share one SoA arena
    // only when every constant of the recurrence is bitwise equal (the
    // bank broadcasts them across lanes) and the ring phase matches
    // (the bank keeps a single head/filled pair for the group).
    return active_ == KernelMode::Streaming &&
           other.active_ == KernelMode::Streaming &&
           matrix_.numServers() == other.matrix_.numServers() &&
           matrix_.horizon() == other.matrix_.horizon() &&
           modeDecay_ == other.modeDecay_ &&
           modeTail_ == other.modeTail_ &&
           modeWeight_ == other.modeWeight_ &&
           rankModeBegin_ == other.rankModeBegin_ &&
           spatialT_ == other.spatialT_ &&
           head_ == other.head_ && filled_ == other.filled_;
}

CelsiusDelta
MatrixThermalModel::maxInletRise() const
{
    computeAllRises(riseScratch_);
    double best = 0.0;
    for (double rise : riseScratch_)
        best = std::max(best, rise);
    return CelsiusDelta(best);
}

void
MatrixThermalModel::reset()
{
    std::fill(history_.begin(), history_.end(), 0.0);
    std::fill(modeAccum_.begin(), modeAccum_.end(), 0.0);
    std::fill(streamRises_.begin(), streamRises_.end(), 0.0);
    head_ = 0;
    filled_ = 0;
}

void
MatrixThermalModel::saveState(util::StateWriter &writer) const
{
    // THS2: v1 ("THIS") stored the ring as per-slot vectors and knew no
    // kernel modes; v2 stores the flat SoA ring, the active kernel, and
    // the streaming accumulators (empty vectors off the streaming path).
    writer.tag("THS2");
    writer.u32(kernelModeId(active_));
    writer.u64(matrix_.horizon());
    writer.u64(matrix_.numServers());
    writer.f64Vector(history_);
    writer.u64(head_);
    writer.u64(filled_);
    writer.f64Vector(modeAccum_);
    writer.f64Vector(streamRises_);
}

void
MatrixThermalModel::loadState(util::StateReader &reader)
{
    reader.tag("THS2");
    const std::uint32_t saved_mode = reader.u32();
    if (reader.ok() && saved_mode != kernelModeId(active_)) {
        const char *saved_name = "unknown";
        for (KernelMode mode :
             {KernelMode::Dense, KernelMode::Factorized,
              KernelMode::Streaming}) {
            if (saved_mode == kernelModeId(mode))
                saved_name = kernelModeName(mode);
        }
        reader.fail(ECOLO_ERROR(
            util::ErrorCode::StateError,
            "thermal kernel mode mismatch: checkpoint was written under "
            "the '", saved_name, "' kernel but the model resolved to '",
            kernelModeName(active_),
            "'; resume with the same thermal.kernel setting (the "
            "streaming accumulators are not portable across kernels)"));
        return;
    }
    const std::uint64_t slots = reader.u64();
    const std::uint64_t width = reader.u64();
    if (reader.ok() && (slots != matrix_.horizon() ||
                        width != matrix_.numServers())) {
        reader.fail(ECOLO_ERROR(
            util::ErrorCode::StateError,
            "thermal history shape mismatch: checkpoint has ", slots,
            " slots x ", width, " servers, model has ", matrix_.horizon(),
            " x ", matrix_.numServers(),
            " (was the checkpoint written with a different config?)"));
        return;
    }
    std::vector<double> history = reader.f64Vector();
    if (reader.ok() && history.size() != history_.size()) {
        reader.fail(ECOLO_ERROR(
            util::ErrorCode::StateError,
            "thermal history length mismatch: checkpoint has ",
            history.size(), " samples, model has ", history_.size()));
        return;
    }
    head_ = static_cast<std::size_t>(reader.u64());
    filled_ = static_cast<std::size_t>(reader.u64());
    std::vector<double> accum = reader.f64Vector();
    std::vector<double> rises = reader.f64Vector();
    if (reader.ok() && (accum.size() != modeAccum_.size() ||
                        rises.size() != streamRises_.size())) {
        reader.fail(ECOLO_ERROR(
            util::ErrorCode::StateError,
            "streaming accumulator shape mismatch: checkpoint has ",
            accum.size(), " + ", rises.size(), " values, model expects ",
            modeAccum_.size(), " + ", streamRises_.size(),
            " (different factorization tolerances?)"));
        return;
    }
    if (!reader.ok())
        return;
    history_ = std::move(history);
    modeAccum_ = std::move(accum);
    streamRises_ = std::move(rises);
}

} // namespace ecolo::thermal
