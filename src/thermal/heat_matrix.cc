#include "thermal/heat_matrix.hh"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace ecolo::thermal {

namespace {

/**
 * The factorized kernel must beat the dense convolution by a real margin
 * before it is selected: rank * (N H + N^2) multiply-adds per minute vs.
 * the dense N^2 H.
 */
constexpr double kFactorizedCostAdvantage = 0.75;

} // namespace

HeatDistributionMatrix::HeatDistributionMatrix(std::size_t num_servers,
                                               std::size_t horizon_minutes)
    : numServers_(num_servers), horizon_(horizon_minutes),
      coeffs_(num_servers * num_servers * horizon_minutes, 0.0)
{
    ECOLO_ASSERT(num_servers > 0 && horizon_minutes > 0,
                 "degenerate heat distribution matrix");
}

double &
HeatDistributionMatrix::coeff(std::size_t i, std::size_t j, std::size_t tau)
{
    ECOLO_ASSERT(i < numServers_ && j < numServers_ && tau < horizon_,
                 "matrix index out of range");
    gainsDirty_ = true;
    return coeffs_[(i * numServers_ + j) * horizon_ + tau];
}

double
HeatDistributionMatrix::coeff(std::size_t i, std::size_t j,
                              std::size_t tau) const
{
    ECOLO_ASSERT(i < numServers_ && j < numServers_ && tau < horizon_,
                 "matrix index out of range");
    return coeffs_[(i * numServers_ + j) * horizon_ + tau];
}

void
HeatDistributionMatrix::ensureGainCache() const
{
    if (!gainsDirty_)
        return;
    steadyGains_.assign(numServers_ * numServers_, 0.0);
    totalGains_.assign(numServers_, 0.0);
    for (std::size_t i = 0; i < numServers_; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < numServers_; ++j) {
            const double *cell =
                &coeffs_[(i * numServers_ + j) * horizon_];
            double sum = 0.0;
            for (std::size_t tau = 0; tau < horizon_; ++tau)
                sum += cell[tau];
            steadyGains_[i * numServers_ + j] = sum;
            row += sum;
        }
        totalGains_[i] = row;
    }
    gainsDirty_ = false;
}

double
HeatDistributionMatrix::steadyGain(std::size_t i, std::size_t j) const
{
    ECOLO_ASSERT(i < numServers_ && j < numServers_,
                 "matrix index out of range");
    ensureGainCache();
    return steadyGains_[i * numServers_ + j];
}

double
HeatDistributionMatrix::totalSteadyGain(std::size_t i) const
{
    ECOLO_ASSERT(i < numServers_, "matrix index out of range");
    ensureGainCache();
    return totalGains_[i];
}

HeatDistributionMatrix
HeatDistributionMatrix::analyticDefault(const power::DataCenterLayout &layout,
                                        AnalyticParams params,
                                        std::size_t horizon_minutes)
{
    const std::size_t n = layout.numServers();
    HeatDistributionMatrix matrix(n, horizon_minutes);

    // Temporal kernel: increments of 1 - exp(-t/T), normalized to sum 1 so
    // the per-pair steady gain equals the spatial coefficient.
    std::vector<double> kernel(horizon_minutes);
    double kernel_sum = 0.0;
    const double rise = std::max(params.riseTimeMinutes, 1e-6);
    for (std::size_t tau = 0; tau < horizon_minutes; ++tau) {
        const double t0 = static_cast<double>(tau);
        kernel[tau] = std::exp(-t0 / rise) - std::exp(-(t0 + 1.0) / rise);
        kernel_sum += kernel[tau];
    }
    for (double &k : kernel)
        k /= kernel_sum;

    const auto per_rack = static_cast<double>(layout.serversPerRack());
    for (std::size_t i = 0; i < n; ++i) {
        const power::RackSlot ri = layout.rackSlotOf(i);
        // Containment leaks more near the top of the rack, so upper slots
        // couple more strongly to everything.
        const double slot_bias =
            1.0 + params.topSlotBias * static_cast<double>(ri.slot) /
                      std::max(1.0, per_rack - 1.0);
        for (std::size_t j = 0; j < n; ++j) {
            const power::RackSlot rj = layout.rackSlotOf(j);
            double gain = params.globalGain / static_cast<double>(n);
            if (i == j) {
                gain += params.selfGain;
            } else if (ri.rack == rj.rack) {
                const double dist = std::abs(
                    static_cast<double>(ri.slot) -
                    static_cast<double>(rj.slot));
                gain += params.neighborGain *
                        std::exp(-dist / params.slotDecay);
            } else {
                gain += params.crossRackGain / per_rack;
            }
            gain *= slot_bias;
            for (std::size_t tau = 0; tau < horizon_minutes; ++tau)
                matrix.coeff(i, j, tau) = gain * kernel[tau];
        }
    }
    matrix.ensureGainCache();
    return matrix;
}

HeatDistributionMatrix
HeatDistributionMatrix::extractFromCfd(
    const power::DataCenterLayout &layout, const CfdParams &cfd_params,
    const std::vector<Kilowatts> &baseline_powers, Kilowatts spike,
    std::size_t horizon_minutes, Seconds settle_time)
{
    const std::size_t n = layout.numServers();
    ECOLO_ASSERT(baseline_powers.size() == n,
                 "baseline power vector size mismatch");
    ECOLO_ASSERT(spike.value() > 0.0, "spike must be positive");

    telemetry::TraceSpan extract_span("cfd.extract");

    // Bring the container to a quasi-steady state once, then reuse it as
    // the starting point of every spike run (the solver is copyable).
    CfdSolver steady(layout, cfd_params);
    steady.setAllServerPowers(baseline_powers);
    steady.run(settle_time);

    HeatDistributionMatrix matrix(n, horizon_minutes);
    // Spike columns j are independent: each worker copies the settled
    // solver and writes the disjoint [*][j][*] slice. The solver is
    // deterministic, so the result is bit-identical to a serial loop.
    // (Direct coeffs_ writes keep workers off the shared dirty flag.)
    double *coeffs = matrix.coeffs_.data();
    util::parallelFor(0, n, [&](std::size_t j) {
        CfdSolver spiked = steady;
        CfdSolver reference = steady;
        std::vector<Kilowatts> powers = baseline_powers;
        powers[j] += spike;
        spiked.setAllServerPowers(powers);

        std::vector<double> prev_rise(n, 0.0);
        for (std::size_t tau = 0; tau < horizon_minutes; ++tau) {
            spiked.run(minutes(1));
            reference.run(minutes(1));
            for (std::size_t i = 0; i < n; ++i) {
                const double rise =
                    (spiked.inletTemperature(i) -
                     reference.inletTemperature(i)).value();
                coeffs[(i * n + j) * horizon_minutes + tau] =
                    (rise - prev_rise[i]) / spike.value();
                prev_rise[i] = rise;
            }
        }
    });
    matrix.ensureGainCache();
    return matrix;
}

MatrixThermalModel::MatrixThermalModel(HeatDistributionMatrix matrix,
                                       ThermalComputeMode mode,
                                       FactorizationOptions factorization)
    : matrix_(std::move(matrix)),
      history_(matrix_.horizon(),
               std::vector<double>(matrix_.numServers(), 0.0))
{
    if (mode == ThermalComputeMode::Auto) {
        const double n = static_cast<double>(matrix_.numServers());
        const double h = static_cast<double>(matrix_.horizon());
        TemporalFactorization factors =
            TemporalFactorization::compute(matrix_, factorization);
        const double factorized_cost =
            static_cast<double>(factors.rank()) * (n * h + n * n);
        const double dense_cost = n * n * h;
        if (factors.relError() <= factorization.relTolerance &&
            factorized_cost <= kFactorizedCostAdvantage * dense_cost) {
            factors_ = std::move(factors);
            factorizedActive_ = true;
        }
    }
}

void
MatrixThermalModel::pushPowers(const std::vector<Kilowatts> &powers)
{
    ECOLO_ASSERT(powers.size() == matrix_.numServers(),
                 "power vector size mismatch");
    auto &slot = history_[head_];
    for (std::size_t j = 0; j < powers.size(); ++j)
        slot[j] = powers[j].value();
    head_ = (head_ + 1) % history_.size();
    filled_ = std::min(filled_ + 1, history_.size());
}

CelsiusDelta
MatrixThermalModel::inletRise(std::size_t i) const
{
    const std::size_t horizon = history_.size();
    double rise = 0.0;
    for (std::size_t tau = 0; tau < filled_; ++tau) {
        // tau = 0 is the most recently pushed vector.
        const std::size_t pos = (head_ + horizon - 1 - tau) % horizon;
        const auto &powers = history_[pos];
        for (std::size_t j = 0; j < powers.size(); ++j)
            rise += matrix_.coeff(i, j, tau) * powers[j];
    }
    return CelsiusDelta(rise);
}

void
MatrixThermalModel::computeAllRises(std::vector<double> &rises_out) const
{
    if (factorizedActive_)
        computeAllRisesFactorized(rises_out);
    else
        computeAllRisesDense(rises_out);
}

void
MatrixThermalModel::computeAllRisesDense(std::vector<double> &rises_out)
    const
{
    const std::size_t n = matrix_.numServers();
    const std::size_t horizon = history_.size();
    rises_out.assign(n, 0.0);
    for (std::size_t tau = 0; tau < filled_; ++tau) {
        const std::size_t pos = (head_ + horizon - 1 - tau) % horizon;
        const auto &powers = history_[pos];
        for (std::size_t i = 0; i < n; ++i) {
            double acc = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                acc += matrix_.coeff(i, j, tau) * powers[j];
            rises_out[i] += acc;
        }
    }
}

void
MatrixThermalModel::computeAllRisesFactorized(
    std::vector<double> &rises_out) const
{
    const std::size_t n = matrix_.numServers();
    const std::size_t horizon = history_.size();
    const std::size_t rank = factors_.rank();

    // Temporally-smoothed power states s_r[j] = sum_tau V_r[tau] P_j(t-tau).
    smoothed_.assign(rank * n, 0.0);
    for (std::size_t tau = 0; tau < filled_; ++tau) {
        const std::size_t pos = (head_ + horizon - 1 - tau) % horizon;
        const double *powers = history_[pos].data();
        for (std::size_t r = 0; r < rank; ++r) {
            const double k = factors_.temporal(r)[tau];
            double *s = &smoothed_[r * n];
            for (std::size_t j = 0; j < n; ++j)
                s[j] += k * powers[j];
        }
    }

    // rises = sum_r U_r * s_r (R GEMVs).
    rises_out.assign(n, 0.0);
    for (std::size_t r = 0; r < rank; ++r) {
        const double *u = factors_.spatial(r).data();
        const double *s = &smoothed_[r * n];
        for (std::size_t i = 0; i < n; ++i) {
            const double *row = &u[i * n];
            double acc = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                acc += row[j] * s[j];
            rises_out[i] += acc;
        }
    }
}

CelsiusDelta
MatrixThermalModel::maxInletRise() const
{
    computeAllRises(riseScratch_);
    double best = 0.0;
    for (double rise : riseScratch_)
        best = std::max(best, rise);
    return CelsiusDelta(best);
}

void
MatrixThermalModel::reset()
{
    for (auto &slot : history_)
        std::fill(slot.begin(), slot.end(), 0.0);
    head_ = 0;
    filled_ = 0;
}

void
MatrixThermalModel::saveState(util::StateWriter &writer) const
{
    writer.tag("THIS");
    writer.u64(history_.size());
    for (const auto &slot : history_)
        writer.f64Vector(slot);
    writer.u64(head_);
    writer.u64(filled_);
}

void
MatrixThermalModel::loadState(util::StateReader &reader)
{
    reader.tag("THIS");
    const std::uint64_t slots = reader.u64();
    if (reader.ok() && slots != history_.size()) {
        reader.fail(ECOLO_ERROR(
            util::ErrorCode::StateError,
            "thermal history slot count mismatch: checkpoint has ", slots,
            ", model has ", history_.size(),
            " (was the checkpoint written with a different config?)"));
        return;
    }
    for (auto &slot : history_) {
        const std::size_t expected = slot.size();
        slot = reader.f64Vector();
        if (reader.ok() && slot.size() != expected) {
            reader.fail(ECOLO_ERROR(
                util::ErrorCode::StateError,
                "thermal history width mismatch: checkpoint has ",
                slot.size(), " servers, model has ", expected));
            return;
        }
    }
    head_ = static_cast<std::size_t>(reader.u64());
    filled_ = static_cast<std::size_t>(reader.u64());
}

} // namespace ecolo::thermal
