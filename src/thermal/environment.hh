/**
 * @file
 * ThermalEnvironment: the facade the simulation engine talks to.
 *
 * Combines the heat-distribution matrix (spatial inlet structure) with the
 * lumped cooling/room model (aggregate overload dynamics): every minute the
 * engine hands over each server's *actual* heat output, and the environment
 * reports each server's inlet temperature
 *
 *     T_inlet_i = T_setpoint + overload_rise + matrix_rise_i .
 */

#ifndef ECOLO_THERMAL_ENVIRONMENT_HH
#define ECOLO_THERMAL_ENVIRONMENT_HH

#include <vector>

#include "thermal/cooling.hh"
#include "thermal/heat_matrix.hh"
#include "util/units.hh"

namespace ecolo::core {
class LaneBatchRunner;
} // namespace ecolo::core

namespace ecolo::thermal {

class LaneThermalBank;

/** Facade over the matrix model and the lumped cooling model. */
class ThermalEnvironment
{
  public:
    /**
     * @param matrix spatial inlet-coupling model
     * @param cooling lumped cooling/room parameters
     * @param server_airflow_w_per_k per-server fan airflow expressed as
     *        watts of heat per kelvin of inlet->outlet temperature rise
     *        (m_dot * c_p). The default (15 W/K) gives the paper's
     *        "outlet typically 10+ C above inlet" at ~150 W per server.
     * @param mode rise-computation kernel (Auto picks streaming /
     *        factorized / dense by accuracy and cost; see KernelMode)
     * @param factorization truncation + streaming-fit tolerances
     * @param precomputed_factorization optional shared fit of the same
     *        matrix/options (see MatrixThermalModel); skips the
     *        per-instance Prony fit with bit-identical behavior
     */
    ThermalEnvironment(HeatDistributionMatrix matrix, CoolingParams cooling,
                       double server_airflow_w_per_k = 15.0,
                       KernelMode mode = KernelMode::Auto,
                       FactorizationOptions factorization =
                           FactorizationOptions(),
                       std::shared_ptr<const TemporalFactorization>
                           precomputed_factorization = {});

    std::size_t numServers() const { return matrixModel_.numServers(); }

    /** Advance one minute given every server's actual heat output. */
    void stepMinute(const std::vector<Kilowatts> &server_heat);

    /**
     * Lane-batched variant of stepMinute: the matrix recurrence already
     * advanced inside a LaneThermalBank, which hands back this lane's
     * rises as a strided view (rises[i * stride]). Advances the cooling
     * model and refreshes the rise/heat caches exactly as stepMinute
     * does, but does not touch the matrix model -- the bank owns its
     * state until it scatters back (see LaneThermalBank).
     */
    void applyLaneStep(const std::vector<Kilowatts> &server_heat,
                       const double *rises, std::size_t stride);

    /** Inlet temperature of server i after the last step. */
    Celsius inletTemperature(std::size_t i) const;

    /**
     * Outlet (exhaust) temperature of server i: inlet plus the rise its
     * own heat imposes on its fan airflow (the paper's Eqn. (1):
     * T_inlet < T_outlet). What an outlet-air sensor would read.
     */
    Celsius outletTemperature(std::size_t i) const;

    /** Hottest inlet across all servers (the operator's trip metric). */
    Celsius maxInletTemperature() const;

    /** Mean inlet temperature across servers. */
    Celsius meanInletTemperature() const;

    /** Supply temperature including room overload rise. */
    Celsius supplyTemperature() const
    { return cooling_.supplyTemperature(); }

    CoolingSystem &cooling() { return cooling_; }
    const CoolingSystem &cooling() const { return cooling_; }

    const HeatDistributionMatrix &matrix() const
    { return matrixModel_.matrix(); }

    /** The rise model (to inspect which kernel Auto mode selected). */
    const MatrixThermalModel &matrixModel() const { return matrixModel_; }

    /** Drop all thermal history (outage restart). */
    void reset();

    /** Serialize / restore the mutable state (checkpointing). */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

  private:
    // The lane-batch machinery gathers/scatters the matrix model's
    // streaming state directly (keeping it externally checkpointable).
    friend class LaneThermalBank;
    friend class core::LaneBatchRunner;
    MatrixThermalModel &matrixModelMutable() { return matrixModel_; }

    MatrixThermalModel matrixModel_;
    CoolingSystem cooling_;
    double serverAirflowWPerK_;
    std::vector<double> riseCache_; //!< per-server rises, updated per step
    std::vector<double> lastHeatKw_; //!< last step's per-server heat
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_ENVIRONMENT_HH
