/**
 * @file
 * ThermalEnvironment: the facade the simulation engine talks to.
 *
 * Combines the heat-distribution matrix (spatial inlet structure) with the
 * lumped cooling/room model (aggregate overload dynamics): every minute the
 * engine hands over each server's *actual* heat output, and the environment
 * reports each server's inlet temperature
 *
 *     T_inlet_i = T_setpoint + overload_rise + matrix_rise_i .
 */

#ifndef ECOLO_THERMAL_ENVIRONMENT_HH
#define ECOLO_THERMAL_ENVIRONMENT_HH

#include <vector>

#include "thermal/cooling.hh"
#include "thermal/heat_matrix.hh"
#include "util/units.hh"

namespace ecolo::thermal {

/** Facade over the matrix model and the lumped cooling model. */
class ThermalEnvironment
{
  public:
    /**
     * @param matrix spatial inlet-coupling model
     * @param cooling lumped cooling/room parameters
     * @param server_airflow_w_per_k per-server fan airflow expressed as
     *        watts of heat per kelvin of inlet->outlet temperature rise
     *        (m_dot * c_p). The default (15 W/K) gives the paper's
     *        "outlet typically 10+ C above inlet" at ~150 W per server.
     * @param mode rise-computation kernel (Auto picks streaming /
     *        factorized / dense by accuracy and cost; see KernelMode)
     * @param factorization truncation + streaming-fit tolerances
     */
    ThermalEnvironment(HeatDistributionMatrix matrix, CoolingParams cooling,
                       double server_airflow_w_per_k = 15.0,
                       KernelMode mode = KernelMode::Auto,
                       FactorizationOptions factorization =
                           FactorizationOptions());

    std::size_t numServers() const { return matrixModel_.numServers(); }

    /** Advance one minute given every server's actual heat output. */
    void stepMinute(const std::vector<Kilowatts> &server_heat);

    /** Inlet temperature of server i after the last step. */
    Celsius inletTemperature(std::size_t i) const;

    /**
     * Outlet (exhaust) temperature of server i: inlet plus the rise its
     * own heat imposes on its fan airflow (the paper's Eqn. (1):
     * T_inlet < T_outlet). What an outlet-air sensor would read.
     */
    Celsius outletTemperature(std::size_t i) const;

    /** Hottest inlet across all servers (the operator's trip metric). */
    Celsius maxInletTemperature() const;

    /** Mean inlet temperature across servers. */
    Celsius meanInletTemperature() const;

    /** Supply temperature including room overload rise. */
    Celsius supplyTemperature() const
    { return cooling_.supplyTemperature(); }

    CoolingSystem &cooling() { return cooling_; }
    const CoolingSystem &cooling() const { return cooling_; }

    const HeatDistributionMatrix &matrix() const
    { return matrixModel_.matrix(); }

    /** The rise model (to inspect which kernel Auto mode selected). */
    const MatrixThermalModel &matrixModel() const { return matrixModel_; }

    /** Drop all thermal history (outage restart). */
    void reset();

    /** Serialize / restore the mutable state (checkpointing). */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

  private:
    MatrixThermalModel matrixModel_;
    CoolingSystem cooling_;
    double serverAirflowWPerK_;
    std::vector<double> riseCache_; //!< per-server rises, updated per step
    std::vector<double> lastHeatKw_; //!< last step's per-server heat
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_ENVIRONMENT_HH
