#include "thermal/environment.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ecolo::thermal {

ThermalEnvironment::ThermalEnvironment(
    HeatDistributionMatrix matrix, CoolingParams cooling,
    double server_airflow_w_per_k, KernelMode mode,
    FactorizationOptions factorization,
    std::shared_ptr<const TemporalFactorization> precomputed_factorization)
    : matrixModel_(std::move(matrix), mode, factorization,
                   std::move(precomputed_factorization)),
      cooling_(cooling), serverAirflowWPerK_(server_airflow_w_per_k)
{
    ECOLO_ASSERT(serverAirflowWPerK_ > 0.0,
                 "server airflow must be positive");
}

void
ThermalEnvironment::stepMinute(const std::vector<Kilowatts> &server_heat)
{
    ECOLO_ASSERT(server_heat.size() == numServers(),
                 "heat vector size mismatch: ", server_heat.size(), " vs ",
                 numServers());
    Kilowatts total(0.0);
    for (Kilowatts h : server_heat)
        total += h;
    cooling_.step(total, minutes(1));
    matrixModel_.pushPowers(server_heat);
    matrixModel_.computeAllRises(riseCache_);
    lastHeatKw_.resize(server_heat.size());
    for (std::size_t i = 0; i < server_heat.size(); ++i)
        lastHeatKw_[i] = server_heat[i].value();
}

void
ThermalEnvironment::applyLaneStep(const std::vector<Kilowatts> &server_heat,
                                  const double *rises, std::size_t stride)
{
    ECOLO_ASSERT(server_heat.size() == numServers(),
                 "heat vector size mismatch: ", server_heat.size(), " vs ",
                 numServers());
    // Mirrors stepMinute minus the matrix-model push: the total-heat
    // chain feeding the cooling model uses the same association, and
    // the rise cache receives the bank's (bit-identical) lane column.
    Kilowatts total(0.0);
    for (Kilowatts h : server_heat)
        total += h;
    cooling_.step(total, minutes(1));
    const std::size_t n = server_heat.size();
    riseCache_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        riseCache_[i] = rises[i * stride];
    lastHeatKw_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        lastHeatKw_[i] = server_heat[i].value();
}

Celsius
ThermalEnvironment::inletTemperature(std::size_t i) const
{
    if (i < riseCache_.size()) {
        return cooling_.supplyTemperature() +
               CelsiusDelta(riseCache_[i]);
    }
    return cooling_.supplyTemperature() + matrixModel_.inletRise(i);
}

Celsius
ThermalEnvironment::outletTemperature(std::size_t i) const
{
    const double heat_w =
        i < lastHeatKw_.size() ? lastHeatKw_[i] * 1000.0 : 0.0;
    return inletTemperature(i) +
           CelsiusDelta(heat_w / serverAirflowWPerK_);
}

Celsius
ThermalEnvironment::maxInletTemperature() const
{
    if (riseCache_.empty())
        return cooling_.supplyTemperature();
    double best = riseCache_[0];
    for (double r : riseCache_)
        best = std::max(best, r);
    return cooling_.supplyTemperature() + CelsiusDelta(best);
}

Celsius
ThermalEnvironment::meanInletTemperature() const
{
    if (riseCache_.empty())
        return cooling_.supplyTemperature();
    double sum = 0.0;
    for (double r : riseCache_)
        sum += r;
    return cooling_.supplyTemperature() +
           CelsiusDelta(sum / static_cast<double>(riseCache_.size()));
}

void
ThermalEnvironment::reset()
{
    matrixModel_.reset();
    cooling_.reset();
    riseCache_.clear();
    lastHeatKw_.clear();
}

void
ThermalEnvironment::saveState(util::StateWriter &writer) const
{
    writer.tag("TENV");
    matrixModel_.saveState(writer);
    cooling_.saveState(writer);
    writer.f64Vector(riseCache_);
    writer.f64Vector(lastHeatKw_);
}

void
ThermalEnvironment::loadState(util::StateReader &reader)
{
    reader.tag("TENV");
    matrixModel_.loadState(reader);
    cooling_.loadState(reader);
    riseCache_ = reader.f64Vector();
    lastHeatKw_ = reader.f64Vector();
}

} // namespace ecolo::thermal
