/**
 * @file
 * The shared cooling system and the lumped room-overload model.
 *
 * While the heat-distribution matrix captures *spatial* coupling at
 * sub-capacity operation, thermal emergencies are driven by the aggregate
 * energy balance: whenever total server heat exceeds the CRAC's removal
 * capacity, the excess accumulates in the contained air volume and the
 * supply (and hence every inlet) temperature climbs at
 * (load - capacity) / C_thermal -- the minutes-scale rise the paper
 * demonstrates in Figs. 8, 11(a) and 14(a). When load drops back below
 * capacity, the spare capacity pulls the room back toward the set point.
 */

#ifndef ECOLO_THERMAL_COOLING_HH
#define ECOLO_THERMAL_COOLING_HH

#include "util/state_io.hh"
#include "util/units.hh"

namespace ecolo::thermal {

/** Cooling-system characteristics and lumped room thermal mass. */
struct CoolingParams
{
    Kilowatts capacity{8.0};       //!< max heat removal
    Celsius supplySetPoint{27.0};  //!< conditioned supply temperature
    double airVolume = 28.5;       //!< m^3 of air in the enclosure
    /** Racks/structure add effective thermal mass beyond the air. */
    double thermalMassFactor = 1.35;
    /** Exponential pull-down time constant near the set point, seconds. */
    double recoveryTimeConstant = 240.0;
    /** Physical ceiling on how far the room can climb above set point. */
    CelsiusDelta maxOverload{40.0};
    /**
     * Fractional loss of removal capacity per kelvin of room overload: DX
     * coolers lose effectiveness as the room leaves their design envelope,
     * which is why a sustained attack can outrun the CRAC even after the
     * operator caps the metered load (the paper's Fig. 8 behaviour:
     * "if overloaded, the cooling system cannot remove all server heat").
     */
    double capacityDeratingPerKelvin = 0.01;
    /**
     * Absolute room temperature at which the unit delivers nameplate
     * capacity. Derating depends on how far the *absolute* supply
     * temperature exceeds this design point, so lowering the set point
     * (a Section VII defense) genuinely buys thermal margin.
     */
    Celsius designReferenceTemp{27.0};
    /** Floor on the derated capacity as a fraction of nameplate. */
    double minCapacityFraction = 0.7;
    /**
     * Capacity regained per kelvin of *commanded* set-point raise: warmer
     * return air improves coil heat exchange, so trading inlet margin for
     * removal capacity is a real degraded-mode lever (the operator raises
     * the set point when the CRAC partially fails). Must exceed
     * capacityDeratingPerKelvin for the raise to be a net win.
     */
    double capacityGainPerKelvinRaised = 0.04;
};

/** Lumped cooling/room state. */
class CoolingSystem
{
  public:
    explicit CoolingSystem(CoolingParams params);

    const CoolingParams &params() const { return params_; }
    Kilowatts capacity() const { return params_.capacity; }

    /** Nameplate capacity derated by the current room overload. */
    Kilowatts effectiveCapacity() const;

    /** Advance the room state given the total server heat this interval. */
    void step(Kilowatts total_heat, Seconds dt);

    /** Current room temperature rise above the supply set point. */
    CelsiusDelta overloadDelta() const { return overload_; }

    /** Effective supply temperature: set point + raise + overload rise. */
    Celsius supplyTemperature() const
    { return params_.supplySetPoint + setPointOffset_ + overload_; }

    /**
     * Inject a CRAC fault (faults::FaultSchedule): capacity_factor
     * multiplies the effective removal capacity, recovery_factor the
     * pull-down rate (fan/compressor derating). 1.0 / 1.0 restores
     * nameplate behavior bit-identically.
     */
    void setFaultDerating(double capacity_factor, double recovery_factor);
    double faultCapacityFactor() const { return faultCapacityFactor_; }
    double faultRecoveryFactor() const { return faultRecoveryFactor_; }

    /**
     * Degraded-mode set-point raise commanded by the operator: shifts the
     * supply temperature up (hotter inlets) while regaining capacity at
     * capacityGainPerKelvinRaised per kelvin. 0 restores bit-identical
     * nameplate behavior.
     */
    void setSetPointOffset(CelsiusDelta offset);
    CelsiusDelta setPointOffset() const { return setPointOffset_; }

    /** True if the last step's heat load exceeded capacity. */
    bool overloaded() const { return overloaded_; }

    /** Heat the CRAC failed to remove during the last step. */
    Kilowatts lastExcessHeat() const { return lastExcess_; }

    /** Effective thermal capacitance in J/K. */
    double thermalCapacitance() const { return capacitance_; }

    /**
     * Closed-form time for the room to climb from the set point to the
     * given threshold under a constant overload (Fig. 11(a)'s quantity).
     * Returns a very large value if overload <= 0.
     */
    Seconds timeToReach(Celsius threshold, Kilowatts overload,
                        Celsius starting_supply) const;

    /** Force the overload state (tests / scenario setup). */
    void setOverloadDelta(CelsiusDelta delta);

    /** Reset to the set point. */
    void reset();

    /** Serialize / restore the mutable room state (checkpointing). */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

  private:
    CoolingParams params_;
    double capacitance_; //!< J/K
    CelsiusDelta overload_{0.0};
    Kilowatts lastExcess_{0.0};
    bool overloaded_ = false;
    double faultCapacityFactor_ = 1.0;
    double faultRecoveryFactor_ = 1.0;
    CelsiusDelta setPointOffset_{0.0};
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_COOLING_HH
