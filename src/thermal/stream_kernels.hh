/**
 * @file
 * Shared numeric kernels of the streaming thermal recurrence.
 *
 * The scalar model (MatrixThermalModel) and the lane-batched bank
 * (LaneThermalBank) must produce byte-identical results: a simulation
 * advanced inside an 8-lane SoA group has to report exactly what it
 * would have reported alone. The only robust way to guarantee that is
 * to run both paths through the *same machine code*, so every
 * elementwise update (mode-accumulator advance, mode combine) lives
 * here as an out-of-line function called with count = N by the scalar
 * model and count = N * kLaneWidth by the bank -- same loop body, same
 * contraction decisions, per-element results identical by construction.
 *
 * The GEMV pair is different code (the vector axis moves from output
 * rows to lanes) but replicates the scalar association exactly per
 * (row, lane): four accumulator chains over column groups of four,
 * leftovers into chain 0, combined as (c0 + c1) + (c2 + c3), with the
 * scalar row tail (rows beyond the last full 8-block) using a single
 * serial chain. Both functions carry the same target_clones attribute
 * set, so the runtime resolver picks the same ISA -- and therefore the
 * same per-element FMA contraction -- for both.
 */

#ifndef ECOLO_THERMAL_STREAM_KERNELS_HH
#define ECOLO_THERMAL_STREAM_KERNELS_HH

#include <cstddef>

namespace ecolo::thermal::kernels {

/** Lanes per SIMD group: one 8-wide double vector (a Vec8). */
inline constexpr std::size_t kLaneWidth = 8;

/**
 * Mode-accumulator advance, a[k] = lambda * a[k] + pnew[k] - tail *
 * slot[k] for k in [0, count). The scalar model calls it once per mode
 * with count = N; the lane bank with count = N * kLaneWidth over the
 * lane-interleaved arena.
 */
void streamAccumAdvance(double *a, const double *pnew, const double *slot,
                        double lambda, double tail, std::size_t count);

/** First mode of a rank: s[k] = w * a[k]. */
void streamCombineFirst(double *s, const double *a, double w,
                        std::size_t count);

/** Subsequent modes: s[k] += w * a[k]. */
void streamCombineAdd(double *s, const double *a, double w,
                      std::size_t count);

/**
 * The streaming kernel's only O(N^2) step: rises[i] += sum_j s[j] *
 * ut[j * n + i] with the spatial factor stored transposed, so the inner
 * loop is independent contiguous adds (vectorizable under strict FP;
 * the row-wise reduction form is not). Function multi-versioning
 * compiles wider-vector clones next to the baseline-ISA default and
 * dispatches once at load time: the binary stays portable while the hot
 * loop uses the machine's full vector width. Contraction into FMA
 * changes only sub-1e-9 rounding; runs on one machine stay
 * bit-deterministic.
 */
void accumulateColumnAxpy(const double *ut, const double *s, double *rises,
                          std::size_t n);

/**
 * Lane-batched GEMV over kLaneWidth interleaved states: risesK[i *
 * kLaneWidth + l] += sum_j sK[j * kLaneWidth + l] * ut[j * n + i].
 * The per-(row, lane) accumulation order replicates
 * accumulateColumnAxpy exactly (see file comment), so lane l's rises
 * are bitwise what the scalar GEMV computes from lane l's state.
 */
void laneAccumulateColumnAxpy8(const double *ut, const double *sK,
                               double *risesK, std::size_t n);

} // namespace ecolo::thermal::kernels

#endif // ECOLO_THERMAL_STREAM_KERNELS_HH
