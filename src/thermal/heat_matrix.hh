/**
 * @file
 * The heat-distribution-matrix thermal model.
 *
 * Transient CFD over a year is computationally prohibitive, so -- exactly as
 * the paper does (Section V-A, following Tang et al.) -- we extract a
 * finite-horizon impulse-response tensor from short CFD runs and use it for
 * long simulations: injecting a heat spike at server j and recording every
 * server's inlet temperature for 10 minutes yields coefficients h[i][j][tau]
 * (K per kW), after which server i's inlet temperature is the supply
 * temperature plus the convolution of all servers' recent power with h.
 *
 * The per-minute convolution is the hot path of every year-long campaign.
 * MatrixThermalModel therefore factorizes the tensor (see
 * thermal/factorization.hh) whenever it is separable enough: rises become
 * R temporally-smoothed power states plus R N x N GEMVs, O(R (N H + N^2))
 * instead of O(N^2 H) -- an exact rank-1 split for the analytic default,
 * a truncated low-rank one for CFD-extracted tensors, and a dense
 * fallback otherwise. Selection is automatic; call sites are unchanged.
 *
 * When each temporal factor additionally admits an exponential-mode fit
 * (see ExponentialFit), the smoothed states become streaming accumulators
 * advanced inside pushPowers -- a <- lambda a + p(t) - lambda^H p(t-H),
 * with the departing ring slot supplying the exact window tail -- and
 * computeAllRises returns a cached vector with *no history traversal at
 * all*: O(N modes) update plus the unavoidable R GEMVs per slot
 * (KernelMode::Streaming). Admission is gated on the combined fit
 * residual, so CFD tensors that fit poorly keep the factorized walk.
 */

#ifndef ECOLO_THERMAL_HEAT_MATRIX_HH
#define ECOLO_THERMAL_HEAT_MATRIX_HH

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "power/layout.hh"
#include "thermal/cfd/solver.hh"
#include "thermal/factorization.hh"
#include "util/state_io.hh"
#include "util/units.hh"

namespace ecolo::thermal {

/** Parameters for the closed-form default heat-distribution matrix. */
struct AnalyticMatrixParams
{
    double selfGain = 0.06;       //!< K/kW at a server's own inlet
    double neighborGain = 0.04;   //!< same-rack coupling amplitude
    double slotDecay = 3.0;       //!< e-folding distance in slots
    double crossRackGain = 0.012; //!< other-rack coupling amplitude
    double globalGain = 0.035;    //!< K/kW uniform return-air mixing term
    double riseTimeMinutes = 3.0; //!< 1 - exp(-t/T) temporal build-up
    double topSlotBias = 0.5;     //!< extra coupling for top slots
};

/** Impulse-response tensor h[i][j][tau] in K/kW at minute resolution. */
class HeatDistributionMatrix
{
  public:
    HeatDistributionMatrix(std::size_t num_servers,
                           std::size_t horizon_minutes);

    std::size_t numServers() const { return numServers_; }
    std::size_t horizon() const { return horizon_; }

    /** Response of inlet i to 1 kW at server j, tau minutes later.
     * Writing through the returned reference invalidates the cached
     * steady-gain table (rebuilt lazily on the next steadyGain call). */
    double &coeff(std::size_t i, std::size_t j, std::size_t tau);
    double coeff(std::size_t i, std::size_t j, std::size_t tau) const;

    /** Steady-state inlet-i gain to sustained power at j (sum over tau),
     * served from a precomputed N x N table. */
    double steadyGain(std::size_t i, std::size_t j) const;

    /** Total steady gain of inlet i to uniform power at all servers. */
    double totalSteadyGain(std::size_t i) const;

    /** Alias so callers can say HeatDistributionMatrix::AnalyticParams. */
    using AnalyticParams = AnalyticMatrixParams;

    /**
     * Closed-form matrix with the spatial structure CFD extraction
     * produces (self > same-rack-decaying > cross-rack > uniform mixing;
     * upper slots slightly hotter), used as the fast default so year-long
     * sweeps do not need a CFD pass.
     */
    static HeatDistributionMatrix
    analyticDefault(const power::DataCenterLayout &layout,
                    AnalyticParams params = AnalyticParams(),
                    std::size_t horizon_minutes = 10);

    /**
     * Extract the matrix from the CFD-lite solver: bring the container to a
     * quasi-steady state under baseline_powers, then, for each server, add
     * spike on top and record every inlet for horizon minutes against a
     * drift-corrected no-spike reference (the paper's exact procedure).
     * The per-server spike columns are independent and run on the global
     * thread pool; results are bit-identical to a serial extraction.
     */
    static HeatDistributionMatrix
    extractFromCfd(const power::DataCenterLayout &layout,
                   const CfdParams &cfd_params,
                   const std::vector<Kilowatts> &baseline_powers,
                   Kilowatts spike,
                   std::size_t horizon_minutes = 10,
                   Seconds settle_time = minutes(15));

  private:
    /** Rebuild the steady-gain table if coeff writes invalidated it. */
    void ensureGainCache() const;

    std::size_t numServers_;
    std::size_t horizon_;
    std::vector<double> coeffs_; //!< [i][j][tau] flattened

    // Lazily rebuilt on first read after a coeff write; the factories
    // build it eagerly so const instances never rebuild (thread-safe to
    // read concurrently once built).
    mutable std::vector<double> steadyGains_; //!< [i][j] sums over tau
    mutable std::vector<double> totalGains_;  //!< per-i row sums
    mutable bool gainsDirty_ = true;
};

/** How MatrixThermalModel computes rises. */
enum class KernelMode
{
    Auto,       //!< streaming when exact enough, else factorized, else dense
    Dense,      //!< always the reference O(N^2 H) convolution
    Factorized, //!< force the low-rank history-walk kernel
    Streaming,  //!< recurrent O(N modes) kernel; falls back when unfit
};

/** Backward-compatible alias: pre-streaming call sites used this name. */
using ThermalComputeMode = KernelMode;

/** Stable lowercase name ("auto", "dense", ...) for messages and keys. */
const char *kernelModeName(KernelMode mode);

/** Parse a kernelModeName spelling; false (out untouched) on junk. */
bool parseKernelMode(std::string_view text, KernelMode &out);

/**
 * Applies a HeatDistributionMatrix to a streaming per-minute power history:
 * keeps a ring buffer of the last `horizon` power vectors and produces each
 * server's inlet temperature rise above the supply temperature.
 */
class MatrixThermalModel
{
  public:
    /**
     * `precomputed`, when set, must be the result of
     * TemporalFactorization::compute over the same matrix and options;
     * the model copies it instead of re-running the fit (compute() is
     * deterministic, so behavior is bit-identical). Campaign drivers
     * use this to factorize a shared heat tensor once.
     */
    explicit MatrixThermalModel(
        HeatDistributionMatrix matrix,
        KernelMode mode = KernelMode::Auto,
        FactorizationOptions factorization = FactorizationOptions(),
        std::shared_ptr<const TemporalFactorization> precomputed = {});

    std::size_t numServers() const { return matrix_.numServers(); }

    /** Append this minute's per-server power vector. Under the streaming
     * kernel this is where the thermal state advances (the recurrence
     * consumes both the new vector and the ring slot it overwrites). */
    void pushPowers(const std::vector<Kilowatts> &powers);

    /** Inlet rise of server i implied by the buffered history (always the
     * dense per-server walk; use computeAllRises for the fast path). */
    CelsiusDelta inletRise(std::size_t i) const;

    /** Compute every server's inlet rise in one pass (cheaper than
     * calling inletRise per server; uses the factorized kernel when one
     * was selected at construction). */
    void computeAllRises(std::vector<double> &rises_out) const;

    /** Largest inlet rise across servers. */
    CelsiusDelta maxInletRise() const;

    /** Clear the power history (e.g., after an outage restart). */
    void reset();

    /**
     * Serialize / restore the mutable state: the power-history ring and,
     * under the streaming kernel, the mode accumulators and cached rises
     * (so a resume is bit-identical -- the recurrence never replays).
     * The matrix and factorization are configuration, rebuilt from the
     * same SimulationConfig on restore, so they do not travel. The
     * section records the active kernel mode; loading a checkpoint
     * written under a different kernel fails with a StateError instead
     * of silently mis-resuming.
     */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

    const HeatDistributionMatrix &matrix() const { return matrix_; }

    /** The kernel actually running (after Auto selection / fallback). */
    KernelMode activeKernel() const { return active_; }

    /** The kernel the caller asked for at construction. */
    KernelMode requestedKernel() const { return requested_; }

    /** True when a factor-based kernel (factorized or streaming) is
     * active (introspection; the dense walk is the alternative). */
    bool usesFactorizedKernel() const
    { return active_ != KernelMode::Dense; }

    /** Rank of the active factorization (0 on the dense path). */
    std::size_t factorizationRank() const
    { return active_ != KernelMode::Dense ? factors_.rank() : 0; }

    /** Total exponential modes across ranks (0 unless streaming). */
    std::size_t streamingModeCount() const { return modeDecay_.size(); }

    /**
     * True when this model and `other` both run the streaming kernel
     * with bitwise-equal recurrence constants (decays, tails, weights,
     * spatial factors) and the same ring phase -- the precondition for
     * advancing both in one LaneThermalBank arena.
     */
    bool streamingStateCompatible(const MatrixThermalModel &other) const;

  private:
    friend class LaneThermalBank;
    void computeAllRisesDense(std::vector<double> &rises_out) const;
    void computeAllRisesFactorized(std::vector<double> &rises_out) const;
    void initStreamingState();
    void updateStreamingRises();

    HeatDistributionMatrix matrix_;
    TemporalFactorization factors_;
    KernelMode requested_ = KernelMode::Auto;
    KernelMode active_ = KernelMode::Dense;

    /** Power ring, [slot][server] in one contiguous block (SoA) so the
     * dense/factorized walks stride unit and auto-vectorize. */
    std::vector<double> history_;
    std::size_t head_ = 0; //!< next slot index to write
    std::size_t filled_ = 0;

    // Streaming-kernel state: modes flattened across ranks; mode q of
    // rank r lives at [rankModeBegin_[r], rankModeBegin_[r+1]).
    std::vector<double> modeDecay_;   //!< lambda_q
    std::vector<double> modeTail_;    //!< lambda_q^horizon (window exit)
    std::vector<double> modeWeight_;  //!< w_q
    std::vector<std::size_t> rankModeBegin_;
    std::vector<double> modeAccum_;   //!< [q][j] accumulators
    /** Spatial factors transposed, [r][j][i]: the streaming GEMV runs in
     * column-AXPY form (rises[i] += s_j * U[i][j] with i innermost), so
     * the inner loop is independent adds over contiguous memory -- which
     * vectorizes under strict FP semantics, unlike the row-wise serial
     * reduction. */
    std::vector<double> spatialT_;
    std::vector<double> streamRises_; //!< rises cached at last push
    std::vector<double> pushScratch_; //!< new powers as raw kW
    std::vector<double> streamSum_;   //!< per-rank combined state [j]

    mutable std::vector<double> smoothed_; //!< [r][j] factorized states
    mutable std::vector<double> riseScratch_; //!< maxInletRise buffer
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_HEAT_MATRIX_HH
