/**
 * @file
 * The heat-distribution-matrix thermal model.
 *
 * Transient CFD over a year is computationally prohibitive, so -- exactly as
 * the paper does (Section V-A, following Tang et al.) -- we extract a
 * finite-horizon impulse-response tensor from short CFD runs and use it for
 * long simulations: injecting a heat spike at server j and recording every
 * server's inlet temperature for 10 minutes yields coefficients h[i][j][tau]
 * (K per kW), after which server i's inlet temperature is the supply
 * temperature plus the convolution of all servers' recent power with h.
 */

#ifndef ECOLO_THERMAL_HEAT_MATRIX_HH
#define ECOLO_THERMAL_HEAT_MATRIX_HH

#include <cstddef>
#include <vector>

#include "power/layout.hh"
#include "thermal/cfd/solver.hh"
#include "util/units.hh"

namespace ecolo::thermal {

/** Parameters for the closed-form default heat-distribution matrix. */
struct AnalyticMatrixParams
{
    double selfGain = 0.06;       //!< K/kW at a server's own inlet
    double neighborGain = 0.04;   //!< same-rack coupling amplitude
    double slotDecay = 3.0;       //!< e-folding distance in slots
    double crossRackGain = 0.012; //!< other-rack coupling amplitude
    double globalGain = 0.035;    //!< K/kW uniform return-air mixing term
    double riseTimeMinutes = 3.0; //!< 1 - exp(-t/T) temporal build-up
    double topSlotBias = 0.5;     //!< extra coupling for top slots
};

/** Impulse-response tensor h[i][j][tau] in K/kW at minute resolution. */
class HeatDistributionMatrix
{
  public:
    HeatDistributionMatrix(std::size_t num_servers,
                           std::size_t horizon_minutes);

    std::size_t numServers() const { return numServers_; }
    std::size_t horizon() const { return horizon_; }

    /** Response of inlet i to 1 kW at server j, tau minutes later. */
    double &coeff(std::size_t i, std::size_t j, std::size_t tau);
    double coeff(std::size_t i, std::size_t j, std::size_t tau) const;

    /** Steady-state inlet-i gain to sustained power at j (sum over tau). */
    double steadyGain(std::size_t i, std::size_t j) const;

    /** Total steady gain of inlet i to uniform power at all servers. */
    double totalSteadyGain(std::size_t i) const;

    /** Alias so callers can say HeatDistributionMatrix::AnalyticParams. */
    using AnalyticParams = AnalyticMatrixParams;

    /**
     * Closed-form matrix with the spatial structure CFD extraction
     * produces (self > same-rack-decaying > cross-rack > uniform mixing;
     * upper slots slightly hotter), used as the fast default so year-long
     * sweeps do not need a CFD pass.
     */
    static HeatDistributionMatrix
    analyticDefault(const power::DataCenterLayout &layout,
                    AnalyticParams params = AnalyticParams(),
                    std::size_t horizon_minutes = 10);

    /**
     * Extract the matrix from the CFD-lite solver: bring the container to a
     * quasi-steady state under baseline_powers, then, for each server, add
     * spike on top and record every inlet for horizon minutes against a
     * drift-corrected no-spike reference (the paper's exact procedure).
     */
    static HeatDistributionMatrix
    extractFromCfd(const power::DataCenterLayout &layout,
                   const CfdParams &cfd_params,
                   const std::vector<Kilowatts> &baseline_powers,
                   Kilowatts spike,
                   std::size_t horizon_minutes = 10,
                   Seconds settle_time = minutes(15));

  private:
    std::size_t numServers_;
    std::size_t horizon_;
    std::vector<double> coeffs_; //!< [i][j][tau] flattened
};

/**
 * Applies a HeatDistributionMatrix to a streaming per-minute power history:
 * keeps a ring buffer of the last `horizon` power vectors and produces each
 * server's inlet temperature rise above the supply temperature.
 */
class MatrixThermalModel
{
  public:
    explicit MatrixThermalModel(HeatDistributionMatrix matrix);

    std::size_t numServers() const { return matrix_.numServers(); }

    /** Append this minute's per-server power vector. */
    void pushPowers(const std::vector<Kilowatts> &powers);

    /** Inlet rise of server i implied by the buffered history. */
    CelsiusDelta inletRise(std::size_t i) const;

    /** Compute every server's inlet rise in one pass (cheaper than
     * calling inletRise per server). */
    void computeAllRises(std::vector<double> &rises_out) const;

    /** Largest inlet rise across servers. */
    CelsiusDelta maxInletRise() const;

    /** Clear the power history (e.g., after an outage restart). */
    void reset();

    const HeatDistributionMatrix &matrix() const { return matrix_; }

  private:
    HeatDistributionMatrix matrix_;
    std::vector<std::vector<double>> history_; //!< ring of kW vectors
    std::size_t head_ = 0;                     //!< next write position
    std::size_t filled_ = 0;
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_HEAT_MATRIX_HH
