/**
 * @file
 * The heat-distribution-matrix thermal model.
 *
 * Transient CFD over a year is computationally prohibitive, so -- exactly as
 * the paper does (Section V-A, following Tang et al.) -- we extract a
 * finite-horizon impulse-response tensor from short CFD runs and use it for
 * long simulations: injecting a heat spike at server j and recording every
 * server's inlet temperature for 10 minutes yields coefficients h[i][j][tau]
 * (K per kW), after which server i's inlet temperature is the supply
 * temperature plus the convolution of all servers' recent power with h.
 *
 * The per-minute convolution is the hot path of every year-long campaign.
 * MatrixThermalModel therefore factorizes the tensor (see
 * thermal/factorization.hh) whenever it is separable enough: rises become
 * R temporally-smoothed power states plus R N x N GEMVs, O(R (N H + N^2))
 * instead of O(N^2 H) -- an exact rank-1 split for the analytic default,
 * a truncated low-rank one for CFD-extracted tensors, and a dense
 * fallback otherwise. Selection is automatic; call sites are unchanged.
 */

#ifndef ECOLO_THERMAL_HEAT_MATRIX_HH
#define ECOLO_THERMAL_HEAT_MATRIX_HH

#include <cstddef>
#include <vector>

#include "power/layout.hh"
#include "thermal/cfd/solver.hh"
#include "thermal/factorization.hh"
#include "util/state_io.hh"
#include "util/units.hh"

namespace ecolo::thermal {

/** Parameters for the closed-form default heat-distribution matrix. */
struct AnalyticMatrixParams
{
    double selfGain = 0.06;       //!< K/kW at a server's own inlet
    double neighborGain = 0.04;   //!< same-rack coupling amplitude
    double slotDecay = 3.0;       //!< e-folding distance in slots
    double crossRackGain = 0.012; //!< other-rack coupling amplitude
    double globalGain = 0.035;    //!< K/kW uniform return-air mixing term
    double riseTimeMinutes = 3.0; //!< 1 - exp(-t/T) temporal build-up
    double topSlotBias = 0.5;     //!< extra coupling for top slots
};

/** Impulse-response tensor h[i][j][tau] in K/kW at minute resolution. */
class HeatDistributionMatrix
{
  public:
    HeatDistributionMatrix(std::size_t num_servers,
                           std::size_t horizon_minutes);

    std::size_t numServers() const { return numServers_; }
    std::size_t horizon() const { return horizon_; }

    /** Response of inlet i to 1 kW at server j, tau minutes later.
     * Writing through the returned reference invalidates the cached
     * steady-gain table (rebuilt lazily on the next steadyGain call). */
    double &coeff(std::size_t i, std::size_t j, std::size_t tau);
    double coeff(std::size_t i, std::size_t j, std::size_t tau) const;

    /** Steady-state inlet-i gain to sustained power at j (sum over tau),
     * served from a precomputed N x N table. */
    double steadyGain(std::size_t i, std::size_t j) const;

    /** Total steady gain of inlet i to uniform power at all servers. */
    double totalSteadyGain(std::size_t i) const;

    /** Alias so callers can say HeatDistributionMatrix::AnalyticParams. */
    using AnalyticParams = AnalyticMatrixParams;

    /**
     * Closed-form matrix with the spatial structure CFD extraction
     * produces (self > same-rack-decaying > cross-rack > uniform mixing;
     * upper slots slightly hotter), used as the fast default so year-long
     * sweeps do not need a CFD pass.
     */
    static HeatDistributionMatrix
    analyticDefault(const power::DataCenterLayout &layout,
                    AnalyticParams params = AnalyticParams(),
                    std::size_t horizon_minutes = 10);

    /**
     * Extract the matrix from the CFD-lite solver: bring the container to a
     * quasi-steady state under baseline_powers, then, for each server, add
     * spike on top and record every inlet for horizon minutes against a
     * drift-corrected no-spike reference (the paper's exact procedure).
     * The per-server spike columns are independent and run on the global
     * thread pool; results are bit-identical to a serial extraction.
     */
    static HeatDistributionMatrix
    extractFromCfd(const power::DataCenterLayout &layout,
                   const CfdParams &cfd_params,
                   const std::vector<Kilowatts> &baseline_powers,
                   Kilowatts spike,
                   std::size_t horizon_minutes = 10,
                   Seconds settle_time = minutes(15));

  private:
    /** Rebuild the steady-gain table if coeff writes invalidated it. */
    void ensureGainCache() const;

    std::size_t numServers_;
    std::size_t horizon_;
    std::vector<double> coeffs_; //!< [i][j][tau] flattened

    // Lazily rebuilt on first read after a coeff write; the factories
    // build it eagerly so const instances never rebuild (thread-safe to
    // read concurrently once built).
    mutable std::vector<double> steadyGains_; //!< [i][j] sums over tau
    mutable std::vector<double> totalGains_;  //!< per-i row sums
    mutable bool gainsDirty_ = true;
};

/** How MatrixThermalModel computes rises. */
enum class ThermalComputeMode
{
    Auto,  //!< factorize when accurate and cheaper; dense otherwise
    Dense, //!< always the reference O(N^2 H) convolution
};

/**
 * Applies a HeatDistributionMatrix to a streaming per-minute power history:
 * keeps a ring buffer of the last `horizon` power vectors and produces each
 * server's inlet temperature rise above the supply temperature.
 */
class MatrixThermalModel
{
  public:
    explicit MatrixThermalModel(
        HeatDistributionMatrix matrix,
        ThermalComputeMode mode = ThermalComputeMode::Auto,
        FactorizationOptions factorization = FactorizationOptions());

    std::size_t numServers() const { return matrix_.numServers(); }

    /** Append this minute's per-server power vector. */
    void pushPowers(const std::vector<Kilowatts> &powers);

    /** Inlet rise of server i implied by the buffered history (always the
     * dense per-server walk; use computeAllRises for the fast path). */
    CelsiusDelta inletRise(std::size_t i) const;

    /** Compute every server's inlet rise in one pass (cheaper than
     * calling inletRise per server; uses the factorized kernel when one
     * was selected at construction). */
    void computeAllRises(std::vector<double> &rises_out) const;

    /** Largest inlet rise across servers. */
    CelsiusDelta maxInletRise() const;

    /** Clear the power history (e.g., after an outage restart). */
    void reset();

    /**
     * Serialize / restore the streaming state (the power-history ring).
     * The matrix and factorization are configuration, rebuilt from the
     * same SimulationConfig on restore, so only the history travels.
     */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

    const HeatDistributionMatrix &matrix() const { return matrix_; }

    /** True when the factorized kernel is active (introspection). */
    bool usesFactorizedKernel() const { return factorizedActive_; }

    /** Rank of the active factorization (0 on the dense path). */
    std::size_t factorizationRank() const
    { return factorizedActive_ ? factors_.rank() : 0; }

  private:
    void computeAllRisesDense(std::vector<double> &rises_out) const;
    void computeAllRisesFactorized(std::vector<double> &rises_out) const;

    HeatDistributionMatrix matrix_;
    TemporalFactorization factors_;
    bool factorizedActive_ = false;
    std::vector<std::vector<double>> history_; //!< ring of kW vectors
    std::size_t head_ = 0;                     //!< next write position
    std::size_t filled_ = 0;
    mutable std::vector<double> smoothed_; //!< [r][j] factorized states
    mutable std::vector<double> riseScratch_; //!< maxInletRise buffer
};

} // namespace ecolo::thermal

#endif // ECOLO_THERMAL_HEAT_MATRIX_HH
