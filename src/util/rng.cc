#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace ecolo {

namespace {

/** SplitMix64: used only for seeding the main state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    ECOLO_ASSERT(lo <= hi, "bad uniform range [", lo, ", ", hi, ")");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    ECOLO_ASSERT(n > 0, "uniformInt needs a positive range");
    // Rejection sampling to kill modulo bias.
    const std::uint64_t threshold = (~n + 1) % n; // == 2^64 mod n
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(theta);
    hasCachedNormal_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    ECOLO_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::poisson(double mean)
{
    ECOLO_ASSERT(mean >= 0.0, "poisson mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's method for small means.
        const double limit = std::exp(-mean);
        std::uint64_t count = 0;
        double product = uniform();
        while (product > limit) {
            ++count;
            product *= uniform();
        }
        return count;
    }
    // Normal approximation with continuity correction for large means.
    const double sample = normal(mean, std::sqrt(mean));
    return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

Rng
Rng::fork()
{
    return Rng(next());
}

void
Rng::saveState(util::StateWriter &writer) const
{
    writer.tag("RNG ");
    for (std::uint64_t word : state_)
        writer.u64(word);
    writer.f64(cachedNormal_);
    writer.boolean(hasCachedNormal_);
}

void
Rng::loadState(util::StateReader &reader)
{
    reader.tag("RNG ");
    for (auto &word : state_)
        word = reader.u64();
    cachedNormal_ = reader.f64();
    hasCachedNormal_ = reader.boolean();
}

} // namespace ecolo
