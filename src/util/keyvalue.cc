#include "util/keyvalue.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace ecolo {

namespace {

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

util::Result<KeyValueConfig>
KeyValueConfig::tryParse(std::istream &is, const std::string &source_name)
{
    KeyValueConfig config;
    config.sourceName_ = source_name;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const std::string original = line;
        const auto comment = line.find('#');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            return ECOLO_ERROR(util::ErrorCode::ParseError, source_name,
                               ":", line_no, ": config line has no '=': '",
                               trim(original), "'");
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty()) {
            return ECOLO_ERROR(util::ErrorCode::ParseError, source_name,
                               ":", line_no,
                               ": config line has an empty key: '",
                               trim(original), "'");
        }
        const auto prior = config.values_.find(key);
        if (prior != config.values_.end()) {
            return ECOLO_ERROR(util::ErrorCode::ParseError, source_name,
                               ":", line_no, ": duplicate config key '",
                               key, "' (first set at line ",
                               prior->second.line, ")");
        }
        config.values_[key] = Entry{value, line_no};
    }
    return config;
}

util::Result<KeyValueConfig>
KeyValueConfig::tryParseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "cannot open config file: ", path);
    }
    return tryParse(in, path);
}

KeyValueConfig
KeyValueConfig::parse(std::istream &is)
{
    auto result = tryParse(is);
    if (!result.ok())
        ECOLO_FATAL(result.error().message);
    return result.take();
}

KeyValueConfig
KeyValueConfig::parseFile(const std::string &path)
{
    auto result = tryParseFile(path);
    if (!result.ok())
        ECOLO_FATAL(result.error().message);
    return result.take();
}

void
KeyValueConfig::set(const std::string &key, const std::string &value)
{
    values_[key] = Entry{value, 0};
}

bool
KeyValueConfig::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::map<std::string, std::string>
KeyValueConfig::entries() const
{
    std::map<std::string, std::string> out;
    for (const auto &[key, entry] : values_)
        out.emplace(key, entry.value);
    return out;
}

std::string
KeyValueConfig::locate(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.line == 0)
        return sourceName_;
    return sourceName_ + ":" + std::to_string(it->second.line);
}

util::Result<std::optional<double>>
KeyValueConfig::tryGetDouble(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return std::optional<double>{};
    consumed_.insert(key);
    try {
        std::size_t pos = 0;
        const double v = std::stod(it->second.value, &pos);
        if (pos != it->second.value.size())
            throw std::invalid_argument("trailing junk");
        return std::optional<double>{v};
    } catch (const std::exception &) {
        return ECOLO_ERROR(util::ErrorCode::ParseError, locate(key),
                           ": config key '", key, "' is not a number: '",
                           it->second.value, "'");
    }
}

util::Result<std::optional<long>>
KeyValueConfig::tryGetInt(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return std::optional<long>{};
    consumed_.insert(key);
    try {
        std::size_t pos = 0;
        const long v = std::stol(it->second.value, &pos);
        if (pos != it->second.value.size())
            throw std::invalid_argument("trailing junk");
        return std::optional<long>{v};
    } catch (const std::exception &) {
        return ECOLO_ERROR(util::ErrorCode::ParseError, locate(key),
                           ": config key '", key, "' is not an integer: '",
                           it->second.value, "'");
    }
}

util::Result<std::optional<bool>>
KeyValueConfig::tryGetBool(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return std::optional<bool>{};
    consumed_.insert(key);
    std::string v = it->second.value;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return std::optional<bool>{true};
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return std::optional<bool>{false};
    return ECOLO_ERROR(util::ErrorCode::ParseError, locate(key),
                       ": config key '", key, "' is not a boolean: '",
                       it->second.value, "'");
}

std::optional<double>
KeyValueConfig::getDouble(const std::string &key) const
{
    auto result = tryGetDouble(key);
    if (!result.ok())
        ECOLO_FATAL(result.error().message);
    return result.take();
}

std::optional<long>
KeyValueConfig::getInt(const std::string &key) const
{
    auto result = tryGetInt(key);
    if (!result.ok())
        ECOLO_FATAL(result.error().message);
    return result.take();
}

std::optional<bool>
KeyValueConfig::getBool(const std::string &key) const
{
    auto result = tryGetBool(key);
    if (!result.ok())
        ECOLO_FATAL(result.error().message);
    return result.take();
}

std::optional<std::string>
KeyValueConfig::getString(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    consumed_.insert(key);
    return it->second.value;
}

std::set<std::string>
KeyValueConfig::unconsumedKeys() const
{
    std::set<std::string> unread;
    for (const auto &[key, entry] : values_) {
        (void)entry;
        if (!consumed_.count(key))
            unread.insert(key);
    }
    return unread;
}

} // namespace ecolo
