#include "util/keyvalue.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace ecolo {

namespace {

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

KeyValueConfig
KeyValueConfig::parse(std::istream &is)
{
    KeyValueConfig config;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto comment = line.find('#');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            ECOLO_FATAL("config line ", line_no, " has no '=': '", line,
                        "'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            ECOLO_FATAL("config line ", line_no, " has an empty key");
        if (config.values_.count(key))
            ECOLO_FATAL("duplicate config key '", key, "' at line ",
                        line_no);
        config.values_[key] = value;
    }
    return config;
}

KeyValueConfig
KeyValueConfig::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ECOLO_FATAL("cannot open config file: ", path);
    return parse(in);
}

void
KeyValueConfig::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
KeyValueConfig::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::optional<double>
KeyValueConfig::getDouble(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    consumed_.insert(key);
    try {
        std::size_t pos = 0;
        const double v = std::stod(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument("trailing junk");
        return v;
    } catch (const std::exception &) {
        ECOLO_FATAL("config key '", key, "' is not a number: '",
                    it->second, "'");
    }
}

std::optional<long>
KeyValueConfig::getInt(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    consumed_.insert(key);
    try {
        std::size_t pos = 0;
        const long v = std::stol(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument("trailing junk");
        return v;
    } catch (const std::exception &) {
        ECOLO_FATAL("config key '", key, "' is not an integer: '",
                    it->second, "'");
    }
}

std::optional<bool>
KeyValueConfig::getBool(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    consumed_.insert(key);
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    ECOLO_FATAL("config key '", key, "' is not a boolean: '", it->second,
                "'");
}

std::optional<std::string>
KeyValueConfig::getString(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    consumed_.insert(key);
    return it->second;
}

std::set<std::string>
KeyValueConfig::unconsumedKeys() const
{
    std::set<std::string> unread;
    for (const auto &[key, value] : values_) {
        (void)value;
        if (!consumed_.count(key))
            unread.insert(key);
    }
    return unread;
}

} // namespace ecolo
