#include "util/plot.hh"

#include <cstdlib>
#include <fstream>

#include "util/logging.hh"

namespace ecolo {

GnuplotFigure::GnuplotFigure(std::string name, std::string title,
                             std::string x_label, std::string y_label)
    : name_(std::move(name)), title_(std::move(title)),
      xLabel_(std::move(x_label)), yLabel_(std::move(y_label))
{
    ECOLO_ASSERT(!name_.empty(), "figure needs a name");
    ECOLO_ASSERT(name_.find('/') == std::string::npos,
                 "figure name must be a bare file stem: ", name_);
}

void
GnuplotFigure::addSeries(const std::string &series_name)
{
    ECOLO_ASSERT(rows_.empty(), "add all series before data rows");
    series_.push_back(series_name);
}

void
GnuplotFigure::addRow(double x, const std::vector<double> &ys)
{
    ECOLO_ASSERT(ys.size() == series_.size(),
                 "row has ", ys.size(), " values for ", series_.size(),
                 " series");
    rows_.emplace_back(x, ys);
}

bool
GnuplotFigure::writeTo(const std::string &directory) const
{
    if (directory.empty())
        return false;
    ECOLO_ASSERT(!series_.empty(), "figure '", name_, "' has no series");

    const std::string dat_path = directory + "/" + name_ + ".dat";
    std::ofstream dat(dat_path);
    if (!dat)
        ECOLO_FATAL("cannot write plot data: ", dat_path);
    dat << "# " << title_ << "\n# x";
    for (const auto &s : series_)
        dat << '\t' << s;
    dat << '\n';
    dat.precision(10);
    for (const auto &[x, ys] : rows_) {
        dat << x;
        for (double y : ys)
            dat << '\t' << y;
        dat << '\n';
    }

    const std::string gp_path = directory + "/" + name_ + ".gp";
    std::ofstream gp(gp_path);
    if (!gp)
        ECOLO_FATAL("cannot write plot script: ", gp_path);
    gp << "set terminal pngcairo size 900,540 enhanced\n"
       << "set output '" << name_ << ".png'\n"
       << "set title '" << title_ << "'\n"
       << "set xlabel '" << xLabel_ << "'\n"
       << "set ylabel '" << yLabel_ << "'\n"
       << "set key outside right\n"
       << "set grid\n"
       << "plot ";
    for (std::size_t s = 0; s < series_.size(); ++s) {
        if (s > 0)
            gp << ", \\\n     ";
        gp << "'" << name_ << ".dat' using 1:" << (s + 2)
           << " with linespoints title '" << series_[s] << "'";
    }
    gp << '\n';
    return true;
}

std::optional<std::string>
plotDirFromEnv()
{
    const char *dir = std::getenv("EDGETHERM_PLOT_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return std::nullopt;
    return std::string(dir);
}

} // namespace ecolo
