/**
 * @file
 * Lightweight structured-error layer for the *recoverable* failure paths
 * (scenario/keyvalue/trace parsing, config validation, checkpoint I/O).
 *
 * ECOLO_FATAL kills the process, which is right for a CLI run with a typo
 * but wrong for library embedders, campaign drivers that want to skip a
 * bad scenario, and checkpoint restores that should fall back to a cold
 * start. Result<T> carries either a value or an Error with a code, a
 * human-readable message, and the file:line of the site that raised it.
 * The legacy fatal entry points remain as thin wrappers that print
 * error.describe() and exit, so existing callers and death-tests keep
 * their behavior.
 */

#ifndef ECOLO_UTIL_RESULT_HH
#define ECOLO_UTIL_RESULT_HH

#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace ecolo::util {

/** Broad failure classes for programmatic handling. */
enum class ErrorCode
{
    None = 0,
    IoError,         //!< file missing/unreadable/unwritable
    ParseError,      //!< malformed input text
    ValidationError, //!< well-formed but semantically invalid values
    StateError,      //!< corrupt/incompatible checkpoint state
};

const char *toString(ErrorCode code);

/** One structured error with origin diagnostics. */
struct Error
{
    ErrorCode code = ErrorCode::None;
    std::string message;
    const char *file = "";
    int line = 0;

    /** "file.cc:42: [parse] message" for logs and fatal wrappers. */
    std::string describe() const;
};

namespace detail {

template <typename... Args>
std::string
concatError(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Build an Error capturing the call site. Usage:
 *   return ECOLO_ERROR(ErrorCode::ParseError, "line ", n, ": bad key");
 */
#define ECOLO_ERROR(code_, ...)                                        \
    ::ecolo::util::Error{(code_),                                      \
                         ::ecolo::util::detail::concatError(__VA_ARGS__), \
                         __FILE__, __LINE__}

/** A value or an Error; Result<void> specializes to success/Error. */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Error error) : error_(std::move(error)) {}

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    T &value() { return *value_; }
    const T &value() const { return *value_; }
    T &&take() { return std::move(*value_); }

    const Error &error() const { return error_; }

  private:
    std::optional<T> value_;
    Error error_;
};

template <>
class [[nodiscard]] Result<void>
{
  public:
    Result() = default;
    Result(Error error) : ok_(false), error_(std::move(error)) {}

    bool ok() const { return ok_; }
    explicit operator bool() const { return ok(); }

    const Error &error() const { return error_; }

  private:
    bool ok_ = true;
    Error error_;
};

/** Propagate a failed Result from a callee returning a different T. */
#define ECOLO_TRY_VOID(expr)                                           \
    do {                                                               \
        if (auto _ecolo_result = (expr); !_ecolo_result.ok())          \
            return _ecolo_result.error();                              \
    } while (false)

} // namespace ecolo::util

#endif // ECOLO_UTIL_RESULT_HH
