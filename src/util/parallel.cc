#include "util/parallel.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "util/logging.hh"

namespace ecolo::util {

namespace {

/** Set while a thread is executing parallelFor bodies (nesting guard). */
thread_local bool t_in_parallel_region = false;

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

/** Telemetry task-timing hook; nullptr keeps the dispatch loops bare. */
std::atomic<ThreadPool::TaskHook> g_task_hook{nullptr};

/**
 * Name the calling thread "edgetherm-N" so profiles, core dumps and TSan
 * reports attribute work to the right pool worker (pthread names are
 * capped at 15 characters, which "edgetherm-9999" still fits).
 */
void
nameWorkerThread(std::size_t worker_index)
{
#if defined(__linux__)
    char name[16];
    std::snprintf(name, sizeof(name), "edgetherm-%zu", worker_index);
    pthread_setname_np(pthread_self(), name);
#else
    (void)worker_index;
#endif
}

/** Run one claimed index, timing it when a task hook is installed. */
void
runBody(const std::function<void(std::size_t)> &body, std::size_t i,
        ThreadPool::TaskHook hook)
{
    if (hook) {
        const auto start = std::chrono::steady_clock::now();
        body(i);
        hook(i, start, std::chrono::steady_clock::now());
    } else {
        body(i);
    }
}

} // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
{
    ECOLO_ASSERT(num_threads > 0, "thread pool needs at least one thread");
    workers_.reserve(num_threads - 1);
    for (std::size_t t = 0; t + 1 < num_threads; ++t) {
        workers_.emplace_back([this, t] {
            nameWorkerThread(t + 1);
            workerLoop();
        });
    }
}

void
ThreadPool::setTaskHook(TaskHook hook)
{
    g_task_hook.store(hook, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t end = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen_generation;
            });
            if (stop_)
                return;
            seen_generation = generation_;
            body = body_;
            end = end_;
        }

        const TaskHook hook = g_task_hook.load(std::memory_order_relaxed);
        t_in_parallel_region = true;
        for (;;) {
            const std::size_t i = next_.fetch_add(1);
            if (i >= end)
                break;
            try {
                runBody(*body, i, hook);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!firstError_)
                    firstError_ = std::current_exception();
            }
        }
        t_in_parallel_region = false;

        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (++finishedWorkers_ == workers_.size())
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body)
{
    if (begin >= end)
        return;

    // Inline paths: no workers, a single item, or a nested call (a body
    // that itself calls parallelFor must not wait on the same workers).
    if (workers_.empty() || end - begin == 1 || t_in_parallel_region) {
        const TaskHook hook = g_task_hook.load(std::memory_order_relaxed);
        for (std::size_t i = begin; i < end; ++i)
            runBody(body, i, hook);
        return;
    }

    std::lock_guard<std::mutex> job_lock(jobMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        next_.store(begin);
        end_ = end;
        finishedWorkers_ = 0;
        firstError_ = nullptr;
        ++generation_;
    }
    wake_.notify_all();

    // The caller claims indices alongside the workers.
    const TaskHook hook = g_task_hook.load(std::memory_order_relaxed);
    t_in_parallel_region = true;
    for (;;) {
        const std::size_t i = next_.fetch_add(1);
        if (i >= end)
            break;
        try {
            runBody(body, i, hook);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
    }
    t_in_parallel_region = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return finishedWorkers_ == workers_.size(); });
    body_ = nullptr;
    if (firstError_)
        std::rethrow_exception(firstError_);
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    if (!g_global_pool)
        g_global_pool = std::make_unique<ThreadPool>(defaultThreads());
    return *g_global_pool;
}

void
ThreadPool::setGlobalThreads(std::size_t num_threads)
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    g_global_pool = std::make_unique<ThreadPool>(num_threads);
}

std::size_t
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("EDGETHERM_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &body)
{
    ThreadPool::global().parallelFor(begin, end, body);
}

} // namespace ecolo::util
