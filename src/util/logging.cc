#include "util/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace ecolo {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::Info)};

} // namespace

void
setLogLevel(LogLevel level)
{
    g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        g_log_level.load(std::memory_order_relaxed));
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    if (name == "error")
        out = LogLevel::Error;
    else if (name == "warn")
        out = LogLevel::Warn;
    else if (name == "info")
        out = LogLevel::Info;
    else if (name == "debug")
        out = LogLevel::Debug;
    else
        return false;
    return true;
}

const char *
toString(LogLevel level)
{
    switch (level) {
      case LogLevel::Error:
        return "error";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "unknown";
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail
} // namespace ecolo
