/**
 * @file
 * Minimal key=value configuration parsing shared by the scenario files and
 * the command-line tool.
 *
 * Format: one `key = value` pair per line; `#` starts a comment; blank
 * lines ignored; keys are dot-separated lowerCamel paths
 * (e.g. `battery.capacityKwh = 0.2`). Unknown keys are an error by default
 * so typos fail loudly; duplicate keys are rejected rather than silently
 * last-wins.
 *
 * Two API tiers: the try* functions return util::Result with structured
 * errors that name the source file, line number, and offending text; the
 * legacy entry points wrap them and ECOLO_FATAL, preserving CLI behavior.
 */

#ifndef ECOLO_UTIL_KEYVALUE_HH
#define ECOLO_UTIL_KEYVALUE_HH

#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "util/result.hh"

namespace ecolo {

/** A parsed key=value document with typed, consumption-tracked access. */
class KeyValueConfig
{
  public:
    KeyValueConfig() = default;

    /**
     * Parse from a stream. @param source_name appears in diagnostics
     * (file path, or a placeholder like "<string>").
     */
    static util::Result<KeyValueConfig>
    tryParse(std::istream &is, const std::string &source_name = "<input>");

    /** Parse a file by path; IoError when unreadable. */
    static util::Result<KeyValueConfig>
    tryParseFile(const std::string &path);

    /** Parse from a stream; ECOLO_FATAL on malformed lines. */
    static KeyValueConfig parse(std::istream &is);

    /** Parse a file by path; ECOLO_FATAL if unreadable. */
    static KeyValueConfig parseFile(const std::string &path);

    /** Programmatic insertion (CLI overrides). */
    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    /**
     * Structured typed getters; the outer Result fails when the key is
     * present but unparseable, the inner optional is empty when the key
     * is absent. Every successful get marks the key consumed.
     */
    util::Result<std::optional<double>>
    tryGetDouble(const std::string &key) const;
    util::Result<std::optional<long>>
    tryGetInt(const std::string &key) const;
    util::Result<std::optional<bool>>
    tryGetBool(const std::string &key) const;

    /**
     * Typed getters; return std::nullopt when absent, ECOLO_FATAL when
     * present but unparseable. Every successful get marks the key
     * consumed.
     */
    std::optional<double> getDouble(const std::string &key) const;
    std::optional<long> getInt(const std::string &key) const;
    std::optional<bool> getBool(const std::string &key) const;
    std::optional<std::string> getString(const std::string &key) const;

    /** Keys that were never read (typos); empty means all consumed. */
    std::set<std::string> unconsumedKeys() const;

    /**
     * Every key=value pair, key-sorted. This is the document's canonical
     * content -- comments, blank lines and declaration order have already
     * been normalized away -- which is what the serving result cache
     * hashes to content-address a scenario. Does not mark keys consumed.
     */
    std::map<std::string, std::string> entries() const;

    std::size_t size() const { return values_.size(); }

    /** Name of the parsed source ("<input>" for programmatic configs). */
    const std::string &sourceName() const { return sourceName_; }

    /** "source:line" of a key, or just the source when set via set(). */
    std::string locate(const std::string &key) const;

  private:
    struct Entry
    {
        std::string value;
        int line = 0; //!< 0 when inserted programmatically
    };

    std::map<std::string, Entry> values_;
    std::string sourceName_ = "<input>";
    mutable std::set<std::string> consumed_;
};

} // namespace ecolo

#endif // ECOLO_UTIL_KEYVALUE_HH
