/**
 * @file
 * Minimal key=value configuration parsing shared by the scenario files and
 * the command-line tool.
 *
 * Format: one `key = value` pair per line; `#` starts a comment; blank
 * lines ignored; keys are dot-separated lowerCamel paths
 * (e.g. `battery.capacityKwh = 0.2`). Unknown keys are an error by default
 * so typos fail loudly.
 */

#ifndef ECOLO_UTIL_KEYVALUE_HH
#define ECOLO_UTIL_KEYVALUE_HH

#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>

namespace ecolo {

/** A parsed key=value document with typed, consumption-tracked access. */
class KeyValueConfig
{
  public:
    KeyValueConfig() = default;

    /** Parse from a stream; ECOLO_FATAL on malformed lines. */
    static KeyValueConfig parse(std::istream &is);

    /** Parse a file by path; ECOLO_FATAL if unreadable. */
    static KeyValueConfig parseFile(const std::string &path);

    /** Programmatic insertion (CLI overrides). */
    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    /**
     * Typed getters; return std::nullopt when absent, ECOLO_FATAL when
     * present but unparseable. Every successful get marks the key
     * consumed.
     */
    std::optional<double> getDouble(const std::string &key) const;
    std::optional<long> getInt(const std::string &key) const;
    std::optional<bool> getBool(const std::string &key) const;
    std::optional<std::string> getString(const std::string &key) const;

    /** Keys that were never read (typos); empty means all consumed. */
    std::set<std::string> unconsumedKeys() const;

    std::size_t size() const { return values_.size(); }

  private:
    std::map<std::string, std::string> values_;
    mutable std::set<std::string> consumed_;
};

} // namespace ecolo

#endif // ECOLO_UTIL_KEYVALUE_HH
