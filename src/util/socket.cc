#include "util/socket.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace ecolo::util {

namespace {

Error
errnoError(const char *what, int err)
{
    return ECOLO_ERROR(ErrorCode::IoError, what, ": ",
                       std::strerror(err));
}

std::mutex g_injector_mutex;
std::shared_ptr<SocketFaultInjector> g_injector;

} // namespace

std::shared_ptr<SocketFaultInjector>
setGlobalSocketFaultInjector(std::shared_ptr<SocketFaultInjector> injector)
{
    std::lock_guard<std::mutex> lock(g_injector_mutex);
    std::swap(g_injector, injector);
    return injector;
}

std::shared_ptr<SocketFaultInjector>
globalSocketFaultInjector()
{
    std::lock_guard<std::mutex> lock(g_injector_mutex);
    return g_injector;
}

// ---- TcpConnection ----

TcpConnection::TcpConnection(int fd)
    : fd_(fd), injector_(globalSocketFaultInjector())
{}

TcpConnection::~TcpConnection() { close(); }

TcpConnection::TcpConnection(TcpConnection &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      injector_(std::move(other.injector_))
{}

TcpConnection &
TcpConnection::operator=(TcpConnection &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        injector_ = std::move(other.injector_);
    }
    return *this;
}

void
TcpConnection::setFaultInjector(
    std::shared_ptr<SocketFaultInjector> injector)
{
    injector_ = std::move(injector);
}

void
TcpConnection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
TcpConnection::resetClose()
{
    if (fd_ < 0)
        return;
    struct linger lg = {};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    close();
}

Result<void>
TcpConnection::writeAll(const void *data, std::size_t size)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "write on closed socket");
    const char *p = static_cast<const char *>(data);
    std::size_t left = size;
    while (left > 0) {
        std::size_t chunk = left;
        if (injector_) {
            using Action = SocketFaultDecision::Action;
            const SocketFaultDecision d = injector_->onWrite(left);
            switch (d.action) {
            case Action::None:
                break;
            case Action::Delay:
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(d.delayMs));
                break;
            case Action::ShortOp:
                chunk = std::max<std::size_t>(1,
                    std::min(left, d.maxBytes));
                break;
            case Action::Drop:
                close();
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "chaos: injected connection drop on "
                                   "write (", left, " bytes unsent)");
            case Action::Reset:
                resetClose();
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "chaos: injected connection reset on "
                                   "write (", left, " bytes unsent)");
            case Action::Truncate: {
                std::size_t sent = 0;
                const std::size_t keep = std::min(left, d.maxBytes);
                while (sent < keep) {
                    const ssize_t n = ::send(fd_, p + sent, keep - sent,
                                             MSG_NOSIGNAL);
                    if (n < 0 && errno == EINTR)
                        continue;
                    if (n <= 0)
                        break;
                    sent += static_cast<std::size_t>(n);
                }
                close();
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "chaos: injected truncated write (",
                                   sent, " of ", left, " bytes sent)");
            }
            }
        }
        const ssize_t n = ::send(fd_, p, chunk, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoError("socket write failed", errno);
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    return {};
}

Result<void>
TcpConnection::readAll(void *data, std::size_t size)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "read on closed socket");
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < size) {
        std::size_t chunk = size - got;
        if (injector_) {
            using Action = SocketFaultDecision::Action;
            const SocketFaultDecision d = injector_->onRead(chunk);
            switch (d.action) {
            case Action::None:
                break;
            case Action::Delay:
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(d.delayMs));
                break;
            case Action::ShortOp:
                chunk = std::max<std::size_t>(1,
                    std::min(chunk, d.maxBytes));
                break;
            case Action::Drop:
            case Action::Truncate:
                close();
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "chaos: injected connection drop on "
                                   "read (", got, " of ", size,
                                   " bytes)");
            case Action::Reset:
                resetClose();
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "chaos: injected connection reset on "
                                   "read (", got, " of ", size,
                                   " bytes)");
            }
        }
        const ssize_t n = ::recv(fd_, p + got, chunk, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "socket read timed out after ", got,
                                   " of ", size, " bytes");
            }
            return errnoError("socket read failed", errno);
        }
        if (n == 0) {
            if (got == 0) {
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "connection closed");
            }
            return ECOLO_ERROR(ErrorCode::IoError,
                               "connection closed mid-record (", got,
                               " of ", size, " bytes)");
        }
        got += static_cast<std::size_t>(n);
    }
    return {};
}

Result<void>
TcpConnection::setReceiveTimeout(int milliseconds)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "socket is closed");
    struct timeval tv = {};
    tv.tv_sec = milliseconds / 1000;
    tv.tv_usec = (milliseconds % 1000) * 1000;
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
        return errnoError("setsockopt(SO_RCVTIMEO) failed", errno);
    return {};
}

// ---- TcpListener ----

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0))
{}

TcpListener &
TcpListener::operator=(TcpListener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        port_ = std::exchange(other.port_, 0);
    }
    return *this;
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Result<TcpListener>
TcpListener::listenLoopback(std::uint16_t port, int backlog)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoError("cannot create socket", errno);
    TcpListener listener;
    listener.fd_ = fd;

    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        return ECOLO_ERROR(ErrorCode::IoError,
                           "cannot bind 127.0.0.1:", port, ": ",
                           std::strerror(errno));
    }
    if (::listen(fd, backlog) != 0)
        return errnoError("cannot listen", errno);

    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0) {
        return errnoError("cannot read bound port", errno);
    }
    listener.port_ = ntohs(addr.sin_port);
    return listener;
}

Result<std::optional<TcpConnection>>
TcpListener::acceptFor(int timeout_ms)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "listener is closed");
    struct pollfd pfd = {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
        if (errno == EINTR)
            return std::optional<TcpConnection>{};
        return errnoError("poll on listener failed", errno);
    }
    if (ready == 0)
        return std::optional<TcpConnection>{};
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED)
            return std::optional<TcpConnection>{};
        return errnoError("accept failed", errno);
    }
    return std::optional<TcpConnection>{TcpConnection(fd)};
}

Result<TcpConnection>
connectLoopback(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoError("cannot create socket", errno);
    TcpConnection conn(fd);

    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINTR) {
            return ECOLO_ERROR(ErrorCode::IoError,
                               "cannot connect to 127.0.0.1:", port,
                               ": ", std::strerror(errno));
        }
        // EINTR: the handshake continues in the background (POSIX says
        // the connect may not be restarted); wait for the socket to
        // become writable, then read its final status.
        struct pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        for (;;) {
            const int ready = ::poll(&pfd, 1, -1);
            if (ready < 0 && errno == EINTR)
                continue;
            if (ready < 0)
                return errnoError("poll while connecting failed", errno);
            break;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0)
            return errnoError("getsockopt(SO_ERROR) failed", errno);
        if (err != 0) {
            return ECOLO_ERROR(ErrorCode::IoError,
                               "cannot connect to 127.0.0.1:", port,
                               ": ", std::strerror(err));
        }
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return conn;
}

} // namespace ecolo::util
