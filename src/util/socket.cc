#include "util/socket.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace ecolo::util {

namespace {

Error
errnoError(const char *what, int err)
{
    return ECOLO_ERROR(ErrorCode::IoError, what, ": ",
                       std::strerror(err));
}

std::mutex g_injector_mutex;
std::shared_ptr<SocketFaultInjector> g_injector;

} // namespace

std::shared_ptr<SocketFaultInjector>
setGlobalSocketFaultInjector(std::shared_ptr<SocketFaultInjector> injector)
{
    std::lock_guard<std::mutex> lock(g_injector_mutex);
    std::swap(g_injector, injector);
    return injector;
}

std::shared_ptr<SocketFaultInjector>
globalSocketFaultInjector()
{
    std::lock_guard<std::mutex> lock(g_injector_mutex);
    return g_injector;
}

// ---- TcpConnection ----

TcpConnection::TcpConnection(int fd)
    : fd_(fd), injector_(globalSocketFaultInjector())
{}

TcpConnection::~TcpConnection() { close(); }

TcpConnection::TcpConnection(TcpConnection &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      injector_(std::move(other.injector_))
{}

TcpConnection &
TcpConnection::operator=(TcpConnection &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        injector_ = std::move(other.injector_);
    }
    return *this;
}

void
TcpConnection::setFaultInjector(
    std::shared_ptr<SocketFaultInjector> injector)
{
    injector_ = std::move(injector);
}

void
TcpConnection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
TcpConnection::resetClose()
{
    if (fd_ < 0)
        return;
    struct linger lg = {};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    close();
}

Result<void>
TcpConnection::writeAll(const void *data, std::size_t size)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "write on closed socket");
    const char *p = static_cast<const char *>(data);
    std::size_t left = size;
    while (left > 0) {
        std::size_t chunk = left;
        if (injector_) {
            using Action = SocketFaultDecision::Action;
            const SocketFaultDecision d = injector_->onWrite(left);
            switch (d.action) {
            case Action::None:
                break;
            case Action::Delay:
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(d.delayMs));
                break;
            case Action::ShortOp:
                chunk = std::max<std::size_t>(1,
                    std::min(left, d.maxBytes));
                break;
            case Action::Drop:
                close();
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "chaos: injected connection drop on "
                                   "write (", left, " bytes unsent)");
            case Action::Reset:
                resetClose();
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "chaos: injected connection reset on "
                                   "write (", left, " bytes unsent)");
            case Action::Truncate: {
                std::size_t sent = 0;
                const std::size_t keep = std::min(left, d.maxBytes);
                while (sent < keep) {
                    const ssize_t n = ::send(fd_, p + sent, keep - sent,
                                             MSG_NOSIGNAL);
                    if (n < 0 && errno == EINTR)
                        continue;
                    if (n <= 0)
                        break;
                    sent += static_cast<std::size_t>(n);
                }
                close();
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "chaos: injected truncated write (",
                                   sent, " of ", left, " bytes sent)");
            }
            }
        }
        const ssize_t n = ::send(fd_, p, chunk, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoError("socket write failed", errno);
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    return {};
}

Result<void>
TcpConnection::readAll(void *data, std::size_t size)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "read on closed socket");
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < size) {
        std::size_t chunk = size - got;
        if (injector_) {
            using Action = SocketFaultDecision::Action;
            const SocketFaultDecision d = injector_->onRead(chunk);
            switch (d.action) {
            case Action::None:
                break;
            case Action::Delay:
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(d.delayMs));
                break;
            case Action::ShortOp:
                chunk = std::max<std::size_t>(1,
                    std::min(chunk, d.maxBytes));
                break;
            case Action::Drop:
            case Action::Truncate:
                close();
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "chaos: injected connection drop on "
                                   "read (", got, " of ", size,
                                   " bytes)");
            case Action::Reset:
                resetClose();
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "chaos: injected connection reset on "
                                   "read (", got, " of ", size,
                                   " bytes)");
            }
        }
        const ssize_t n = ::recv(fd_, p + got, chunk, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "socket read timed out after ", got,
                                   " of ", size, " bytes");
            }
            return errnoError("socket read failed", errno);
        }
        if (n == 0) {
            if (got == 0) {
                return ECOLO_ERROR(ErrorCode::IoError,
                                   "connection closed");
            }
            return ECOLO_ERROR(ErrorCode::IoError,
                               "connection closed mid-record (", got,
                               " of ", size, " bytes)");
        }
        got += static_cast<std::size_t>(n);
    }
    return {};
}

Result<void>
TcpConnection::setNonBlocking(bool enabled)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "socket is closed");
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0)
        return errnoError("fcntl(F_GETFL) failed", errno);
    const int wanted =
        enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (wanted != flags && ::fcntl(fd_, F_SETFL, wanted) != 0)
        return errnoError("fcntl(F_SETFL) failed", errno);
    return {};
}

Result<TcpConnection::IoChunk>
TcpConnection::tryRead(void *data, std::size_t size)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "read on closed socket");
    std::size_t chunk = size;
    if (injector_) {
        using Action = SocketFaultDecision::Action;
        const SocketFaultDecision d = injector_->onRead(chunk);
        switch (d.action) {
        case Action::None:
            break;
        case Action::Delay:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(d.delayMs));
            break;
        case Action::ShortOp:
            chunk = std::max<std::size_t>(1, std::min(chunk, d.maxBytes));
            break;
        case Action::Drop:
        case Action::Truncate:
            close();
            return ECOLO_ERROR(ErrorCode::IoError,
                               "chaos: injected connection drop on read");
        case Action::Reset:
            resetClose();
            return ECOLO_ERROR(ErrorCode::IoError,
                               "chaos: injected connection reset on read");
        }
    }
    for (;;) {
        const ssize_t n = ::recv(fd_, data, chunk, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return IoChunk{0, false, true};
            return errnoError("socket read failed", errno);
        }
        if (n == 0)
            return IoChunk{0, true, false};
        return IoChunk{static_cast<std::size_t>(n), false, false};
    }
}

Result<TcpConnection::IoChunk>
TcpConnection::tryWrite(const void *data, std::size_t size)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "write on closed socket");
    std::size_t chunk = size;
    if (injector_) {
        using Action = SocketFaultDecision::Action;
        const SocketFaultDecision d = injector_->onWrite(chunk);
        switch (d.action) {
        case Action::None:
            break;
        case Action::Delay:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(d.delayMs));
            break;
        case Action::ShortOp:
            chunk = std::max<std::size_t>(1, std::min(chunk, d.maxBytes));
            break;
        case Action::Drop:
            close();
            return ECOLO_ERROR(ErrorCode::IoError,
                               "chaos: injected connection drop on write");
        case Action::Reset:
            resetClose();
            return ECOLO_ERROR(
                ErrorCode::IoError,
                "chaos: injected connection reset on write");
        case Action::Truncate: {
            const std::size_t keep = std::min(chunk, d.maxBytes);
            std::size_t sent = 0;
            while (sent < keep) {
                const ssize_t n = ::send(
                    fd_, static_cast<const char *>(data) + sent,
                    keep - sent, MSG_NOSIGNAL);
                if (n < 0 && errno == EINTR)
                    continue;
                if (n <= 0)
                    break;
                sent += static_cast<std::size_t>(n);
            }
            close();
            return ECOLO_ERROR(ErrorCode::IoError,
                               "chaos: injected truncated write (", sent,
                               " of ", size, " bytes sent)");
        }
        }
    }
    for (;;) {
        const ssize_t n = ::send(fd_, data, chunk, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return IoChunk{0, false, true};
            return errnoError("socket write failed", errno);
        }
        return IoChunk{static_cast<std::size_t>(n), false, false};
    }
}

Result<void>
TcpConnection::setReceiveTimeout(int milliseconds)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "socket is closed");
    struct timeval tv = {};
    tv.tv_sec = milliseconds / 1000;
    tv.tv_usec = (milliseconds % 1000) * 1000;
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
        return errnoError("setsockopt(SO_RCVTIMEO) failed", errno);
    return {};
}

// ---- TcpListener ----

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0))
{}

TcpListener &
TcpListener::operator=(TcpListener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        port_ = std::exchange(other.port_, 0);
    }
    return *this;
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Result<TcpListener>
TcpListener::listenLoopback(std::uint16_t port, int backlog)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoError("cannot create socket", errno);
    TcpListener listener;
    listener.fd_ = fd;

    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        return ECOLO_ERROR(ErrorCode::IoError,
                           "cannot bind 127.0.0.1:", port, ": ",
                           std::strerror(errno));
    }
    if (::listen(fd, backlog) != 0)
        return errnoError("cannot listen", errno);

    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0) {
        return errnoError("cannot read bound port", errno);
    }
    listener.port_ = ntohs(addr.sin_port);
    return listener;
}

Result<std::optional<TcpConnection>>
TcpListener::acceptFor(int timeout_ms)
{
    if (fd_ < 0)
        return ECOLO_ERROR(ErrorCode::IoError, "listener is closed");
    struct pollfd pfd = {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
        if (errno == EINTR)
            return std::optional<TcpConnection>{};
        return errnoError("poll on listener failed", errno);
    }
    if (ready == 0)
        return std::optional<TcpConnection>{};
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED)
            return std::optional<TcpConnection>{};
        return errnoError("accept failed", errno);
    }
    return std::optional<TcpConnection>{TcpConnection(fd)};
}

namespace {

/**
 * connect() with the EINTR completion dance: the handshake continues in
 * the background (POSIX says the connect may not be restarted), so wait
 * for writability and read the socket's final status. Returns 0 or an
 * errno value.
 */
int
connectAndFinish(int fd, const struct sockaddr *addr, socklen_t len)
{
    if (::connect(fd, addr, len) == 0)
        return 0;
    if (errno != EINTR)
        return errno;
    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    for (;;) {
        const int ready = ::poll(&pfd, 1, -1);
        if (ready < 0 && errno == EINTR)
            continue;
        if (ready < 0)
            return errno;
        break;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0)
        return errno;
    return err;
}

} // namespace

Result<TcpConnection>
connectLoopback(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoError("cannot create socket", errno);
    TcpConnection conn(fd);

    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (const int err = connectAndFinish(
            fd, reinterpret_cast<struct sockaddr *>(&addr), sizeof(addr));
        err != 0) {
        return ECOLO_ERROR(ErrorCode::IoError,
                           "cannot connect to 127.0.0.1:", port, ": ",
                           std::strerror(err));
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return conn;
}

Result<TcpConnection>
connectTo(const std::string &host, std::uint16_t port)
{
    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_protocol = IPPROTO_TCP;
    const std::string service = std::to_string(port);
    struct addrinfo *list = nullptr;
    if (const int rc =
            ::getaddrinfo(host.c_str(), service.c_str(), &hints, &list);
        rc != 0) {
        return ECOLO_ERROR(ErrorCode::IoError, "cannot resolve host '",
                           host, "': ",
                           rc == EAI_SYSTEM ? std::strerror(errno)
                                            : ::gai_strerror(rc));
    }
    int last_err = ECONNREFUSED;
    for (struct addrinfo *ai = list; ai != nullptr; ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_err = errno;
            continue;
        }
        TcpConnection conn(fd);
        if (const int err = connectAndFinish(fd, ai->ai_addr,
                                             ai->ai_addrlen);
            err != 0) {
            last_err = err;
            continue; // conn's destructor closes the candidate fd
        }
        const int one = 1;
        (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                           sizeof(one));
        ::freeaddrinfo(list);
        return conn;
    }
    ::freeaddrinfo(list);
    return ECOLO_ERROR(ErrorCode::IoError, "cannot connect to ", host,
                       ":", port, ": ", std::strerror(last_err));
}

} // namespace ecolo::util
