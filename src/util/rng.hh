/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of EdgeTherm (trace generation, side-channel
 * noise, exploration in Q-learning, ...) draw from an explicitly seeded Rng
 * so that year-long simulations are reproducible bit-for-bit. The generator
 * is xoshiro256** seeded through SplitMix64, which is fast, high quality, and
 * has a tiny state that is cheap to fork per subsystem.
 */

#ifndef ECOLO_UTIL_RNG_HH
#define ECOLO_UTIL_RNG_HH

#include <array>
#include <cstdint>

#include "util/state_io.hh"

namespace ecolo {

/** xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 so nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Raw 64 random bits. */
    std::uint64_t next();

    // UniformRandomBitGenerator interface so <random> adaptors also work.
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller (cached second variate). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Poisson-distributed count with the given mean (Knuth / PTRS hybrid). */
    std::uint64_t poisson(double mean);

    /** Fork an independent child stream (for per-subsystem determinism). */
    Rng fork();

    /** Serialize the full generator state (checkpointing). */
    void saveState(util::StateWriter &writer) const;
    /** Restore a state written by saveState; resumes bit-identically. */
    void loadState(util::StateReader &reader);

  private:
    std::array<std::uint64_t, 4> state_{};
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace ecolo

#endif // ECOLO_UTIL_RNG_HH
