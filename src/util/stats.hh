/**
 * @file
 * Streaming statistics used by the simulator's metrics and by the
 * reproduction harnesses: online mean/variance (Welford), sample-based
 * percentile estimation, and fixed-bin histograms.
 */

#ifndef ECOLO_UTIL_STATS_HH
#define ECOLO_UTIL_STATS_HH

#include <cstddef>
#include <limits>
#include <vector>

#include "util/state_io.hh"

namespace ecolo {

/** Online mean/variance/min/max accumulator (Welford's algorithm). */
class OnlineStats
{
  public:
    void add(double x);
    void merge(const OnlineStats &other);
    void reset();

    /** Serialize / restore the accumulator (campaign checkpoints). */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population variance; 0 for fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Sample-storing percentile estimator. Stores all samples (year-long minute
 * resolution is only ~526k doubles), sorts lazily on query.
 */
class PercentileEstimator
{
  public:
    void add(double x);
    void reserve(std::size_t n) { samples_.reserve(n); }

    std::size_t count() const { return samples_.size(); }

    /**
     * Percentile by linear interpolation between closest ranks.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Fixed-width-bin histogram over [lo, hi); outliers land in edge bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }
    /** Center of bin i's value range. */
    double binCenter(std::size_t i) const;
    /** Fraction of all samples in bin i (0 if empty histogram). */
    double binFraction(std::size_t i) const;
    std::size_t totalCount() const { return total_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Serialize / restore the bin counts (campaign checkpoints). */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace ecolo

#endif // ECOLO_UTIL_STATS_HH
