#include "util/result.hh"

namespace ecolo::util {

const char *
toString(ErrorCode code)
{
    switch (code) {
      case ErrorCode::None:
        return "ok";
      case ErrorCode::IoError:
        return "io";
      case ErrorCode::ParseError:
        return "parse";
      case ErrorCode::ValidationError:
        return "validation";
      case ErrorCode::StateError:
        return "state";
    }
    return "unknown";
}

std::string
Error::describe() const
{
    std::ostringstream oss;
    if (file != nullptr && *file != '\0')
        oss << file << ":" << line << ": ";
    oss << "[" << toString(code) << "] " << message;
    return oss.str();
}

} // namespace ecolo::util
