/**
 * @file
 * Gnuplot export: turn a bench harness's series into a .dat file plus a
 * ready-to-run .gp script, so the regenerated figures can actually be
 * *plotted* next to the paper's.
 *
 * The reproduction binaries write plots only when the EDGETHERM_PLOT_DIR
 * environment variable names a directory (keeping default runs free of
 * file-system side effects):
 *
 *   EDGETHERM_PLOT_DIR=plots ./build/bench/bench_fig8_oneshot
 *   gnuplot plots/fig8_oneshot.gp     # renders fig8_oneshot.png
 */

#ifndef ECOLO_UTIL_PLOT_HH
#define ECOLO_UTIL_PLOT_HH

#include <optional>
#include <string>
#include <vector>

namespace ecolo {

/** One figure: shared x axis, one or more named y series. */
class GnuplotFigure
{
  public:
    /**
     * @param name file stem ("fig8_oneshot" -> fig8_oneshot.dat/.gp/.png)
     * @param title plot title
     * @param x_label, y_label axis labels
     */
    GnuplotFigure(std::string name, std::string title, std::string x_label,
                  std::string y_label);

    /** Register a series; all series must be added before data rows. */
    void addSeries(const std::string &series_name);

    /**
     * Append one data row: the x value plus one y value per registered
     * series (in registration order).
     */
    void addRow(double x, const std::vector<double> &ys);

    /**
     * Write <name>.dat and <name>.gp into the directory. Returns false
     * (without touching the file system) when the directory is empty.
     */
    bool writeTo(const std::string &directory) const;

    std::size_t numSeries() const { return series_.size(); }
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string name_;
    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    std::vector<std::string> series_;
    std::vector<std::pair<double, std::vector<double>>> rows_;
};

/**
 * The plot directory from EDGETHERM_PLOT_DIR, or nullopt when unset or
 * empty (the benches' signal to skip plot output).
 */
std::optional<std::string> plotDirFromEnv();

} // namespace ecolo

#endif // ECOLO_UTIL_PLOT_HH
