#include "util/state_io.hh"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

namespace ecolo::util {

namespace {

/** Refuse absurd vector lengths from corrupt/truncated files. */
constexpr std::uint64_t kMaxVectorElements = 1ULL << 32;

} // namespace

// ---- StateWriter ----

StateWriter::StateWriter(std::ostream &os) : os_(os) {}

void
StateWriter::raw(const void *data, std::size_t size)
{
    os_.write(static_cast<const char *>(data),
              static_cast<std::streamsize>(size));
}

void
StateWriter::header()
{
    u32(kStateMagic);
    u32(kStateVersion);
}

void
StateWriter::tag(const char (&name)[5])
{
    raw(name, 4);
}

void
StateWriter::u32(std::uint32_t v)
{
    raw(&v, sizeof(v));
}

void
StateWriter::u64(std::uint64_t v)
{
    raw(&v, sizeof(v));
}

void
StateWriter::i64(std::int64_t v)
{
    raw(&v, sizeof(v));
}

void
StateWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
StateWriter::boolean(bool v)
{
    const std::uint8_t byte = v ? 1 : 0;
    raw(&byte, 1);
}

void
StateWriter::str(const std::string &s)
{
    u64(s.size());
    raw(s.data(), s.size());
}

void
StateWriter::u64Vector(const std::vector<std::uint64_t> &v)
{
    u64(v.size());
    for (std::uint64_t x : v)
        u64(x);
}

void
StateWriter::i64Vector(const std::vector<std::int64_t> &v)
{
    u64(v.size());
    for (std::int64_t x : v)
        i64(x);
}

void
StateWriter::f64Vector(const std::vector<double> &v)
{
    u64(v.size());
    for (double x : v)
        f64(x);
}

void
StateWriter::sizeVector(const std::vector<std::size_t> &v)
{
    u64(v.size());
    for (std::size_t x : v)
        u64(x);
}

bool
StateWriter::good() const
{
    return os_.good();
}

// ---- StateReader ----

StateReader::StateReader(std::istream &is) : is_(is) {}

bool
StateReader::raw(void *data, std::size_t size)
{
    if (!status_.ok())
        return false;
    is_.read(static_cast<char *>(data),
             static_cast<std::streamsize>(size));
    if (!is_) {
        status_ = ECOLO_ERROR(ErrorCode::StateError,
                              "checkpoint truncated or unreadable");
        return false;
    }
    return true;
}

void
StateReader::header()
{
    const std::uint32_t magic = u32();
    const std::uint32_t version = u32();
    if (!status_.ok())
        return;
    if (magic != kStateMagic) {
        status_ = ECOLO_ERROR(ErrorCode::StateError,
                              "not an EdgeTherm checkpoint (bad magic)");
    } else if (version != kStateVersion) {
        status_ = ECOLO_ERROR(ErrorCode::StateError,
                              "unsupported checkpoint version ", version,
                              " (expected ", kStateVersion, ")");
    }
}

void
StateReader::tag(const char (&name)[5])
{
    char got[5] = {0, 0, 0, 0, 0};
    if (!raw(got, 4))
        return;
    if (std::memcmp(got, name, 4) != 0) {
        status_ = ECOLO_ERROR(ErrorCode::StateError,
                              "checkpoint section mismatch: expected '",
                              name, "', found '", got, "'");
    }
}

std::uint32_t
StateReader::u32()
{
    std::uint32_t v = 0;
    raw(&v, sizeof(v));
    return v;
}

std::uint64_t
StateReader::u64()
{
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
}

std::int64_t
StateReader::i64()
{
    std::int64_t v = 0;
    raw(&v, sizeof(v));
    return v;
}

double
StateReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return status_.ok() ? v : 0.0;
}

bool
StateReader::boolean()
{
    std::uint8_t byte = 0;
    raw(&byte, 1);
    return byte != 0;
}

std::string
StateReader::str()
{
    const std::uint64_t size = u64();
    if (!status_.ok())
        return "";
    if (size > kMaxVectorElements) {
        status_ = ECOLO_ERROR(ErrorCode::StateError,
                              "checkpoint string length corrupt: ", size);
        return "";
    }
    std::string s(size, '\0');
    if (size > 0)
        raw(s.data(), size);
    return status_.ok() ? s : "";
}

std::vector<std::uint64_t>
StateReader::u64Vector()
{
    const std::uint64_t size = u64();
    if (!status_.ok() || size > kMaxVectorElements) {
        if (status_.ok())
            status_ = ECOLO_ERROR(ErrorCode::StateError,
                                  "checkpoint vector length corrupt: ",
                                  size);
        return {};
    }
    std::vector<std::uint64_t> v(size);
    for (auto &x : v)
        x = u64();
    return status_.ok() ? v : std::vector<std::uint64_t>{};
}

std::vector<std::int64_t>
StateReader::i64Vector()
{
    const std::uint64_t size = u64();
    if (!status_.ok() || size > kMaxVectorElements) {
        if (status_.ok())
            status_ = ECOLO_ERROR(ErrorCode::StateError,
                                  "checkpoint vector length corrupt: ",
                                  size);
        return {};
    }
    std::vector<std::int64_t> v(size);
    for (auto &x : v)
        x = i64();
    return status_.ok() ? v : std::vector<std::int64_t>{};
}

std::vector<double>
StateReader::f64Vector()
{
    const std::uint64_t size = u64();
    if (!status_.ok() || size > kMaxVectorElements) {
        if (status_.ok())
            status_ = ECOLO_ERROR(ErrorCode::StateError,
                                  "checkpoint vector length corrupt: ",
                                  size);
        return {};
    }
    std::vector<double> v(size);
    for (auto &x : v)
        x = f64();
    return status_.ok() ? v : std::vector<double>{};
}

std::vector<std::size_t>
StateReader::sizeVector()
{
    const auto wide = u64Vector();
    std::vector<std::size_t> v(wide.size());
    for (std::size_t i = 0; i < wide.size(); ++i)
        v[i] = static_cast<std::size_t>(wide[i]);
    return v;
}

void
StateReader::fail(Error error)
{
    if (status_.ok())
        status_ = std::move(error);
}

} // namespace ecolo::util
