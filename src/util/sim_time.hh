/**
 * @file
 * Discrete simulation time. The paper's evaluation uses one-minute slots over
 * a year-long horizon; MinuteIndex is the canonical clock, with helpers to
 * recover calendar structure (minute-of-day, day index, weekday) that the
 * trace generators key off.
 */

#ifndef ECOLO_UTIL_SIM_TIME_HH
#define ECOLO_UTIL_SIM_TIME_HH

#include <cstdint>

namespace ecolo {

/** Index of a one-minute simulation slot since t = 0. */
using MinuteIndex = std::int64_t;

inline constexpr MinuteIndex kMinutesPerHour = 60;
inline constexpr MinuteIndex kMinutesPerDay = 24 * kMinutesPerHour;
inline constexpr MinuteIndex kMinutesPerWeek = 7 * kMinutesPerDay;
inline constexpr MinuteIndex kMinutesPerYear = 365 * kMinutesPerDay;

/** Minute within the day, in [0, 1440). */
constexpr MinuteIndex
minuteOfDay(MinuteIndex t)
{
    return t % kMinutesPerDay;
}

/** Fractional hour within the day, in [0, 24). */
constexpr double
hourOfDay(MinuteIndex t)
{
    return static_cast<double>(minuteOfDay(t)) / 60.0;
}

/** Whole days elapsed since t = 0. */
constexpr MinuteIndex
dayIndex(MinuteIndex t)
{
    return t / kMinutesPerDay;
}

/** Day of week in [0, 7), day 0 being a Monday by convention. */
constexpr int
dayOfWeek(MinuteIndex t)
{
    return static_cast<int>(dayIndex(t) % 7);
}

/** True on Saturday/Sunday under the Monday-epoch convention. */
constexpr bool
isWeekend(MinuteIndex t)
{
    const int dow = dayOfWeek(t);
    return dow == 5 || dow == 6;
}

} // namespace ecolo

#endif // ECOLO_UTIL_SIM_TIME_HH
