/**
 * @file
 * A small fixed-size thread pool with a parallelFor primitive.
 *
 * Year-long campaigns, fleet simulations, CFD matrix extraction and the
 * sensitivity sweeps all decompose into *independent* units of work whose
 * outputs go to pre-sized slots. This utility parallelizes exactly that
 * shape -- an index range dispatched over a fixed set of worker threads --
 * while keeping results bit-identical to a serial run: the body must write
 * only to state owned by its index (its output slot, its own simulation,
 * its own RNG stream), so the execution order cannot be observed.
 *
 * Scheduling is dynamic (workers claim indices from a shared atomic
 * counter), which load-balances units of uneven cost such as simulations
 * that hit outages. Nested parallelFor calls run inline on the calling
 * thread, so code that is itself run under a parallelFor never deadlocks.
 */

#ifndef ECOLO_UTIL_PARALLEL_HH
#define ECOLO_UTIL_PARALLEL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecolo::util {

/** Fixed set of worker threads executing one index range at a time. */
class ThreadPool
{
  public:
    /**
     * @param num_threads total degree of parallelism, including the
     *        calling thread; 1 means "run everything inline" and spawns
     *        no workers.
     */
    explicit ThreadPool(std::size_t num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Degree of parallelism (workers + the calling thread). */
    std::size_t numThreads() const { return workers_.size() + 1; }

    /**
     * Run body(i) for every i in [begin, end). The calling thread
     * participates; the call returns after every index has completed.
     * The first exception thrown by any body is rethrown on the caller
     * (remaining indices still run). Concurrent parallelFor calls from
     * different threads are serialized; calls from inside a body run
     * inline on the calling thread.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

    /**
     * The process-wide pool used by FleetSimulation, extractFromCfd and
     * the bench harnesses. Created on first use with defaultThreads().
     */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of the given size. Only call from
     * a quiescent, single-threaded context (startup, tests): outstanding
     * references to the previous pool must no longer be in use.
     */
    static void setGlobalThreads(std::size_t num_threads);

    /**
     * Default degree of parallelism: the EDGETHERM_THREADS environment
     * variable when set, otherwise std::thread::hardware_concurrency().
     */
    static std::size_t defaultThreads();

    /**
     * Observation hook called after each completed parallelFor body with
     * the body's index and its start/end instants. The telemetry layer
     * installs this to attribute task wall-clock to pool workers; nullptr
     * (the default) keeps the dispatch loops hook-free apart from one
     * relaxed atomic load per parallelFor call. The hook runs on the
     * executing thread and must be thread-safe.
     */
    using TaskHook = void (*)(std::size_t index,
                              std::chrono::steady_clock::time_point start,
                              std::chrono::steady_clock::time_point end);
    static void setTaskHook(TaskHook hook);

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;
    std::size_t finishedWorkers_ = 0;
    bool stop_ = false;

    const std::function<void(std::size_t)> *body_ = nullptr;
    std::atomic<std::size_t> next_{0};
    std::size_t end_ = 0;
    std::exception_ptr firstError_;

    std::mutex jobMutex_; //!< serializes parallelFor invocations
    std::vector<std::thread> workers_;
};

/** ThreadPool::global().parallelFor(begin, end, body). */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &body);

} // namespace ecolo::util

#endif // ECOLO_UTIL_PARALLEL_HH
