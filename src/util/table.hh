/**
 * @file
 * Aligned plain-text table printer used by the reproduction harnesses to
 * print the paper's rows/series, and a small CSV writer for post-processing.
 */

#ifndef ECOLO_UTIL_TABLE_HH
#define ECOLO_UTIL_TABLE_HH

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace ecolo {

/** Builds a table row by row, then prints it with aligned columns. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; cells are stringified with operator<<. */
    template <typename... Cells>
    void
    addRow(const Cells &...cells)
    {
        std::vector<std::string> row;
        row.reserve(sizeof...(cells));
        (row.push_back(stringify(cells)), ...);
        addRowStrings(std::move(row));
    }

    void addRowStrings(std::vector<std::string> row);

    /** Render with a header underline and 2-space column gaps. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (header row first). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    template <typename T>
    static std::string
    stringify(const T &value)
    {
        std::ostringstream oss;
        oss << value;
        return oss.str();
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper for table cells). */
std::string fixed(double value, int precision = 2);

/** Print a section banner like "== Fig. 11(c): ... ==". */
void printBanner(std::ostream &os, const std::string &title);

} // namespace ecolo

#endif // ECOLO_UTIL_TABLE_HH
