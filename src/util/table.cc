#include "util/table.hh"

#include <algorithm>
#include <iomanip>

#include "util/logging.hh"

namespace ecolo {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ECOLO_ASSERT(!headers_.empty(), "a table needs at least one column");
}

void
TextTable::addRowStrings(std::vector<std::string> row)
{
    ECOLO_ASSERT(row.size() == headers_.size(),
                 "row width ", row.size(), " != header width ",
                 headers_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fixed(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n";
}

} // namespace ecolo
