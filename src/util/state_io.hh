/**
 * @file
 * Binary checkpoint serialization primitives.
 *
 * Year-long multi-seed campaigns must survive crashes and resume
 * *bit-identically*, so the writer stores doubles as raw IEEE-754 bytes
 * (no text round-trip) and every section is framed by a four-byte tag the
 * reader verifies. The reader never throws or aborts on corrupt input: it
 * latches the first failure into a structured Error and returns zeros
 * thereafter, so callers validate once per section via status().
 *
 * Format: little-endian on every platform we target; a header magic +
 * version gate incompatible layouts.
 */

#ifndef ECOLO_UTIL_STATE_IO_HH
#define ECOLO_UTIL_STATE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/result.hh"

namespace ecolo::util {

inline constexpr std::uint32_t kStateMagic = 0x45435053; // "ECPS"
inline constexpr std::uint32_t kStateVersion = 1;

/** Streaming binary writer for checkpoint state. */
class StateWriter
{
  public:
    explicit StateWriter(std::ostream &os);

    /** Write the file header (magic + version). */
    void header();

    /** Four-char section tag, e.g. "RNG ". */
    void tag(const char (&name)[5]);

    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void f64(double v);
    void boolean(bool v);
    void str(const std::string &s);

    void u64Vector(const std::vector<std::uint64_t> &v);
    void i64Vector(const std::vector<std::int64_t> &v);
    void f64Vector(const std::vector<double> &v);
    void sizeVector(const std::vector<std::size_t> &v);

    /** True if every write so far reached the stream. */
    bool good() const;

  private:
    void raw(const void *data, std::size_t size);

    std::ostream &os_;
};

/** Streaming binary reader; latches the first failure. */
class StateReader
{
  public:
    explicit StateReader(std::istream &is);

    /** Verify the file header; fails on magic/version mismatch. */
    void header();

    /** Verify the next section tag matches. */
    void tag(const char (&name)[5]);

    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    bool boolean();
    std::string str();

    std::vector<std::uint64_t> u64Vector();
    std::vector<std::int64_t> i64Vector();
    std::vector<double> f64Vector();
    std::vector<std::size_t> sizeVector();

    bool ok() const { return status_.ok(); }
    /** Success, or the first structured failure encountered. */
    const Result<void> &status() const { return status_; }

    /** Record an external consistency failure (e.g. config mismatch). */
    void fail(Error error);

  private:
    bool raw(void *data, std::size_t size);

    std::istream &is_;
    Result<void> status_;
};

} // namespace ecolo::util

#endif // ECOLO_UTIL_STATE_IO_HH
