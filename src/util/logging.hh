/**
 * @file
 * Minimal status/error reporting in the spirit of gem5's logging.hh.
 *
 * - panic():  an internal invariant was violated (a bug in EdgeTherm);
 *             aborts so debuggers/core dumps see the failure point.
 * - fatal():  the configuration or input is invalid (the user's fault);
 *             exits with an error code.
 * - warn():   something is questionable but simulation can continue.
 * - inform(): plain status output.
 */

#ifndef ECOLO_UTIL_LOGGING_HH
#define ECOLO_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace ecolo {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Abort on an internal invariant violation. */
#define ECOLO_PANIC(...) \
    ::ecolo::detail::panicImpl(__FILE__, __LINE__, \
        ::ecolo::detail::formatMessage(__VA_ARGS__))

/** Exit on invalid user configuration or input. */
#define ECOLO_FATAL(...) \
    ::ecolo::detail::fatalImpl(__FILE__, __LINE__, \
        ::ecolo::detail::formatMessage(__VA_ARGS__))

/** Like assert, but always compiled in and with a formatted message. */
#define ECOLO_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ECOLO_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (false)

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::formatMessage(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::formatMessage(std::forward<Args>(args)...));
}

} // namespace ecolo

#endif // ECOLO_UTIL_LOGGING_HH
