/**
 * @file
 * Minimal status/error reporting in the spirit of gem5's logging.hh.
 *
 * - panic():  an internal invariant was violated (a bug in EdgeTherm);
 *             aborts so debuggers/core dumps see the failure point.
 * - fatal():  the configuration or input is invalid (the user's fault);
 *             exits with an error code.
 * - warn():   something is questionable but simulation can continue.
 * - inform(): plain status output.
 * - debugLog(): chatty diagnostics, silent unless --log-level=debug.
 *
 * warn/inform/debugLog respect a process-wide LogLevel (default Info).
 * panic/fatal always print: suppressing the reason for dying would be
 * worse than any log noise.
 *
 * Per-slot diagnostics (a faulty sensor warns every simulated minute of a
 * 525,600-slot year) must use ECOLO_WARN_ONCE or ECOLO_WARN_RATE_LIMITED
 * so a year-long degraded run cannot emit hundreds of thousands of
 * duplicate lines. Both keep their state per call site and process-wide:
 * the second simulation in one process stays suppressed, which is the
 * point -- the operator already knows.
 */

#ifndef ECOLO_UTIL_LOGGING_HH
#define ECOLO_UTIL_LOGGING_HH

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace ecolo {

/** Severity threshold for warn/inform/debugLog output. */
enum class LogLevel : int
{
    Error = 0, //!< only panics/fatals (they always print)
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** Set the process-wide log level (e.g. from --log-level). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/**
 * Parse "error" | "warn" | "info" | "debug" (case-sensitive). Returns
 * false and leaves `out` untouched on anything else.
 */
bool parseLogLevel(const std::string &name, LogLevel &out);
const char *toString(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Abort on an internal invariant violation. */
#define ECOLO_PANIC(...) \
    ::ecolo::detail::panicImpl(__FILE__, __LINE__, \
        ::ecolo::detail::formatMessage(__VA_ARGS__))

/** Exit on invalid user configuration or input. */
#define ECOLO_FATAL(...) \
    ::ecolo::detail::fatalImpl(__FILE__, __LINE__, \
        ::ecolo::detail::formatMessage(__VA_ARGS__))

/** Like assert, but always compiled in and with a formatted message. */
#define ECOLO_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ECOLO_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (false)

template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() < LogLevel::Warn)
        return;
    detail::warnImpl(detail::formatMessage(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() < LogLevel::Info)
        return;
    detail::informImpl(detail::formatMessage(std::forward<Args>(args)...));
}

template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() < LogLevel::Debug)
        return;
    detail::debugImpl(detail::formatMessage(std::forward<Args>(args)...));
}

/**
 * Warn exactly once per call site for the process lifetime. The message
 * is only formatted when it will actually print.
 */
#define ECOLO_WARN_ONCE(...) \
    do { \
        static ::std::atomic<bool> ecolo_warned_once_{false}; \
        if (!ecolo_warned_once_.exchange(true, \
                                         ::std::memory_order_relaxed)) { \
            ::ecolo::warn(__VA_ARGS__); \
        } \
    } while (false)

/**
 * Warn at most `max_count_` times per call site, then print one final
 * "further warnings suppressed" notice and go quiet. Thread-safe.
 */
#define ECOLO_WARN_RATE_LIMITED(max_count_, ...) \
    do { \
        static ::std::atomic<std::uint64_t> ecolo_warn_count_{0}; \
        const std::uint64_t ecolo_warn_seen_ = \
            ecolo_warn_count_.fetch_add(1, ::std::memory_order_relaxed); \
        if (ecolo_warn_seen_ < static_cast<std::uint64_t>(max_count_)) { \
            ::ecolo::warn(__VA_ARGS__); \
        } else if (ecolo_warn_seen_ == \
                   static_cast<std::uint64_t>(max_count_)) { \
            ::ecolo::warn(__VA_ARGS__, \
                          " (further warnings from this site " \
                          "suppressed)"); \
        } \
    } while (false)

} // namespace ecolo

#endif // ECOLO_UTIL_LOGGING_HH
