/**
 * @file
 * Strong unit types for the quantities that flow through EdgeTherm.
 *
 * The thermal-attack domain mixes power (kW), energy (kWh), temperatures
 * (absolute degrees Celsius and temperature differences), and time (seconds,
 * minutes, hours). Mixing these up is the classic bug class of data-center
 * modeling code, so each is a distinct type and only physically meaningful
 * operations compile: power * time = energy, energy / time = power,
 * Celsius - Celsius = CelsiusDelta, and so on.
 */

#ifndef ECOLO_UTIL_UNITS_HH
#define ECOLO_UTIL_UNITS_HH

#include <cmath>
#include <compare>
#include <ostream>

namespace ecolo {

/**
 * A dimensioned scalar. Tag types make quantities with different dimensions
 * different C++ types; all arithmetic within one dimension is provided here,
 * and the few meaningful cross-dimension operations are free functions below.
 */
template <typename Tag>
class Quantity
{
  public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double v) : value_(v) {}

    /** Raw magnitude in this quantity's canonical unit. */
    constexpr double value() const { return value_; }

    constexpr Quantity operator-() const { return Quantity(-value_); }
    constexpr Quantity operator+(Quantity o) const
    { return Quantity(value_ + o.value_); }
    constexpr Quantity operator-(Quantity o) const
    { return Quantity(value_ - o.value_); }
    constexpr Quantity operator*(double s) const
    { return Quantity(value_ * s); }
    constexpr Quantity operator/(double s) const
    { return Quantity(value_ / s); }
    /** Ratio of two like quantities is dimensionless. */
    constexpr double operator/(Quantity o) const { return value_ / o.value_; }

    constexpr Quantity &operator+=(Quantity o)
    { value_ += o.value_; return *this; }
    constexpr Quantity &operator-=(Quantity o)
    { value_ -= o.value_; return *this; }
    constexpr Quantity &operator*=(double s) { value_ *= s; return *this; }
    constexpr Quantity &operator/=(double s) { value_ /= s; return *this; }

    constexpr auto operator<=>(const Quantity &) const = default;

  private:
    double value_ = 0.0;
};

template <typename Tag>
constexpr Quantity<Tag>
operator*(double s, Quantity<Tag> q)
{
    return q * s;
}

template <typename Tag>
std::ostream &
operator<<(std::ostream &os, Quantity<Tag> q)
{
    return os << q.value();
}

struct KilowattTag {};
struct KilowattHourTag {};
struct CelsiusDeltaTag {};
struct SecondsTag {};

/** Electrical or thermal power in kilowatts. */
using Kilowatts = Quantity<KilowattTag>;
/** Energy in kilowatt-hours (battery state, consumed energy). */
using KilowattHours = Quantity<KilowattHourTag>;
/** A temperature *difference* in degrees Celsius (equivalently Kelvin). */
using CelsiusDelta = Quantity<CelsiusDeltaTag>;
/** A time duration in seconds (canonical duration unit). */
using Seconds = Quantity<SecondsTag>;

/** Convenience duration constructors. */
constexpr Seconds
minutes(double m)
{
    return Seconds(m * 60.0);
}

constexpr Seconds
hours(double h)
{
    return Seconds(h * 3600.0);
}

constexpr double
toMinutes(Seconds s)
{
    return s.value() / 60.0;
}

constexpr double
toHours(Seconds s)
{
    return s.value() / 3600.0;
}

/**
 * An absolute temperature in degrees Celsius. Absolute temperatures support
 * differences and offsets by CelsiusDelta but not, e.g., addition of two
 * absolute temperatures or scaling.
 */
class Celsius
{
  public:
    constexpr Celsius() = default;
    constexpr explicit Celsius(double deg) : deg_(deg) {}

    constexpr double value() const { return deg_; }

    constexpr CelsiusDelta operator-(Celsius o) const
    { return CelsiusDelta(deg_ - o.deg_); }
    constexpr Celsius operator+(CelsiusDelta d) const
    { return Celsius(deg_ + d.value()); }
    constexpr Celsius operator-(CelsiusDelta d) const
    { return Celsius(deg_ - d.value()); }
    constexpr Celsius &operator+=(CelsiusDelta d)
    { deg_ += d.value(); return *this; }
    constexpr Celsius &operator-=(CelsiusDelta d)
    { deg_ -= d.value(); return *this; }

    constexpr auto operator<=>(const Celsius &) const = default;

  private:
    double deg_ = 0.0;
};

inline std::ostream &
operator<<(std::ostream &os, Celsius t)
{
    return os << t.value();
}

/** Energy delivered by a power over a duration. */
constexpr KilowattHours
operator*(Kilowatts p, Seconds t)
{
    return KilowattHours(p.value() * toHours(t));
}

constexpr KilowattHours
operator*(Seconds t, Kilowatts p)
{
    return p * t;
}

/** Average power that delivers an energy over a duration. */
constexpr Kilowatts
operator/(KilowattHours e, Seconds t)
{
    return Kilowatts(e.value() / toHours(t));
}

/** Time to deliver an energy at a constant power. */
constexpr Seconds
operator/(KilowattHours e, Kilowatts p)
{
    return hours(e.value() / p.value());
}

namespace unit_literals {

constexpr Kilowatts operator""_kW(long double v)
{ return Kilowatts(static_cast<double>(v)); }
constexpr Kilowatts operator""_kW(unsigned long long v)
{ return Kilowatts(static_cast<double>(v)); }
constexpr KilowattHours operator""_kWh(long double v)
{ return KilowattHours(static_cast<double>(v)); }
constexpr KilowattHours operator""_kWh(unsigned long long v)
{ return KilowattHours(static_cast<double>(v)); }
constexpr Celsius operator""_degC(long double v)
{ return Celsius(static_cast<double>(v)); }
constexpr Celsius operator""_degC(unsigned long long v)
{ return Celsius(static_cast<double>(v)); }
constexpr CelsiusDelta operator""_dK(long double v)
{ return CelsiusDelta(static_cast<double>(v)); }
constexpr CelsiusDelta operator""_dK(unsigned long long v)
{ return CelsiusDelta(static_cast<double>(v)); }
constexpr Seconds operator""_s(long double v)
{ return Seconds(static_cast<double>(v)); }
constexpr Seconds operator""_s(unsigned long long v)
{ return Seconds(static_cast<double>(v)); }
constexpr Seconds operator""_min(long double v)
{ return minutes(static_cast<double>(v)); }
constexpr Seconds operator""_min(unsigned long long v)
{ return minutes(static_cast<double>(v)); }
constexpr Seconds operator""_h(long double v)
{ return hours(static_cast<double>(v)); }
constexpr Seconds operator""_h(unsigned long long v)
{ return hours(static_cast<double>(v)); }

} // namespace unit_literals

/** Clamp a power to a [lo, hi] range. */
constexpr Kilowatts
clamp(Kilowatts v, Kilowatts lo, Kilowatts hi)
{
    return v < lo ? lo : (hi < v ? hi : v);
}

constexpr KilowattHours
clamp(KilowattHours v, KilowattHours lo, KilowattHours hi)
{
    return v < lo ? lo : (hi < v ? hi : v);
}

} // namespace ecolo

#endif // ECOLO_UTIL_UNITS_HH
