#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo {

void
OnlineStats::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
PercentileEstimator::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

double
PercentileEstimator::percentile(double p) const
{
    ECOLO_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    ECOLO_ASSERT(hi > lo && bins > 0, "bad histogram domain");
}

void
Histogram::add(double x)
{
    auto bin = static_cast<long>(std::floor((x - lo_) / width_));
    bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::binFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

void
OnlineStats::saveState(util::StateWriter &writer) const
{
    writer.tag("STAT");
    writer.u64(count_);
    writer.f64(mean_);
    writer.f64(m2_);
    writer.f64(sum_);
    writer.f64(min_);
    writer.f64(max_);
}

void
OnlineStats::loadState(util::StateReader &reader)
{
    reader.tag("STAT");
    count_ = static_cast<std::size_t>(reader.u64());
    mean_ = reader.f64();
    m2_ = reader.f64();
    sum_ = reader.f64();
    min_ = reader.f64();
    max_ = reader.f64();
}

void
Histogram::saveState(util::StateWriter &writer) const
{
    writer.tag("HIST");
    writer.f64(lo_);
    writer.f64(hi_);
    writer.f64(width_);
    writer.sizeVector(counts_);
    writer.u64(total_);
}

void
Histogram::loadState(util::StateReader &reader)
{
    reader.tag("HIST");
    const double lo = reader.f64();
    const double hi = reader.f64();
    const double width = reader.f64();
    auto counts = reader.sizeVector();
    const auto total = static_cast<std::size_t>(reader.u64());
    if (!reader.ok())
        return;
    if (counts.size() != counts_.size()) {
        reader.fail(ECOLO_ERROR(util::ErrorCode::StateError,
                                "histogram bin count mismatch: ",
                                counts.size(), " vs ", counts_.size()));
        return;
    }
    lo_ = lo;
    hi_ = hi;
    width_ = width;
    counts_ = std::move(counts);
    total_ = total;
}

} // namespace ecolo
