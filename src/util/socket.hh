/**
 * @file
 * Minimal loopback TCP primitives for the serving stack.
 *
 * edgetherm-serve speaks a length-prefixed binary protocol over local
 * TCP (the edge-site deployment model: the scheduler/RL client runs on
 * the same box or behind its own tunnel, so the transport stays a plain
 * IPv4 loopback socket -- no TLS, no name resolution). Everything
 * returns util::Result: a dropped peer is a recoverable per-connection
 * failure, never a process-wide one. Writes use MSG_NOSIGNAL so a
 * client that disconnects mid-response costs the server an error
 * return, not a SIGPIPE.
 */

#ifndef ECOLO_UTIL_SOCKET_HH
#define ECOLO_UTIL_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/result.hh"

namespace ecolo::util {

/** One connected stream socket; closes on destruction. */
class TcpConnection
{
  public:
    TcpConnection() = default;
    explicit TcpConnection(int fd) : fd_(fd) {}
    ~TcpConnection();

    TcpConnection(TcpConnection &&other) noexcept;
    TcpConnection &operator=(TcpConnection &&other) noexcept;
    TcpConnection(const TcpConnection &) = delete;
    TcpConnection &operator=(const TcpConnection &) = delete;

    bool valid() const { return fd_ >= 0; }

    /** Write exactly `size` bytes (retrying short writes/EINTR). */
    Result<void> writeAll(const void *data, std::size_t size);

    /**
     * Read exactly `size` bytes. A clean EOF before any byte fails with
     * message "connection closed"; EOF mid-record or a receive timeout
     * is reported as the I/O error it is.
     */
    Result<void> readAll(void *data, std::size_t size);

    /**
     * Bound every subsequent read; 0 restores "block forever". A stuck
     * peer then costs one handler thread for at most this long.
     */
    Result<void> setReceiveTimeout(int milliseconds);

    void close();

  private:
    int fd_ = -1;
};

/** A listening IPv4 loopback socket. */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener();

    TcpListener(TcpListener &&other) noexcept;
    TcpListener &operator=(TcpListener &&other) noexcept;
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind 127.0.0.1:`port` (0 picks an ephemeral port; port() tells
     * which) with SO_REUSEADDR and start listening.
     */
    static Result<TcpListener> listenLoopback(std::uint16_t port,
                                              int backlog = 64);

    bool valid() const { return fd_ >= 0; }
    std::uint16_t port() const { return port_; }

    /**
     * Wait up to `timeout_ms` for a connection. Returns the connection,
     * std::nullopt on timeout (so accept loops can poll a stop flag), or
     * an error once the listener is closed/broken.
     */
    Result<std::optional<TcpConnection>> acceptFor(int timeout_ms);

    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/** Connect to 127.0.0.1:`port`. */
Result<TcpConnection> connectLoopback(std::uint16_t port);

} // namespace ecolo::util

#endif // ECOLO_UTIL_SOCKET_HH
