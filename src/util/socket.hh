/**
 * @file
 * Minimal TCP primitives for the serving stack.
 *
 * edgetherm-serve speaks a length-prefixed binary protocol over TCP.
 * Historically the transport was loopback-only (client and daemon on
 * one edge box); the multi-node gateway added connectTo(), which
 * resolves a host name or address via getaddrinfo so the coordinator
 * can reach remote workers -- resolution failure is a typed IoError,
 * never an abort. Everything returns util::Result: a dropped peer is a
 * recoverable per-connection failure, never a process-wide one. Writes
 * use MSG_NOSIGNAL so a client that disconnects mid-response costs the
 * server an error return, not a SIGPIPE.
 *
 * For chaos testing, every connection consults an optional
 * SocketFaultInjector before each low-level send/recv chunk. The
 * injector can delay the op, clamp it short (forcing the partial-I/O
 * retry loops to do real work), or kill the connection (silent drop,
 * RST, or a truncated write). Injected failures surface as ordinary
 * ErrorCode::IoError results whose message starts with "chaos:"; with
 * no injector installed the I/O paths are byte-identical to before.
 */

#ifndef ECOLO_UTIL_SOCKET_HH
#define ECOLO_UTIL_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "util/result.hh"

namespace ecolo::util {

/** What a SocketFaultInjector tells one send/recv chunk to do. */
struct SocketFaultDecision
{
    enum class Action : std::uint8_t
    {
        None = 0,    //!< proceed normally
        Delay = 1,   //!< sleep delayMs, then proceed (slow-loris)
        ShortOp = 2, //!< clamp this chunk to maxBytes (partial I/O)
        Drop = 3,    //!< close the socket silently (peer sees EOF)
        Reset = 4,   //!< abortive close (peer sees ECONNRESET)
        Truncate = 5, //!< write maxBytes of the chunk, then close
    };

    Action action = Action::None;
    int delayMs = 0;           //!< Delay only
    std::size_t maxBytes = 0;  //!< ShortOp / Truncate clamp (>= 1)
};

/**
 * Chaos hook consulted once per low-level send/recv chunk. `want` is
 * the number of bytes the loop is about to move. Implementations must
 * be thread-safe: one injector is typically shared by every connection
 * in the process.
 */
class SocketFaultInjector
{
  public:
    virtual ~SocketFaultInjector() = default;
    virtual SocketFaultDecision onRead(std::size_t want) = 0;
    virtual SocketFaultDecision onWrite(std::size_t want) = 0;
};

/**
 * Install a process-wide injector picked up by every TcpConnection
 * created *afterwards* (accepted and connected alike); nullptr
 * uninstalls. Returns the previous injector.
 */
std::shared_ptr<SocketFaultInjector>
setGlobalSocketFaultInjector(std::shared_ptr<SocketFaultInjector> injector);

/** The currently installed process-wide injector (may be null). */
std::shared_ptr<SocketFaultInjector> globalSocketFaultInjector();

/** One connected stream socket; closes on destruction. */
class TcpConnection
{
  public:
    TcpConnection() = default;
    /** Wraps `fd` and adopts the process-wide fault injector, if any. */
    explicit TcpConnection(int fd);
    ~TcpConnection();

    TcpConnection(TcpConnection &&other) noexcept;
    TcpConnection &operator=(TcpConnection &&other) noexcept;
    TcpConnection(const TcpConnection &) = delete;
    TcpConnection &operator=(const TcpConnection &) = delete;

    bool valid() const { return fd_ >= 0; }

    /** The raw fd, for event loops (epoll registration only). */
    int nativeHandle() const { return fd_; }

    /** O_NONBLOCK on/off; tryRead/tryWrite then report wouldBlock. */
    Result<void> setNonBlocking(bool enabled);

    /** Outcome of one single-shot nonblocking read/write. */
    struct IoChunk
    {
        std::size_t bytes = 0;  //!< bytes actually moved
        bool eof = false;       //!< read only: orderly peer close
        bool wouldBlock = false; //!< no progress; wait for readiness
    };

    /**
     * Read at most `size` bytes without retrying (for readiness-driven
     * loops). Consults the fault injector like readAll; injected
     * drops/resets surface as IoError results.
     */
    Result<IoChunk> tryRead(void *data, std::size_t size);

    /** Write at most `size` bytes without retrying; see tryRead. */
    Result<IoChunk> tryWrite(const void *data, std::size_t size);

    /** Write exactly `size` bytes (retrying short writes/EINTR). */
    Result<void> writeAll(const void *data, std::size_t size);

    /**
     * Read exactly `size` bytes. A clean EOF before any byte fails with
     * message "connection closed"; EOF mid-record or a receive timeout
     * is reported as the I/O error it is.
     */
    Result<void> readAll(void *data, std::size_t size);

    /**
     * Bound every subsequent read; 0 restores "block forever". A stuck
     * peer then costs one handler thread for at most this long.
     */
    Result<void> setReceiveTimeout(int milliseconds);

    /** Override (or clear, with nullptr) this connection's injector. */
    void setFaultInjector(std::shared_ptr<SocketFaultInjector> injector);

    void close();

  private:
    /** Abortive close: SO_LINGER{on,0} then close -> peer sees RST. */
    void resetClose();

    int fd_ = -1;
    std::shared_ptr<SocketFaultInjector> injector_;
};

/** A listening IPv4 loopback socket. */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener();

    TcpListener(TcpListener &&other) noexcept;
    TcpListener &operator=(TcpListener &&other) noexcept;
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind 127.0.0.1:`port` (0 picks an ephemeral port; port() tells
     * which) with SO_REUSEADDR and start listening.
     */
    static Result<TcpListener> listenLoopback(std::uint16_t port,
                                              int backlog = 64);

    bool valid() const { return fd_ >= 0; }
    std::uint16_t port() const { return port_; }

    /** The raw fd, for event loops (epoll registration only). */
    int nativeHandle() const { return fd_; }

    /**
     * Wait up to `timeout_ms` for a connection. Returns the connection,
     * std::nullopt on timeout (so accept loops can poll a stop flag), or
     * an error once the listener is closed/broken.
     */
    Result<std::optional<TcpConnection>> acceptFor(int timeout_ms);

    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/** Connect to 127.0.0.1:`port`. */
Result<TcpConnection> connectLoopback(std::uint16_t port);

/**
 * Connect to `host`:`port`, resolving `host` (name, IPv4, or IPv6
 * literal) via getaddrinfo and trying each candidate address in order.
 * Resolution failure and exhausted candidates are typed IoErrors that
 * name the host, so a mistyped --host surfaces as a recoverable,
 * retryable transport error.
 */
Result<TcpConnection> connectTo(const std::string &host,
                                std::uint16_t port);

} // namespace ecolo::util

#endif // ECOLO_UTIL_SOCKET_HH
