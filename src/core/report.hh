/**
 * @file
 * Markdown campaign reports: turn one simulated run into a human-readable
 * incident/assessment document (what the CLI's --report flag emits).
 *
 * The report contains the configuration summary, the headline attack
 * metrics, the inlet-temperature distribution, per-tenant performance
 * damage, the cost estimate for both sides, and the closed-form threat
 * assessment for the site.
 */

#ifndef ECOLO_CORE_REPORT_HH
#define ECOLO_CORE_REPORT_HH

#include <iosfwd>
#include <string>

#include "core/config.hh"
#include "core/metrics.hh"

namespace ecolo::core {

/** Inputs the report is rendered from. */
struct ReportInputs
{
    std::string policyName;
    double policyParameter = 0.0;
    double simulatedDays = 0.0;
};

/** Render the full markdown report. */
void writeMarkdownReport(std::ostream &os, const SimulationConfig &config,
                         const SimulationMetrics &metrics,
                         const ReportInputs &inputs);

/** Convenience file wrapper (ECOLO_FATAL on I/O failure). */
void saveMarkdownReport(const std::string &path,
                        const SimulationConfig &config,
                        const SimulationMetrics &metrics,
                        const ReportInputs &inputs);

} // namespace ecolo::core

#endif // ECOLO_CORE_REPORT_HH
