#include "core/report.hh"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "core/cost.hh"
#include "core/threat_assessment.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace ecolo::core {

namespace {

/** An ASCII bar for the histogram rows. */
std::string
bar(double fraction, int width = 40)
{
    const int filled = static_cast<int>(fraction * width + 0.5);
    return std::string(static_cast<std::size_t>(std::max(filled, 0)), '#');
}

} // namespace

void
writeMarkdownReport(std::ostream &os, const SimulationConfig &config,
                    const SimulationMetrics &metrics,
                    const ReportInputs &inputs)
{
    os << "# EdgeTherm campaign report\n\n";
    os << "Attacker policy: **" << inputs.policyName << "** (parameter "
       << fixed(inputs.policyParameter, 2) << "), simulated "
       << fixed(inputs.simulatedDays, 1) << " days, seed " << config.seed
       << ".\n\n";

    os << "## Site\n\n"
       << "| parameter | value |\n|---|---|\n"
       << "| capacity | " << fixed(config.capacity.value(), 1)
       << " kW |\n"
       << "| servers (attacker-owned) | " << config.numServers() << " ("
       << config.attackerNumServers << ") |\n"
       << "| attacker subscription | "
       << fixed(config.attackerSubscription.value(), 2) << " kW |\n"
       << "| battery | " << fixed(config.batterySpec.capacity.value(), 2)
       << " kWh, " << fixed(config.attackLoad.value(), 1)
       << " kW attack load |\n"
       << "| supply set point | "
       << fixed(config.cooling.supplySetPoint.value(), 1) << " C |\n\n";

    os << "## Outcome\n\n"
       << "| metric | value |\n|---|---|\n"
       << "| attack time | " << fixed(metrics.attackHoursPerDay(), 2)
       << " h/day |\n"
       << "| thermal emergencies | " << metrics.emergencies() << " |\n"
       << "| emergency time | "
       << fixed(100.0 * metrics.emergencyFraction(), 2) << " % ("
       << fixed(metrics.emergencyHoursPerYear(), 0) << " h/yr) |\n"
       << "| outages | " << metrics.outages() << " ("
       << metrics.outageMinutes() << " min) |\n"
       << "| mean inlet rise | " << fixed(metrics.inletRise().mean(), 2)
       << " C |\n"
       << "| hottest inlet | " << fixed(metrics.maxInlet().max(), 1)
       << " C |\n";
    if (metrics.emergencyPerf().count() > 0) {
        os << "| norm. 95p latency in emergencies | "
           << fixed(metrics.emergencyPerf().mean(), 2) << "x |\n";
    }
    os << "\n";

    // Per-tenant damage.
    const auto &per_tenant = metrics.tenantEmergencyPerf();
    if (!per_tenant.empty()) {
        os << "## Per-tenant damage\n\n"
           << "| tenant | degraded minutes | mean norm. 95p |\n"
           << "|---|---|---|\n";
        for (std::size_t k = 0; k < per_tenant.size(); ++k) {
            os << "| tenant-" << (k + 1) << " | "
               << per_tenant[k].count() << " | "
               << (per_tenant[k].count()
                       ? fixed(per_tenant[k].mean(), 2)
                       : std::string("-"))
               << " |\n";
        }
        os << "\n";
    }

    // Temperature distribution (only rows with mass).
    os << "## Inlet temperature distribution\n\n```\n";
    const auto &hist = metrics.inletHistogram();
    double max_fraction = 0.0;
    for (std::size_t b = 0; b < hist.bins(); ++b)
        max_fraction = std::max(max_fraction, hist.binFraction(b));
    for (std::size_t b = 0; b < hist.bins(); ++b) {
        const double fraction = hist.binFraction(b);
        if (fraction < 1e-6)
            continue;
        os << fixed(hist.binCenter(b), 1) << " C  "
           << bar(max_fraction > 0 ? fraction / max_fraction : 0.0)
           << "  " << fixed(100.0 * fraction, 2) << "%\n";
    }
    os << "```\n\n";

    // Costs.
    const CostModel cost;
    const auto attacker = cost.attackerAnnualCost(config, metrics);
    const auto benign = cost.benignAnnualCost(config, metrics);
    os << "## Annualized cost estimate\n\n"
       << "| side | $/yr |\n|---|---|\n"
       << "| attacker (subscription + energy + servers) | "
       << fixed(attacker.total(), 0) << " |\n"
       << "| benign tenants (latency + outage damage) | "
       << fixed(benign.total(), 0) << " |\n\n";

    // Threat assessment.
    os << "## Site threat assessment (closed form)\n\n```\n";
    printAssessment(os, config, assessThreat(config));
    os << "```\n";
}

void
saveMarkdownReport(const std::string &path, const SimulationConfig &config,
                   const SimulationMetrics &metrics,
                   const ReportInputs &inputs)
{
    std::ofstream out(path);
    if (!out)
        ECOLO_FATAL("cannot open report file for writing: ", path);
    writeMarkdownReport(out, config, metrics, inputs);
}

} // namespace ecolo::core
