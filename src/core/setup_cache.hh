/**
 * @file
 * SetupCache: shared constructor-time artifacts for campaign members.
 *
 * Profiling shows a Simulation costs ~1 s to construct -- year-long
 * trace generation, the 60-iteration mean-power bisection over three
 * 525600-sample traces, the analytic heat matrix, and its temporal
 * (Prony) factorization -- while the steady slot loop costs ~2 us/slot.
 * Sweep campaigns construct dozens of members that differ only in
 * policy or one parameter, so almost all of that setup is identical
 * across members. This cache shares the four expensive artifacts,
 * keyed by an FNV-1a hash of exactly the config fields each depends
 * on; every cached value is a deterministic function of its key
 * fields, so cache hits are bit-identical to recomputation.
 *
 * Thread safety: lookups take a mutex; values are immutable once
 * published (shared_ptr<const>). On a miss the compute callback runs
 * *outside* the lock -- concurrent misses on one key may compute
 * twice, but both results are identical and the loser is discarded,
 * so constructor parallelism (util::parallelFor over campaign
 * members) is never serialized behind a 1-second trace generation.
 * The trace-set store is LRU-bounded (entries are ~13 MB); the
 * matrix/factorization/scale stores are tiny and unbounded.
 */

#ifndef ECOLO_CORE_SETUP_CACHE_HH
#define ECOLO_CORE_SETUP_CACHE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/config.hh"
#include "thermal/factorization.hh"
#include "thermal/heat_matrix.hh"
#include "trace/utilization_trace.hh"

namespace ecolo::core {

class SetupCache
{
  public:
    /** The generated (unscaled) benign traces, one per tenant. */
    using TraceSet = std::vector<trace::UtilizationTrace>;

    /** Per-artifact hit/miss counters (testing / telemetry). */
    struct Counters
    {
        std::uint64_t traceHits = 0, traceMisses = 0;
        std::uint64_t scaleHits = 0, scaleMisses = 0;
        std::uint64_t matrixHits = 0, matrixMisses = 0;
        std::uint64_t factorizationHits = 0, factorizationMisses = 0;
    };

    /** Most trace sets kept alive at once (each is ~13 MB; campaigns
     * sharing one workload only ever touch one key). */
    static constexpr std::size_t kMaxTraceSets = 4;

    std::shared_ptr<const TraceSet>
    traceSet(std::uint64_t key, const std::function<TraceSet()> &make);

    double scaleFactor(std::uint64_t key,
                       const std::function<double()> &make);

    std::shared_ptr<const thermal::HeatDistributionMatrix>
    matrix(std::uint64_t key,
           const std::function<thermal::HeatDistributionMatrix()> &make);

    std::shared_ptr<const thermal::TemporalFactorization>
    factorization(
        std::uint64_t key,
        const std::function<thermal::TemporalFactorization()> &make);

    Counters counters() const;

    // ---- Key derivation -------------------------------------------------
    // Each key hashes exactly the config fields the artifact is a
    // function of (doubles by bit pattern), so two configs collide on a
    // key only when the artifact is provably identical. Callers must
    // not use traceSetKey/scaleFactorKey when externalBenignTraces is
    // set (the traces are not derivable from the config).

    /** Generated benign traces: seed, trace kind, tenant count, and the
     * active generator's shape parameters. */
    static std::uint64_t traceSetKey(const SimulationConfig &config);

    /** Mean-power bisection: the trace key plus every input of the
     * power model and the target (server spec, tenant/server counts,
     * capacity, average utilization, attacker standby draw). */
    static std::uint64_t scaleFactorKey(const SimulationConfig &config);

    /** Analytic heat matrix: layout, analytic params, horizon. */
    static std::uint64_t matrixKey(const SimulationConfig &config);

    /** Temporal factorization: the matrix key plus the factorization
     * options (the fit does not depend on the kernel mode). */
    static std::uint64_t factorizationKey(const SimulationConfig &config);

  private:
    mutable std::mutex mutex_;
    Counters counters_;

    std::unordered_map<std::uint64_t, std::shared_ptr<const TraceSet>>
        traceSets_;
    std::deque<std::uint64_t> traceOrder_; //!< LRU, front = oldest
    std::unordered_map<std::uint64_t, double> scaleFactors_;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const thermal::HeatDistributionMatrix>>
        matrices_;
    std::unordered_map<
        std::uint64_t,
        std::shared_ptr<const thermal::TemporalFactorization>>
        factorizations_;
};

} // namespace ecolo::core

#endif // ECOLO_CORE_SETUP_CACHE_HH
