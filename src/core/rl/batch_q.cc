#include "core/rl/batch_q.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::core {

namespace {

double
scheduleDelta(long days, const LearnerParams &params)
{
    const double raw =
        1.0 / std::pow(static_cast<double>(std::max(days, 1L)),
                       params.learningRateExponent);
    return std::max(raw, params.minLearningRate);
}

double
scheduleEpsilon(long days, const LearnerParams &params)
{
    const double half_lives = static_cast<double>(days - 1) /
                              std::max(params.epsilonHalfLifeDays, 1e-9);
    return params.epsilon0 * std::pow(0.5, half_lives);
}

} // namespace

BatchQLearning::BatchQLearning(std::size_t num_states,
                               std::size_t num_actions,
                               PostStateFn post_state, LearnerParams params)
    : numStates_(num_states), numActions_(num_actions),
      postState_(std::move(post_state)), params_(params),
      q_(num_states * num_actions, 0.0), v_(num_states, 0.0),
      delta_(scheduleDelta(1, params)),
      epsilon_(scheduleEpsilon(1, params))
{
    ECOLO_ASSERT(num_states > 0 && num_actions > 0, "empty learner tables");
    ECOLO_ASSERT(postState_ != nullptr, "post-state function required");
    ECOLO_ASSERT(params_.gamma > 0.0 && params_.gamma < 1.0,
                 "discount factor out of (0,1): ", params_.gamma);
}

double
BatchQLearning::actionScore(std::size_t state, int action) const
{
    const std::size_t post = postState_(state, action);
    ECOLO_ASSERT(post < numStates_, "post state out of range: ", post);
    return qValue(state, action) + params_.gamma * v_[post];
}

int
BatchQLearning::greedyAction(std::size_t state) const
{
    ECOLO_ASSERT(state < numStates_, "state out of range: ", state);
    int best = 0;
    double best_score = actionScore(state, 0);
    for (int a = 1; a < static_cast<int>(numActions_); ++a) {
        const double score = actionScore(state, a);
        if (score > best_score) {
            best_score = score;
            best = a;
        }
    }
    return best;
}

int
BatchQLearning::selectAction(std::size_t state, Rng &rng, bool explore) const
{
    if (explore && rng.bernoulli(epsilon_))
        return static_cast<int>(rng.uniformInt(numActions_));
    return greedyAction(state);
}

void
BatchQLearning::update(std::size_t state, int action, double reward,
                       std::size_t next_state)
{
    ECOLO_ASSERT(state < numStates_ && next_state < numStates_,
                 "state out of range in update");
    ECOLO_ASSERT(action >= 0 && action < static_cast<int>(numActions_),
                 "action out of range: ", action);

    // Eqn. (5): the immediate-reward table.
    double &q = q_[state * numActions_ + action];
    q = (1.0 - delta_) * q + delta_ * reward;

    // Eqn. (6): value of the *next* state under the current tables.
    double c_next = actionScore(next_state, 0);
    for (int a = 1; a < static_cast<int>(numActions_); ++a)
        c_next = std::max(c_next, actionScore(next_state, a));

    // Eqn. (7): propagate to the post state we just came through.
    const std::size_t post = postState_(state, action);
    ECOLO_ASSERT(post < numStates_, "post state out of range: ", post);
    v_[post] = (1.0 - delta_) * v_[post] + delta_ * c_next;
}

void
BatchQLearning::advanceDay()
{
    ++days_;
    delta_ = scheduleDelta(days_, params_);
    epsilon_ = scheduleEpsilon(days_, params_);
}

double
BatchQLearning::qValue(std::size_t state, int action) const
{
    ECOLO_ASSERT(state < numStates_ &&
                 action >= 0 && action < static_cast<int>(numActions_),
                 "q table index out of range");
    return q_[state * numActions_ + action];
}

double
BatchQLearning::postValue(std::size_t post_state) const
{
    ECOLO_ASSERT(post_state < numStates_, "post state out of range");
    return v_[post_state];
}

void
BatchQLearning::setQValue(std::size_t state, int action, double value)
{
    ECOLO_ASSERT(state < numStates_ &&
                 action >= 0 && action < static_cast<int>(numActions_),
                 "q table index out of range");
    q_[state * numActions_ + action] = value;
}

void
BatchQLearning::setPostValue(std::size_t post_state, double value)
{
    ECOLO_ASSERT(post_state < numStates_, "post state out of range");
    v_[post_state] = value;
}

void
BatchQLearning::save(std::ostream &os) const
{
    os << "batchq v1 " << numStates_ << ' ' << numActions_ << ' ' << days_
       << '\n';
    os.precision(17);
    for (double q : q_)
        os << q << '\n';
    for (double v : v_)
        os << v << '\n';
}

void
BatchQLearning::load(std::istream &is)
{
    std::string tag, version;
    std::size_t states = 0, actions = 0;
    long days = 0;
    is >> tag >> version >> states >> actions >> days;
    if (!is || tag != "batchq" || version != "v1")
        ECOLO_FATAL("not a batch-Q table file");
    if (states != numStates_ || actions != numActions_) {
        ECOLO_FATAL("table dimensions mismatch: file ", states, "x",
                    actions, ", learner ", numStates_, "x", numActions_);
    }
    for (double &q : q_) {
        if (!(is >> q))
            ECOLO_FATAL("truncated batch-Q table file (Q)");
    }
    for (double &v : v_) {
        if (!(is >> v))
            ECOLO_FATAL("truncated batch-Q table file (V)");
    }
    days_ = std::max(days, 1L);
    delta_ = scheduleDelta(days_, params_);
    epsilon_ = scheduleEpsilon(days_, params_);
}

VanillaQLearning::VanillaQLearning(std::size_t num_states,
                                   std::size_t num_actions,
                                   LearnerParams params)
    : numStates_(num_states), numActions_(num_actions), params_(params),
      q_(num_states * num_actions, 0.0),
      delta_(scheduleDelta(1, params)),
      epsilon_(scheduleEpsilon(1, params))
{
    ECOLO_ASSERT(num_states > 0 && num_actions > 0, "empty learner tables");
}

int
VanillaQLearning::greedyAction(std::size_t state) const
{
    ECOLO_ASSERT(state < numStates_, "state out of range");
    int best = 0;
    double best_q = q_[state * numActions_];
    for (int a = 1; a < static_cast<int>(numActions_); ++a) {
        const double q = q_[state * numActions_ + a];
        if (q > best_q) {
            best_q = q;
            best = a;
        }
    }
    return best;
}

int
VanillaQLearning::selectAction(std::size_t state, Rng &rng,
                               bool explore) const
{
    if (explore && rng.bernoulli(epsilon_))
        return static_cast<int>(rng.uniformInt(numActions_));
    return greedyAction(state);
}

void
VanillaQLearning::update(std::size_t state, int action, double reward,
                         std::size_t next_state)
{
    ECOLO_ASSERT(state < numStates_ && next_state < numStates_,
                 "state out of range in update");
    double best_next = q_[next_state * numActions_];
    for (int a = 1; a < static_cast<int>(numActions_); ++a)
        best_next = std::max(best_next, q_[next_state * numActions_ + a]);
    double &q = q_[state * numActions_ + action];
    q = (1.0 - delta_) * q +
        delta_ * (reward + params_.gamma * best_next);
}

void
VanillaQLearning::advanceDay()
{
    ++days_;
    delta_ = scheduleDelta(days_, params_);
    epsilon_ = scheduleEpsilon(days_, params_);
}

double
VanillaQLearning::qValue(std::size_t state, int action) const
{
    ECOLO_ASSERT(state < numStates_ &&
                 action >= 0 && action < static_cast<int>(numActions_),
                 "q table index out of range");
    return q_[state * numActions_ + action];
}

} // namespace ecolo::core
