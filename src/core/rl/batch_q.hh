/**
 * @file
 * Batch Q-learning with post-states (Section IV-B, Eqns. (3)-(7)).
 *
 * The attacker's battery transition is deterministic given its action while
 * the benign-load transition is exogenous. Factoring the value function
 * through the *post state* (battery updated, load not yet observed) lets
 * the learner share experience across all load transitions from the same
 * post state, which is what makes the paper's policy converge within weeks
 * of simulated time. Three tables are maintained:
 *
 *   Q(s, a)  state-action value          (Eqn. 5 update)
 *   V(s~)    post-state value            (Eqn. 7 update)
 *   C(s)     state value                 (Eqn. 6, derived)
 *
 * and actions are selected by argmax_a [ Q(s,a) + gamma * V(s~(s,a)) ]
 * (Eqn. 3), epsilon-greedily during learning.
 *
 * A textbook one-table Q-learner (VanillaQLearning) is included for the
 * ablation benchmark.
 */

#ifndef ECOLO_CORE_RL_BATCH_Q_HH
#define ECOLO_CORE_RL_BATCH_Q_HH

#include <cstddef>
#include <iosfwd>
#include <functional>
#include <vector>

#include "util/rng.hh"

namespace ecolo::core {

/** Maps (state, action) to the deterministic post state. */
using PostStateFn = std::function<std::size_t(std::size_t, int)>;

/** Shared learner tuning. */
struct LearnerParams
{
    double gamma = 0.99;             //!< discount factor (Table I)
    double learningRateExponent = 0.85; //!< delta(t) = 1 / t^0.85
    double epsilon0 = 0.15;          //!< initial exploration rate
    double epsilonHalfLifeDays = 10; //!< exploration decay half-life
    double minLearningRate = 0.02;   //!< floor so late days still adapt
};

/** The paper's batch (post-state) Q-learner. */
class BatchQLearning
{
  public:
    BatchQLearning(std::size_t num_states, std::size_t num_actions,
                   PostStateFn post_state, LearnerParams params = {});

    std::size_t numStates() const { return numStates_; }
    std::size_t numActions() const { return numActions_; }

    /**
     * Epsilon-greedy action selection by Eqn. (3). Pass explore = false
     * for pure exploitation (policy dumps, evaluation).
     */
    int selectAction(std::size_t state, Rng &rng, bool explore = true) const;

    /** Greedy action (no exploration). */
    int greedyAction(std::size_t state) const;

    /**
     * One learning step after observing the transition
     * (s_k, a_k, r_k, s_{k+1}); Eqns. (5)-(7).
     */
    void update(std::size_t state, int action, double reward,
                std::size_t next_state);

    /** Advance the learning-rate / exploration schedules by one day. */
    void advanceDay();

    double learningRate() const { return delta_; }
    double epsilon() const { return epsilon_; }
    long daysElapsed() const { return days_; }

    double qValue(std::size_t state, int action) const;
    double postValue(std::size_t post_state) const;
    /** Eqn. (3)'s action score: Q(s,a) + gamma * V(post(s,a)). */
    double actionScore(std::size_t state, int action) const;

    /** Direct table initialization (warm starts). */
    void setQValue(std::size_t state, int action, double value);
    void setPostValue(std::size_t post_state, double value);

    /**
     * Serialize / restore the learned tables and schedule position, so a
     * policy can be trained once and replayed (text format: header with
     * dimensions, then the Q and V tables).
     */
    void save(std::ostream &os) const;
    void load(std::istream &is);

  private:
    std::size_t numStates_;
    std::size_t numActions_;
    PostStateFn postState_;
    LearnerParams params_;
    std::vector<double> q_; //!< [state][action]
    std::vector<double> v_; //!< [post state]
    double delta_;
    double epsilon_;
    long days_ = 1;
};

/** Standard one-table Q-learning (ablation baseline). */
class VanillaQLearning
{
  public:
    VanillaQLearning(std::size_t num_states, std::size_t num_actions,
                     LearnerParams params = {});

    int selectAction(std::size_t state, Rng &rng, bool explore = true) const;
    int greedyAction(std::size_t state) const;

    void update(std::size_t state, int action, double reward,
                std::size_t next_state);

    void advanceDay();

    double qValue(std::size_t state, int action) const;
    double learningRate() const { return delta_; }

  private:
    std::size_t numStates_;
    std::size_t numActions_;
    LearnerParams params_;
    std::vector<double> q_;
    double delta_;
    double epsilon_;
    long days_ = 1;
};

} // namespace ecolo::core

#endif // ECOLO_CORE_RL_BATCH_Q_HH
