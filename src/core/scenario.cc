#include "core/scenario.hh"

#include <ostream>

#include "util/logging.hh"
#include "util/table.hh"

namespace ecolo::core {

util::Result<void>
tryApplyScenario(const KeyValueConfig &kv, SimulationConfig &config,
                 bool allow_unknown)
{
    auto dbl = [&](const char *key, double &target) -> util::Result<void> {
        const auto v = kv.tryGetDouble(key);
        if (!v.ok())
            return v.error();
        if (v.value())
            target = *v.value();
        return {};
    };
    auto kw = [&](const char *key,
                  Kilowatts &target) -> util::Result<void> {
        const auto v = kv.tryGetDouble(key);
        if (!v.ok())
            return v.error();
        if (v.value())
            target = Kilowatts(*v.value());
        return {};
    };
    auto kwh = [&](const char *key,
                   KilowattHours &target) -> util::Result<void> {
        const auto v = kv.tryGetDouble(key);
        if (!v.ok())
            return v.error();
        if (v.value())
            target = KilowattHours(*v.value());
        return {};
    };
    auto deg = [&](const char *key, Celsius &target) -> util::Result<void> {
        const auto v = kv.tryGetDouble(key);
        if (!v.ok())
            return v.error();
        if (v.value())
            target = Celsius(*v.value());
        return {};
    };
    auto mins = [&](const char *key,
                    MinuteIndex &target) -> util::Result<void> {
        const auto v = kv.tryGetInt(key);
        if (!v.ok())
            return v.error();
        if (v.value())
            target = *v.value();
        return {};
    };

    ECOLO_TRY_VOID(kw("capacityKw", config.capacity));
    ECOLO_TRY_VOID(kw("cooling.capacityKw", config.cooling.capacity));
    ECOLO_TRY_VOID(dbl("averageUtilization", config.averageUtilization));
    {
        const auto v = kv.tryGetInt("seed");
        if (!v.ok())
            return v.error();
        if (v.value())
            config.seed = static_cast<std::uint64_t>(*v.value());
    }
    if (const auto v = kv.getString("traceKind")) {
        if (*v == "diurnal")
            config.traceKind = TraceKind::Diurnal;
        else if (*v == "google")
            config.traceKind = TraceKind::GoogleStyle;
        else if (*v == "request")
            config.traceKind = TraceKind::RequestLevel;
        else
            return ECOLO_ERROR(util::ErrorCode::ParseError,
                               kv.locate("traceKind"),
                               ": unknown traceKind '", *v,
                               "' (expected diurnal|google|request)");
    }

    {
        const auto v = kv.tryGetInt("attacker.servers");
        if (!v.ok())
            return v.error();
        if (v.value())
            config.attackerNumServers =
                static_cast<std::size_t>(*v.value());
    }
    ECOLO_TRY_VOID(kw("attacker.subscriptionKw",
                      config.attackerSubscription));
    ECOLO_TRY_VOID(kw("attacker.attackLoadKw", config.attackLoad));
    ECOLO_TRY_VOID(dbl("attacker.standbyUtilization",
                       config.attackerStandbyUtilization));

    ECOLO_TRY_VOID(kwh("battery.capacityKwh",
                       config.batterySpec.capacity));
    ECOLO_TRY_VOID(kw("battery.chargeRateKw",
                      config.batterySpec.maxChargeRate));
    ECOLO_TRY_VOID(kw("battery.dischargeRateKw",
                      config.batterySpec.maxDischargeRate));
    ECOLO_TRY_VOID(dbl("battery.chargeEfficiency",
                       config.batterySpec.chargeEfficiency));
    ECOLO_TRY_VOID(dbl("battery.dischargeEfficiency",
                       config.batterySpec.dischargeEfficiency));

    ECOLO_TRY_VOID(deg("cooling.setPointC",
                       config.cooling.supplySetPoint));
    ECOLO_TRY_VOID(dbl("cooling.airVolumeM3", config.cooling.airVolume));
    ECOLO_TRY_VOID(dbl("cooling.deratingPerKelvin",
                       config.cooling.capacityDeratingPerKelvin));

    ECOLO_TRY_VOID(deg("protocol.emergencyThresholdC",
                       config.emergencyThreshold));
    ECOLO_TRY_VOID(mins("protocol.sustainMinutes",
                        config.emergencySustainMinutes));
    ECOLO_TRY_VOID(mins("protocol.cappingMinutes", config.cappingMinutes));
    ECOLO_TRY_VOID(kw("protocol.perServerCapKw", config.perServerCap));
    ECOLO_TRY_VOID(deg("protocol.shutdownThresholdC",
                       config.shutdownThreshold));
    ECOLO_TRY_VOID(mins("protocol.outageRestartMinutes",
                        config.outageRestartMinutes));

    ECOLO_TRY_VOID(dbl("sidechannel.extraRelativeNoise",
                       config.sideChannel.extraRelativeNoise));
    ECOLO_TRY_VOID(dbl("sidechannel.jammingNoiseVolts",
                       config.sideChannel.jammingNoiseVolts));

    ECOLO_TRY_VOID(dbl("rl.rewardMargin",
                       config.foresightedRewardMargin));

    if (const auto v = kv.getString("thermal.kernel")) {
        thermal::KernelMode mode;
        if (!thermal::parseKernelMode(*v, mode)) {
            return ECOLO_ERROR(
                util::ErrorCode::ParseError, kv.locate("thermal.kernel"),
                ": unknown thermal.kernel '", *v,
                "' (expected auto|dense|factorized|streaming)");
        }
        config.thermalMode = mode;
    }
    ECOLO_TRY_VOID(dbl("thermal.streamingTolerance",
                       config.factorization.streamingTolerance));

    ECOLO_TRY_VOID(dbl("trace.baseUtilization",
                       config.diurnalParams.baseUtilization));
    ECOLO_TRY_VOID(dbl("trace.diurnalAmplitude",
                       config.diurnalParams.diurnalAmplitude));
    ECOLO_TRY_VOID(dbl("trace.peakHour", config.diurnalParams.peakHour));

    // Fault-injection timeline. Consumes every fault.* key, so it must
    // run before the unknown-key sweep below.
    {
        auto schedule = faults::FaultSchedule::fromKeyValue(kv);
        if (!schedule.ok())
            return schedule.error();
        config.faultSchedule = schedule.take();
    }

    if (!allow_unknown) {
        const auto unknown = kv.unconsumedKeys();
        if (!unknown.empty()) {
            std::string joined;
            for (const auto &key : unknown)
                joined += (joined.empty() ? "" : ", ") + key;
            return ECOLO_ERROR(util::ErrorCode::ParseError,
                               "unknown scenario key(s) in ",
                               kv.sourceName(), ": ", joined);
        }
    }
    return config.validated();
}

util::Result<SimulationConfig>
tryLoadScenarioFile(const std::string &path)
{
    SimulationConfig config = SimulationConfig::paperDefault();
    auto kv = KeyValueConfig::tryParseFile(path);
    if (!kv.ok())
        return kv.error();
    ECOLO_TRY_VOID(tryApplyScenario(kv.value(), config));
    return config;
}

void
applyScenario(const KeyValueConfig &kv, SimulationConfig &config,
              bool allow_unknown)
{
    if (const auto result = tryApplyScenario(kv, config, allow_unknown);
        !result.ok())
        ECOLO_FATAL(result.error().message);
}

SimulationConfig
loadScenarioFile(const std::string &path)
{
    auto result = tryLoadScenarioFile(path);
    if (!result.ok())
        ECOLO_FATAL(result.error().message);
    return result.take();
}

void
describeConfig(std::ostream &os, const SimulationConfig &config)
{
    TextTable table({"parameter", "value"});
    table.addRow("capacity (kW)", fixed(config.capacity.value(), 2));
    table.addRow("benign tenants", config.numBenignTenants);
    table.addRow("servers (total / attacker)",
                 std::to_string(config.numServers()) + " / " +
                     std::to_string(config.attackerNumServers));
    table.addRow("attacker subscription (kW)",
                 fixed(config.attackerSubscription.value(), 2));
    table.addRow("attack load from battery (kW)",
                 fixed(config.attackLoad.value(), 2));
    table.addRow("battery (kWh / charge kW / discharge kW)",
                 fixed(config.batterySpec.capacity.value(), 2) + " / " +
                     fixed(config.batterySpec.maxChargeRate.value(), 2) +
                     " / " +
                     fixed(config.batterySpec.maxDischargeRate.value(),
                           2));
    table.addRow("cooling capacity (kW)",
                 fixed(config.cooling.capacity.value(), 2));
    table.addRow("supply set point (C)",
                 fixed(config.cooling.supplySetPoint.value(), 1));
    table.addRow("emergency threshold (C, sustained min)",
                 fixed(config.emergencyThreshold.value(), 1) + ", " +
                     std::to_string(config.emergencySustainMinutes));
    table.addRow("per-server cap (kW) / capping minutes",
                 fixed(config.perServerCap.value(), 2) + " / " +
                     std::to_string(config.cappingMinutes));
    table.addRow("shutdown threshold (C)",
                 fixed(config.shutdownThreshold.value(), 1));
    table.addRow("average utilization",
                 fixed(config.averageUtilization, 2));
    table.addRow("trace",
                 config.traceKind == TraceKind::Diurnal ? "diurnal"
                 : config.traceKind == TraceKind::GoogleStyle
                     ? "google-style"
                     : "request-level");
    table.addRow("thermal kernel",
                 thermal::kernelModeName(config.thermalMode));
    table.addRow("seed", config.seed);
    table.print(os);
}

} // namespace ecolo::core
