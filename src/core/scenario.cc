#include "core/scenario.hh"

#include <ostream>

#include "util/logging.hh"
#include "util/table.hh"

namespace ecolo::core {

void
applyScenario(const KeyValueConfig &kv, SimulationConfig &config,
              bool allow_unknown)
{
    auto dbl = [&](const char *key, double &target) {
        if (const auto v = kv.getDouble(key))
            target = *v;
    };
    auto kw = [&](const char *key, Kilowatts &target) {
        if (const auto v = kv.getDouble(key))
            target = Kilowatts(*v);
    };
    auto kwh = [&](const char *key, KilowattHours &target) {
        if (const auto v = kv.getDouble(key))
            target = KilowattHours(*v);
    };
    auto deg = [&](const char *key, Celsius &target) {
        if (const auto v = kv.getDouble(key))
            target = Celsius(*v);
    };
    auto mins = [&](const char *key, MinuteIndex &target) {
        if (const auto v = kv.getInt(key))
            target = *v;
    };

    kw("capacityKw", config.capacity);
    kw("cooling.capacityKw", config.cooling.capacity);
    dbl("averageUtilization", config.averageUtilization);
    if (const auto v = kv.getInt("seed"))
        config.seed = static_cast<std::uint64_t>(*v);
    if (const auto v = kv.getString("traceKind")) {
        if (*v == "diurnal")
            config.traceKind = TraceKind::Diurnal;
        else if (*v == "google")
            config.traceKind = TraceKind::GoogleStyle;
        else if (*v == "request")
            config.traceKind = TraceKind::RequestLevel;
        else
            ECOLO_FATAL("unknown traceKind '", *v,
                        "' (expected diurnal|google|request)");
    }

    if (const auto v = kv.getInt("attacker.servers"))
        config.attackerNumServers = static_cast<std::size_t>(*v);
    kw("attacker.subscriptionKw", config.attackerSubscription);
    kw("attacker.attackLoadKw", config.attackLoad);
    dbl("attacker.standbyUtilization",
        config.attackerStandbyUtilization);

    kwh("battery.capacityKwh", config.batterySpec.capacity);
    kw("battery.chargeRateKw", config.batterySpec.maxChargeRate);
    kw("battery.dischargeRateKw", config.batterySpec.maxDischargeRate);
    dbl("battery.chargeEfficiency", config.batterySpec.chargeEfficiency);
    dbl("battery.dischargeEfficiency",
        config.batterySpec.dischargeEfficiency);

    deg("cooling.setPointC", config.cooling.supplySetPoint);
    dbl("cooling.airVolumeM3", config.cooling.airVolume);
    dbl("cooling.deratingPerKelvin",
        config.cooling.capacityDeratingPerKelvin);

    deg("protocol.emergencyThresholdC", config.emergencyThreshold);
    mins("protocol.sustainMinutes", config.emergencySustainMinutes);
    mins("protocol.cappingMinutes", config.cappingMinutes);
    kw("protocol.perServerCapKw", config.perServerCap);
    deg("protocol.shutdownThresholdC", config.shutdownThreshold);
    mins("protocol.outageRestartMinutes", config.outageRestartMinutes);

    dbl("sidechannel.extraRelativeNoise",
        config.sideChannel.extraRelativeNoise);
    dbl("sidechannel.jammingNoiseVolts",
        config.sideChannel.jammingNoiseVolts);

    dbl("rl.rewardMargin", config.foresightedRewardMargin);

    dbl("trace.baseUtilization", config.diurnalParams.baseUtilization);
    dbl("trace.diurnalAmplitude", config.diurnalParams.diurnalAmplitude);
    dbl("trace.peakHour", config.diurnalParams.peakHour);

    if (!allow_unknown) {
        const auto unknown = kv.unconsumedKeys();
        if (!unknown.empty()) {
            std::string joined;
            for (const auto &key : unknown)
                joined += (joined.empty() ? "" : ", ") + key;
            ECOLO_FATAL("unknown scenario key(s): ", joined);
        }
    }
    config.validate();
}

SimulationConfig
loadScenarioFile(const std::string &path)
{
    SimulationConfig config = SimulationConfig::paperDefault();
    const auto kv = KeyValueConfig::parseFile(path);
    applyScenario(kv, config);
    return config;
}

void
describeConfig(std::ostream &os, const SimulationConfig &config)
{
    TextTable table({"parameter", "value"});
    table.addRow("capacity (kW)", fixed(config.capacity.value(), 2));
    table.addRow("benign tenants", config.numBenignTenants);
    table.addRow("servers (total / attacker)",
                 std::to_string(config.numServers()) + " / " +
                     std::to_string(config.attackerNumServers));
    table.addRow("attacker subscription (kW)",
                 fixed(config.attackerSubscription.value(), 2));
    table.addRow("attack load from battery (kW)",
                 fixed(config.attackLoad.value(), 2));
    table.addRow("battery (kWh / charge kW / discharge kW)",
                 fixed(config.batterySpec.capacity.value(), 2) + " / " +
                     fixed(config.batterySpec.maxChargeRate.value(), 2) +
                     " / " +
                     fixed(config.batterySpec.maxDischargeRate.value(),
                           2));
    table.addRow("cooling capacity (kW)",
                 fixed(config.cooling.capacity.value(), 2));
    table.addRow("supply set point (C)",
                 fixed(config.cooling.supplySetPoint.value(), 1));
    table.addRow("emergency threshold (C, sustained min)",
                 fixed(config.emergencyThreshold.value(), 1) + ", " +
                     std::to_string(config.emergencySustainMinutes));
    table.addRow("per-server cap (kW) / capping minutes",
                 fixed(config.perServerCap.value(), 2) + " / " +
                     std::to_string(config.cappingMinutes));
    table.addRow("shutdown threshold (C)",
                 fixed(config.shutdownThreshold.value(), 1));
    table.addRow("average utilization",
                 fixed(config.averageUtilization, 2));
    table.addRow("trace",
                 config.traceKind == TraceKind::Diurnal ? "diurnal"
                 : config.traceKind == TraceKind::GoogleStyle
                     ? "google-style"
                     : "request-level");
    table.addRow("seed", config.seed);
    table.print(os);
}

} // namespace ecolo::core
