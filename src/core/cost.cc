#include "core/cost.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ecolo::core {

AttackerCost
CostModel::attackerAnnualCost(const SimulationConfig &config,
                              const SimulationMetrics &metrics) const
{
    AttackerCost cost;
    cost.subscriptionUsd = params_.subscriptionPerKwMonth *
                           config.attackerSubscription.value() * 12.0;
    cost.serversUsd = params_.serverCost *
                      static_cast<double>(config.attackerNumServers) /
                      params_.serverAmortizationYears;

    if (metrics.minutes() > 0) {
        const double years =
            static_cast<double>(metrics.minutes()) /
            static_cast<double>(kMinutesPerYear);
        cost.energyUsd = params_.energyPerKwh *
                         metrics.attackerGridEnergy().value() /
                         std::max(years, 1e-12);
    }
    return cost;
}

BenignCost
CostModel::benignAnnualCost(const SimulationConfig &config,
                            const SimulationMetrics &metrics) const
{
    BenignCost cost;
    if (metrics.minutes() == 0)
        return cost;
    const double years = static_cast<double>(metrics.minutes()) /
                         static_cast<double>(kMinutesPerYear);
    const double emergency_hours =
        static_cast<double>(metrics.emergencyMinutes()) / 60.0 / years;
    const double excess_latency =
        std::max(0.0, metrics.emergencyPerf().mean() - 1.0);
    cost.degradationUsd = params_.degradationCostRate *
                          static_cast<double>(config.numBenignTenants) *
                          emergency_hours * excess_latency;
    cost.outageUsd = params_.outageCostPerMinute *
                     static_cast<double>(metrics.outageMinutes()) / years;
    return cost;
}

} // namespace ecolo::core
