#include "core/config.hh"

#include <cmath>

#include "util/logging.hh"

namespace ecolo::core {

namespace {

using util::ErrorCode;
using util::Result;

/** NaN/inf guard with the parameter name in the message. */
Result<void>
requireFinite(double value, const char *name)
{
    if (!std::isfinite(value)) {
        return ECOLO_ERROR(ErrorCode::ValidationError, name,
                           " must be a finite number, got ", value,
                           " (check the scenario file for NaN/inf values)");
    }
    return {};
}

Result<void>
requirePositive(double value, const char *name)
{
    ECOLO_TRY_VOID(requireFinite(value, name));
    if (value <= 0.0) {
        return ECOLO_ERROR(ErrorCode::ValidationError, name,
                           " must be positive, got ", value);
    }
    return {};
}

Result<void>
requireNonNegative(double value, const char *name)
{
    ECOLO_TRY_VOID(requireFinite(value, name));
    if (value < 0.0) {
        return ECOLO_ERROR(ErrorCode::ValidationError, name,
                           " must be non-negative, got ", value);
    }
    return {};
}

/** Efficiencies and similar fractions: (0, 1]. */
Result<void>
requireUnitFraction(double value, const char *name)
{
    ECOLO_TRY_VOID(requireFinite(value, name));
    if (value <= 0.0 || value > 1.0) {
        return ECOLO_ERROR(ErrorCode::ValidationError, name,
                           " must be in (0, 1], got ", value);
    }
    return {};
}

} // namespace

util::Result<void>
SimulationConfig::validated() const
{
    // ---- Value sanity: finite, signs, ranges ----
    ECOLO_TRY_VOID(requirePositive(capacity.value(), "capacityKw"));
    ECOLO_TRY_VOID(requirePositive(attackLoad.value(),
                                   "attacker.attackLoadKw"));
    ECOLO_TRY_VOID(requireFinite(attackerSubscription.value(),
                                 "attacker.subscriptionKw"));
    ECOLO_TRY_VOID(requireUnitFraction(attackerStandbyUtilization,
                                       "attacker.standbyUtilization"));
    ECOLO_TRY_VOID(requirePositive(batterySpec.capacity.value(),
                                   "battery.capacityKwh"));
    ECOLO_TRY_VOID(requirePositive(batterySpec.maxChargeRate.value(),
                                   "battery.chargeRateKw"));
    ECOLO_TRY_VOID(requirePositive(batterySpec.maxDischargeRate.value(),
                                   "battery.dischargeRateKw"));
    ECOLO_TRY_VOID(requireUnitFraction(batterySpec.chargeEfficiency,
                                       "battery.chargeEfficiency"));
    ECOLO_TRY_VOID(requireUnitFraction(batterySpec.dischargeEfficiency,
                                       "battery.dischargeEfficiency"));
    ECOLO_TRY_VOID(requirePositive(cooling.capacity.value(),
                                   "cooling.capacityKw"));
    ECOLO_TRY_VOID(requirePositive(cooling.airVolume,
                                   "cooling.airVolumeM3"));
    ECOLO_TRY_VOID(requireFinite(cooling.supplySetPoint.value(),
                                 "cooling.setPointC"));
    ECOLO_TRY_VOID(requireNonNegative(cooling.capacityDeratingPerKelvin,
                                      "cooling.deratingPerKelvin"));
    ECOLO_TRY_VOID(requireNonNegative(serverSpec.idlePower.value(),
                                      "server idle power"));
    ECOLO_TRY_VOID(requirePositive(serverSpec.peakPower.value(),
                                   "server peak power"));
    ECOLO_TRY_VOID(requirePositive(perServerCap.value(),
                                   "protocol.perServerCapKw"));
    ECOLO_TRY_VOID(requireFinite(emergencyThreshold.value(),
                                 "protocol.emergencyThresholdC"));
    ECOLO_TRY_VOID(requireFinite(shutdownThreshold.value(),
                                 "protocol.shutdownThresholdC"));
    ECOLO_TRY_VOID(requireNonNegative(operatorSensorNoise,
                                      "operator sensor noise"));
    if (serverSpec.peakPower.value() <= serverSpec.idlePower.value()) {
        return ECOLO_ERROR(ErrorCode::ValidationError,
                           "server peak power (",
                           serverSpec.peakPower.value(),
                           " kW) must exceed idle power (",
                           serverSpec.idlePower.value(), " kW)");
    }
    if (outageRestartMinutes < 1) {
        return ECOLO_ERROR(ErrorCode::ValidationError,
                           "protocol.outageRestartMinutes must be at "
                           "least 1, got ",
                           outageRestartMinutes);
    }

    // ---- Structural constraints ----
    if (numBenignTenants == 0) {
        return ECOLO_ERROR(ErrorCode::ValidationError,
                           "need at least one benign tenant");
    }
    if (attackerNumServers == 0 || attackerNumServers >= numServers()) {
        return ECOLO_ERROR(ErrorCode::ValidationError,
                           "attacker server count out of range: ",
                           attackerNumServers, " of ", numServers());
    }
    if (numBenignServers() % numBenignTenants != 0) {
        return ECOLO_ERROR(ErrorCode::ValidationError, "benign servers (",
                           numBenignServers(),
                           ") must divide evenly among ", numBenignTenants,
                           " tenants");
    }
    if (attackerSubscription.value() <= 0.0 ||
        attackerSubscription >= capacity) {
        return ECOLO_ERROR(ErrorCode::ValidationError,
                           "attacker subscription out of range: ",
                           attackerSubscription.value(),
                           " kW must lie strictly between 0 and the ",
                           capacity.value(), " kW capacity");
    }
    if (batterySpec.maxDischargeRate < attackLoad) {
        return ECOLO_ERROR(ErrorCode::ValidationError,
                           "battery discharge rate (",
                           batterySpec.maxDischargeRate.value(),
                           " kW) cannot sustain the attack load (",
                           attackLoad.value(), " kW)");
    }
    if (emergencyThreshold >= shutdownThreshold) {
        return ECOLO_ERROR(
            ErrorCode::ValidationError,
            "emergency threshold must be below shutdown threshold (got ",
            emergencyThreshold.value(), " C vs ",
            shutdownThreshold.value(), " C)");
    }
    if (cooling.supplySetPoint >= emergencyThreshold) {
        return ECOLO_ERROR(
            ErrorCode::ValidationError,
            "supply set point must be below emergency threshold (got ",
            cooling.supplySetPoint.value(), " C vs ",
            emergencyThreshold.value(), " C)");
    }
    if (perServerCap >= serverSpec.peakPower) {
        return ECOLO_ERROR(
            ErrorCode::ValidationError,
            "emergency cap must be below server peak power (got ",
            perServerCap.value(), " kW vs ",
            serverSpec.peakPower.value(), " kW)");
    }
    if (!std::isfinite(averageUtilization) || averageUtilization <= 0.0 ||
        averageUtilization > 1.0) {
        return ECOLO_ERROR(ErrorCode::ValidationError,
                           "average utilization out of (0,1]: got ",
                           averageUtilization);
    }
    if (emergencySustainMinutes < 1 || cappingMinutes < 1) {
        return ECOLO_ERROR(ErrorCode::ValidationError,
                           "protocol durations must be at least one "
                           "minute (sustain ",
                           emergencySustainMinutes, ", capping ",
                           cappingMinutes, ")");
    }
    if (!externalBenignTraces.empty() &&
        externalBenignTraces.size() != numBenignTenants) {
        return ECOLO_ERROR(ErrorCode::ValidationError,
                           "externalBenignTraces must hold exactly ",
                           numBenignTenants, " traces, got ",
                           externalBenignTraces.size());
    }
    return {};
}

void
SimulationConfig::validate() const
{
    if (const auto result = validated(); !result.ok())
        ECOLO_FATAL(result.error().message);
}

SimulationConfig
SimulationConfig::paperDefault()
{
    SimulationConfig config;
    // All members default to Table I already; spelled out here for the two
    // subsystems whose defaults serve other scales as well.
    config.cooling.capacity = config.capacity;
    config.cooling.supplySetPoint = Celsius(27.0);
    config.validate();
    return config;
}

SimulationConfig
SimulationConfig::prototypeScale()
{
    SimulationConfig config;
    config.capacity = Kilowatts(3.0);
    config.layout.numRacks = 1;
    config.layout.serversPerRack = 14;
    config.layout.containerLength = 4.5;
    config.layout.containerWidth = 3.0;
    config.layout.containerHeight = 2.6;
    config.numBenignTenants = 2;
    config.attackerNumServers = 2;
    config.attackerSubscription = Kilowatts(0.4);
    config.attackLoad = Kilowatts(1.5); // the appendix's 1.5 kW overload
    config.batterySpec.capacity = KilowattHours(0.3);
    config.batterySpec.maxDischargeRate = Kilowatts(1.5);
    config.cooling.capacity = Kilowatts(3.0);
    // The paper's sealed test room is "comparable dimension to an edge
    // data center": ~26 m^3 of air.
    config.cooling.airVolume = 26.0;
    config.validate();
    return config;
}

} // namespace ecolo::core
