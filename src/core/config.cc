#include "core/config.hh"

#include "util/logging.hh"

namespace ecolo::core {

void
SimulationConfig::validate() const
{
    if (capacity.value() <= 0.0)
        ECOLO_FATAL("data center capacity must be positive");
    if (numBenignTenants == 0)
        ECOLO_FATAL("need at least one benign tenant");
    if (attackerNumServers == 0 || attackerNumServers >= numServers())
        ECOLO_FATAL("attacker server count out of range: ",
                    attackerNumServers, " of ", numServers());
    if (numBenignServers() % numBenignTenants != 0)
        ECOLO_FATAL("benign servers (", numBenignServers(),
                    ") must divide evenly among ", numBenignTenants,
                    " tenants");
    if (attackerSubscription.value() <= 0.0 ||
        attackerSubscription >= capacity)
        ECOLO_FATAL("attacker subscription out of range");
    if (attackLoad.value() <= 0.0)
        ECOLO_FATAL("attack load must be positive");
    if (batterySpec.maxDischargeRate < attackLoad)
        ECOLO_FATAL("battery discharge rate (",
                    batterySpec.maxDischargeRate.value(),
                    " kW) cannot sustain the attack load (",
                    attackLoad.value(), " kW)");
    if (emergencyThreshold >= shutdownThreshold)
        ECOLO_FATAL("emergency threshold must be below shutdown threshold");
    if (cooling.supplySetPoint >= emergencyThreshold)
        ECOLO_FATAL("supply set point must be below emergency threshold");
    if (perServerCap >= serverSpec.peakPower)
        ECOLO_FATAL("emergency cap must be below server peak power");
    if (averageUtilization <= 0.0 || averageUtilization > 1.0)
        ECOLO_FATAL("average utilization out of (0,1]");
    if (emergencySustainMinutes < 1 || cappingMinutes < 1)
        ECOLO_FATAL("protocol durations must be at least one minute");
    if (!externalBenignTraces.empty() &&
        externalBenignTraces.size() != numBenignTenants) {
        ECOLO_FATAL("externalBenignTraces must hold exactly ",
                    numBenignTenants, " traces, got ",
                    externalBenignTraces.size());
    }
}

SimulationConfig
SimulationConfig::paperDefault()
{
    SimulationConfig config;
    // All members default to Table I already; spelled out here for the two
    // subsystems whose defaults serve other scales as well.
    config.cooling.capacity = config.capacity;
    config.cooling.supplySetPoint = Celsius(27.0);
    config.validate();
    return config;
}

SimulationConfig
SimulationConfig::prototypeScale()
{
    SimulationConfig config;
    config.capacity = Kilowatts(3.0);
    config.layout.numRacks = 1;
    config.layout.serversPerRack = 14;
    config.layout.containerLength = 4.5;
    config.layout.containerWidth = 3.0;
    config.layout.containerHeight = 2.6;
    config.numBenignTenants = 2;
    config.attackerNumServers = 2;
    config.attackerSubscription = Kilowatts(0.4);
    config.attackLoad = Kilowatts(1.5); // the appendix's 1.5 kW overload
    config.batterySpec.capacity = KilowattHours(0.3);
    config.batterySpec.maxDischargeRate = Kilowatts(1.5);
    config.cooling.capacity = Kilowatts(3.0);
    // The paper's sealed test room is "comparable dimension to an edge
    // data center": ~26 m^3 of air.
    config.cooling.airVolume = 26.0;
    config.validate();
    return config;
}

} // namespace ecolo::core
