/**
 * @file
 * The colocation operator's thermal-emergency protocol (Sections III-B and
 * V-A): when the server inlet temperature exceeds 32 C for at least two
 * consecutive minutes, a thermal emergency is declared and every server is
 * power-capped to 60% of capacity for five minutes; if the inlet reaches
 * 45 C the shared PDU powers off (system outage) and stays down through a
 * restart window.
 */

#ifndef ECOLO_CORE_OPERATOR_HH
#define ECOLO_CORE_OPERATOR_HH

#include <cstddef>
#include <optional>

#include "util/sim_time.hh"
#include "util/units.hh"

namespace ecolo::core {

/** Protocol state machine states. */
enum class OperatorState
{
    Normal,    //!< temperatures in range
    Pending,   //!< above threshold, sustain timer running
    Emergency, //!< capping in force
    Outage,    //!< PDU de-energized, restart timer running
};

const char *toString(OperatorState state);

/** What the operator orders this minute. */
struct OperatorCommand
{
    bool capServers = false; //!< enforce the per-server power cap
    bool outage = false;     //!< PDU is off
    /**
     * Per-server cap to enforce when capServers is set; unset means "use
     * the configured fixed cap". Populated by the adaptive capping
     * strategy.
     */
    std::optional<Kilowatts> capLevel;
};

/** The operator's monitoring/enforcement loop. */
class ColoOperator
{
  public:
    struct Params
    {
        Celsius emergencyThreshold{32.0};
        MinuteIndex sustainMinutes = 2;
        MinuteIndex cappingMinutes = 5;
        Celsius shutdownThreshold{45.0};
        MinuteIndex outageRestartMinutes = 60;
        /**
         * Runtime-coordinated capping (the paper's alternative to fixed
         * SLA-predetermined capping): the cap depth scales with the
         * overshoot at declaration time, capping gently for marginal
         * emergencies and hard for severe ones.
         */
        bool adaptiveCapping = false;
        Kilowatts adaptiveMinCap{0.10};  //!< severe overshoot
        Kilowatts adaptiveMaxCap{0.15};  //!< marginal overshoot
        /** Overshoot (K above threshold) that maps to the hardest cap. */
        double adaptiveFullScaleKelvin = 5.0;
    };

    explicit ColoOperator(Params params);

    /**
     * Feed the hottest observed inlet temperature for this minute and get
     * the command that applies to the *next* minute.
     */
    OperatorCommand observeMinute(Celsius max_inlet);

    OperatorState state() const { return state_; }

    /** Count of emergencies declared so far. */
    std::size_t emergenciesDeclared() const { return emergencies_; }
    /** Count of outages so far. */
    std::size_t outages() const { return outages_; }
    /** Minutes spent with capping in force. */
    MinuteIndex emergencyMinutes() const { return emergencyMinutes_; }
    /** Minutes spent de-energized. */
    MinuteIndex outageMinutes() const { return outageMinutes_; }

    void reset();

    const Params &params() const { return params_; }

  private:
    Params params_;
    OperatorState state_ = OperatorState::Normal;
    MinuteIndex sustainCounter_ = 0;
    MinuteIndex cappingLeft_ = 0;
    MinuteIndex restartLeft_ = 0;
    std::size_t emergencies_ = 0;
    std::size_t outages_ = 0;
    Kilowatts activeCapLevel_{0.12};
    MinuteIndex emergencyMinutes_ = 0;
    MinuteIndex outageMinutes_ = 0;
};

} // namespace ecolo::core

#endif // ECOLO_CORE_OPERATOR_HH
