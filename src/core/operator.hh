/**
 * @file
 * The colocation operator's thermal-emergency protocol (Sections III-B and
 * V-A): when the server inlet temperature exceeds 32 C for at least two
 * consecutive minutes, a thermal emergency is declared and every server is
 * power-capped to 60% of capacity for five minutes; if the inlet reaches
 * 45 C the shared PDU powers off (system outage) and stays down through a
 * restart window.
 */

#ifndef ECOLO_CORE_OPERATOR_HH
#define ECOLO_CORE_OPERATOR_HH

#include <cstddef>
#include <optional>

#include "util/sim_time.hh"
#include "util/state_io.hh"
#include "util/units.hh"

namespace ecolo::core {

/** Protocol state machine states. */
enum class OperatorState
{
    Normal,    //!< temperatures in range
    Pending,   //!< above threshold, sustain timer running
    Emergency, //!< capping in force
    Outage,    //!< PDU de-energized, restart timer running
};

const char *toString(OperatorState state);

/** What the operator orders this minute. */
struct OperatorCommand
{
    bool capServers = false; //!< enforce the per-server power cap
    bool outage = false;     //!< PDU is off
    /**
     * Per-server cap to enforce when capServers is set; unset means "use
     * the configured fixed cap". Populated by the adaptive capping
     * strategy.
     */
    std::optional<Kilowatts> capLevel;

    // ---- Degraded-mode overlay (fault response; all neutral when
    // ---- healthy, so fault-free runs are unaffected).

    /**
     * Preventive per-server cap applied even outside a declared
     * emergency: with a partially failed CRAC (or a blind inlet sensor)
     * the operator limits load *before* temperatures run away instead of
     * waiting for the emergency protocol to trip.
     */
    std::optional<Kilowatts> preventiveCapLevel;
    /** Commanded CRAC set-point raise (trades inlet margin for capacity). */
    CelsiusDelta setPointRaise{0.0};
    /** Fraction of benign servers to power off (partial shutdown). */
    double shedFraction = 0.0;
    /** True when any degraded-mode response is active this minute. */
    bool degraded = false;
};

/**
 * What the operator knows about the site's health this minute, beyond the
 * sensed inlet temperature. Defaults describe a healthy site, so the
 * one-argument observeMinute keeps its historical behavior exactly.
 */
struct DegradedContext
{
    /** Fraction of CRAC capacity still available (1 = healthy). */
    double coolingCapacityFactor = 1.0;
    /** False when the inlet reading is missing/implausible this minute. */
    bool sensorValid = true;
};

/** The operator's monitoring/enforcement loop. */
class ColoOperator
{
  public:
    struct Params
    {
        Celsius emergencyThreshold{32.0};
        MinuteIndex sustainMinutes = 2;
        MinuteIndex cappingMinutes = 5;
        Celsius shutdownThreshold{45.0};
        MinuteIndex outageRestartMinutes = 60;
        /**
         * Runtime-coordinated capping (the paper's alternative to fixed
         * SLA-predetermined capping): the cap depth scales with the
         * overshoot at declaration time, capping gently for marginal
         * emergencies and hard for severe ones.
         */
        bool adaptiveCapping = false;
        Kilowatts adaptiveMinCap{0.10};  //!< severe overshoot
        Kilowatts adaptiveMaxCap{0.15};  //!< marginal overshoot
        /** Overshoot (K above threshold) that maps to the hardest cap. */
        double adaptiveFullScaleKelvin = 5.0;

        // ---- Degraded-mode (fault-response) knobs. With a healthy
        // ---- DegradedContext none of these alter behavior.

        /** CRAC capacity factor below which preventive capping starts. */
        double derateCapThreshold = 0.98;
        /** Capacity factor below which partial shutdown starts. */
        double derateShedThreshold = 0.60;
        /** Hardest allowed partial shutdown (fraction of benign servers). */
        double maxShedFraction = 0.5;
        /** Largest commanded set-point raise under CRAC derating. */
        CelsiusDelta maxSetPointRaise{4.0};
        /**
         * Minutes of invalid inlet readings tolerated (holding the last
         * good value) before the operator assumes the worst and caps
         * preventively.
         */
        MinuteIndex sensorBlindTolerance = 10;
        /** Preventive per-server cap while flying blind. */
        Kilowatts sensorBlindCap{0.12};
    };

    explicit ColoOperator(Params params);

    /**
     * Feed the hottest observed inlet temperature for this minute and get
     * the command that applies to the *next* minute.
     */
    OperatorCommand observeMinute(Celsius max_inlet);

    /**
     * Fault-aware variant: the context carries what the operator's own
     * monitoring knows about CRAC health and sensor validity, and the
     * returned command may include graceful-degradation responses
     * (preventive capping, set-point raise, partial shutdown) on top of
     * the ordinary emergency protocol. With a default-constructed context
     * this is exactly the historical observeMinute.
     */
    OperatorCommand observeMinute(Celsius max_inlet,
                                  const DegradedContext &ctx);

    OperatorState state() const { return state_; }

    /** Count of emergencies declared so far. */
    std::size_t emergenciesDeclared() const { return emergencies_; }
    /** Count of outages so far. */
    std::size_t outages() const { return outages_; }
    /** Minutes spent with capping in force. */
    MinuteIndex emergencyMinutes() const { return emergencyMinutes_; }
    /** Minutes spent de-energized. */
    MinuteIndex outageMinutes() const { return outageMinutes_; }
    /** Minutes spent with any degraded-mode response active. */
    MinuteIndex degradedMinutes() const { return degradedMinutes_; }
    /** Consecutive minutes the inlet sensor has been invalid. */
    MinuteIndex blindMinutes() const { return blindMinutes_; }

    void reset();

    const Params &params() const { return params_; }

    /** Serialize / restore the mutable state (checkpointing). */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

  private:
    Params params_;
    OperatorState state_ = OperatorState::Normal;
    MinuteIndex sustainCounter_ = 0;
    MinuteIndex cappingLeft_ = 0;
    MinuteIndex restartLeft_ = 0;
    std::size_t emergencies_ = 0;
    std::size_t outages_ = 0;
    Kilowatts activeCapLevel_{0.12};
    MinuteIndex emergencyMinutes_ = 0;
    MinuteIndex outageMinutes_ = 0;
    MinuteIndex degradedMinutes_ = 0;
    MinuteIndex blindMinutes_ = 0;
    Celsius lastGoodInlet_{27.0};
};

} // namespace ecolo::core

#endif // ECOLO_CORE_OPERATOR_HH
