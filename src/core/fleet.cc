#include "core/fleet.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>

#include "core/setup_cache.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace ecolo::core {

FleetSimulation::FleetSimulation(SimulationConfig base_config,
                                 std::size_t num_sites,
                                 MinuteIndex strike_minute,
                                 Kilowatts strike_threshold)
    : strikeMinute_(strike_minute)
{
    ECOLO_ASSERT(num_sites > 0, "fleet needs at least one site");
    ECOLO_ASSERT(strike_minute >= 0, "negative strike minute");

    // Sites share one setup cache: trace synthesis stays per-site (the
    // cache keys traces on the seed, which differs below), but the heat
    // tensor, its Prony fit and the temporal factorization are
    // seed-independent and get built exactly once for the whole fleet.
    if (!base_config.setupCache)
        base_config.setupCache = std::make_shared<SetupCache>();

    sites_.reserve(num_sites);
    for (std::size_t s = 0; s < num_sites; ++s) {
        SimulationConfig site_config = base_config;
        // Each site has its own tenants, traces and side channel.
        site_config.seed = base_config.seed + 0x9e3779b9ULL * (s + 1);
        sites_.push_back(std::make_unique<Simulation>(
            site_config,
            makeOneShotPolicy(site_config, strike_threshold,
                              strike_minute)));
    }
    downNow_.assign(num_sites, false);
    result_.numSites = num_sites;
    result_.siteOutageMinutes.assign(num_sites, 0);
}

void
FleetSimulation::run(MinuteIndex minutes)
{
    if (minutes <= 0)
        return;
    const std::size_t num_sites = sites_.size();
    const auto span = static_cast<std::size_t>(minutes);

    // Sites share no mutable state (each has its own traces, thermal
    // history and pre-forked RNG streams) but identical thermal geometry,
    // so the lane-batch runner packs several of them into one SoA thermal
    // bank per group and the groups advance in parallel. Per site the
    // result is bit-identical to running it alone (the runner's core
    // contract); the slot hook records each site's per-minute outage flag
    // into its own pre-sized scratch row, and the serial aggregation
    // below then walks minutes in order, exactly as before. The scratch
    // rows persist across calls; assign() only reallocates when a call
    // spans more minutes than any before it.
    downScratch_.resize(num_sites);
    for (auto &row : downScratch_)
        row.assign(span, 0);
    if (!runner_) {
        // Groups sized so their count still saturates the pool: with
        // few sites per thread, lanes-per-group drops toward 1 and the
        // layout degenerates to the old site-per-thread sweep.
        LaneBatchOptions options;
        const std::size_t threads =
            util::ThreadPool::global().numThreads();
        options.lanesPerGroup = std::clamp<std::size_t>(
            num_sites / std::max<std::size_t>(threads, 1), 1,
            thermal::LaneThermalBank::kLanes);
        runner_ = std::make_unique<LaneBatchRunner>(options);
        for (auto &site : sites_) {
            // Sites run open-ended; each run() chunk advances them.
            runner_->add(*site,
                         std::numeric_limits<MinuteIndex>::max() / 2);
        }
        runner_->setSlotHook([this](std::size_t lane, MinuteIndex m) {
            downScratch_[lane][static_cast<std::size_t>(m)] =
                sites_[lane]->coloOperator().state() ==
                OperatorState::Outage;
        });
    }
    runner_->run(minutes);

    for (std::size_t m = 0; m < span; ++m) {
        ++now_;
        std::size_t down = 0;
        for (std::size_t s = 0; s < num_sites; ++s) {
            downNow_[s] = downScratch_[s][m] != 0;
            if (downNow_[s]) {
                ++down;
                ++result_.siteOutageMinutes[s];
                if (result_.firstOutageDelay < 0)
                    result_.firstOutageDelay = now_ - strikeMinute_;
            }
        }
        result_.maxSimultaneousOutages =
            std::max(result_.maxSimultaneousOutages, down);
        if (2 * down >= num_sites)
            ++result_.wideAreaInterruptionMinutes;
    }

    result_.sitesWithOutage = 0;
    for (std::size_t s = 0; s < num_sites; ++s)
        result_.sitesWithOutage += sites_[s]->metrics().outages() > 0;
}

std::size_t
FleetSimulation::sitesDownNow() const
{
    std::size_t down = 0;
    for (bool b : downNow_)
        down += b;
    return down;
}

util::Result<void>
FleetSimulation::saveCheckpoint(const std::string &path,
                                std::uint32_t schema_version) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            return ECOLO_ERROR(util::ErrorCode::IoError,
                               "cannot open checkpoint file for writing: ",
                               tmp);
        }
        util::StateWriter writer(os);
        writer.header();
        writer.tag("FLT ");
        // Config fingerprint: enough to reject a checkpoint written by a
        // different campaign -- or a behaviorally different build -- before
        // any state is interpreted.
        writer.u32(schema_version);
        writer.u64(sites_.size());
        writer.u64(sites_.front()->config().seed);
        writer.u64(sites_.front()->config().numServers());
        writer.i64(strikeMinute_);
        writer.i64(now_);

        writer.u64(result_.sitesWithOutage);
        writer.u64(result_.maxSimultaneousOutages);
        writer.i64(result_.wideAreaInterruptionMinutes);
        writer.i64(result_.firstOutageDelay);
        writer.i64Vector(result_.siteOutageMinutes);
        for (bool b : downNow_)
            writer.boolean(b);

        for (const auto &site : sites_)
            site->saveState(writer);

        os.flush();
        if (!writer.good() || !os) {
            return ECOLO_ERROR(util::ErrorCode::IoError,
                               "short write to checkpoint file: ", tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "cannot rename checkpoint into place: ", tmp,
                           " -> ", path);
    }
    telemetry::emitEvent(now_, telemetry::EventKind::CheckpointSaved,
                         static_cast<double>(now_), path);
    return {};
}

util::Result<void>
FleetSimulation::loadCheckpoint(const std::string &path,
                                std::uint32_t schema_version)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "cannot open checkpoint file: ", path);
    }
    util::StateReader reader(is);
    reader.header();
    reader.tag("FLT ");

    const std::uint32_t version = reader.u32();
    if (reader.ok() && version != schema_version) {
        return ECOLO_ERROR(util::ErrorCode::StateError,
                           "engine schema version mismatch for ", path,
                           ": checkpoint v", version, " vs build v",
                           schema_version,
                           " (refusing to resume across builds)");
    }
    const std::uint64_t num_sites = reader.u64();
    const std::uint64_t seed = reader.u64();
    const std::uint64_t num_servers = reader.u64();
    const MinuteIndex strike = reader.i64();
    if (!reader.ok())
        return reader.status().error();
    if (num_sites != sites_.size() ||
        seed != sites_.front()->config().seed ||
        num_servers != sites_.front()->config().numServers() ||
        strike != strikeMinute_) {
        return ECOLO_ERROR(
            util::ErrorCode::StateError,
            "checkpoint fingerprint mismatch for ", path, ": checkpoint (",
            num_sites, " sites, seed ", seed, ", ", num_servers,
            " servers, strike ", strike, ") vs campaign (", sites_.size(),
            " sites, seed ", sites_.front()->config().seed, ", ",
            sites_.front()->config().numServers(), " servers, strike ",
            strikeMinute_, ")");
    }

    now_ = reader.i64();
    result_.sitesWithOutage = static_cast<std::size_t>(reader.u64());
    result_.maxSimultaneousOutages =
        static_cast<std::size_t>(reader.u64());
    result_.wideAreaInterruptionMinutes = reader.i64();
    result_.firstOutageDelay = reader.i64();
    result_.siteOutageMinutes = reader.i64Vector();
    if (reader.ok() && result_.siteOutageMinutes.size() != sites_.size()) {
        return ECOLO_ERROR(util::ErrorCode::StateError,
                           "checkpoint per-site vector length mismatch: ",
                           result_.siteOutageMinutes.size(), " vs ",
                           sites_.size());
    }
    for (std::size_t s = 0; s < downNow_.size(); ++s)
        downNow_[s] = reader.boolean();

    for (auto &site : sites_)
        site->loadState(reader);

    if (reader.ok()) {
        telemetry::emitEvent(now_, telemetry::EventKind::CheckpointRestored,
                             static_cast<double>(now_), path);
    }
    return reader.status();
}

} // namespace ecolo::core
