#include "core/fleet.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ecolo::core {

FleetSimulation::FleetSimulation(SimulationConfig base_config,
                                 std::size_t num_sites,
                                 MinuteIndex strike_minute,
                                 Kilowatts strike_threshold)
    : strikeMinute_(strike_minute)
{
    ECOLO_ASSERT(num_sites > 0, "fleet needs at least one site");
    ECOLO_ASSERT(strike_minute >= 0, "negative strike minute");

    sites_.reserve(num_sites);
    for (std::size_t s = 0; s < num_sites; ++s) {
        SimulationConfig site_config = base_config;
        // Each site has its own tenants, traces and side channel.
        site_config.seed = base_config.seed + 0x9e3779b9ULL * (s + 1);
        sites_.push_back(std::make_unique<Simulation>(
            site_config,
            makeOneShotPolicy(site_config, strike_threshold,
                              strike_minute)));
    }
    downNow_.assign(num_sites, false);
    result_.numSites = num_sites;
    result_.siteOutageMinutes.assign(num_sites, 0);
}

void
FleetSimulation::run(MinuteIndex minutes)
{
    for (MinuteIndex m = 0; m < minutes; ++m) {
        for (std::size_t s = 0; s < sites_.size(); ++s) {
            sites_[s]->run(1);
            downNow_[s] =
                sites_[s]->coloOperator().state() == OperatorState::Outage;
        }
        ++now_;

        std::size_t down = 0;
        for (std::size_t s = 0; s < sites_.size(); ++s) {
            if (downNow_[s]) {
                ++down;
                ++result_.siteOutageMinutes[s];
                if (result_.firstOutageDelay < 0)
                    result_.firstOutageDelay = now_ - strikeMinute_;
            }
        }
        result_.maxSimultaneousOutages =
            std::max(result_.maxSimultaneousOutages, down);
        if (2 * down >= sites_.size())
            ++result_.wideAreaInterruptionMinutes;
    }

    result_.sitesWithOutage = 0;
    for (std::size_t s = 0; s < sites_.size(); ++s)
        result_.sitesWithOutage += sites_[s]->metrics().outages() > 0;
}

std::size_t
FleetSimulation::sitesDownNow() const
{
    std::size_t down = 0;
    for (bool b : downNow_)
        down += b;
    return down;
}

} // namespace ecolo::core
