#include "core/mdp.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::core {

const char *
toString(AttackAction action)
{
    switch (action) {
      case AttackAction::Charge:
        return "charge";
      case AttackAction::Attack:
        return "attack";
      case AttackAction::Standby:
        return "standby";
    }
    return "unknown";
}

StateSpace::StateSpace(Params params) : params_(params)
{
    ECOLO_ASSERT(params_.batteryBins > 0 && params_.loadBins > 0,
                 "state space needs at least one bin per dimension");
    ECOLO_ASSERT(params_.loadMax > params_.loadMin,
                 "load bin range is empty");
}

std::size_t
StateSpace::batteryBinOf(double soc) const
{
    const double clamped = std::clamp(soc, 0.0, 1.0);
    const auto bin = static_cast<std::size_t>(
        clamped * static_cast<double>(params_.batteryBins));
    return std::min(bin, params_.batteryBins - 1);
}

std::size_t
StateSpace::loadBinOf(Kilowatts load) const
{
    const double span = (params_.loadMax - params_.loadMin).value();
    const double frac =
        (load - params_.loadMin).value() / span;
    const double clamped = std::clamp(frac, 0.0, 1.0);
    const auto bin = static_cast<std::size_t>(
        clamped * static_cast<double>(params_.loadBins));
    return std::min(bin, params_.loadBins - 1);
}

std::size_t
StateSpace::indexOf(double soc, Kilowatts load) const
{
    return indexOfBins(batteryBinOf(soc), loadBinOf(load));
}

std::size_t
StateSpace::indexOfBins(std::size_t battery_bin, std::size_t load_bin) const
{
    ECOLO_ASSERT(battery_bin < params_.batteryBins &&
                 load_bin < params_.loadBins,
                 "state bins out of range: ", battery_bin, "/", load_bin);
    return battery_bin * params_.loadBins + load_bin;
}

double
StateSpace::batteryBinCenter(std::size_t bin) const
{
    ECOLO_ASSERT(bin < params_.batteryBins, "battery bin out of range");
    return (static_cast<double>(bin) + 0.5) /
           static_cast<double>(params_.batteryBins);
}

Kilowatts
StateSpace::loadBinCenter(std::size_t bin) const
{
    ECOLO_ASSERT(bin < params_.loadBins, "load bin out of range");
    const double span = (params_.loadMax - params_.loadMin).value();
    return params_.loadMin +
           Kilowatts(span * (static_cast<double>(bin) + 0.5) /
                     static_cast<double>(params_.loadBins));
}

std::size_t
StateSpace::batteryBinFromIndex(std::size_t state) const
{
    ECOLO_ASSERT(state < numStates(), "state index out of range");
    return state / params_.loadBins;
}

std::size_t
StateSpace::loadBinFromIndex(std::size_t state) const
{
    ECOLO_ASSERT(state < numStates(), "state index out of range");
    return state % params_.loadBins;
}

} // namespace ecolo::core
