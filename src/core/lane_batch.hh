/**
 * @file
 * LaneBatchRunner: advance many compatible simulations in SIMD lanes.
 *
 * Campaign drivers (sensitivity sweeps, fleet runs, benchmark panels)
 * hold dozens of Simulations that differ only in policy, one swept
 * parameter, or seed. Running them one-per-thread leaves two kinds of
 * money on the table: the thermal recurrence -- the slot loop's dominant
 * cost -- is advanced N separate times over identical-shape state, and
 * fingerprint-equal members re-derive the *same* benign workload every
 * minute. The runner packs simulations into groups of up to
 * LaneThermalBank::kLanes lanes and advances each group slot-by-slot:
 *
 * - Thermal: streaming-compatible lanes gather into one LaneThermalBank
 *   whose SoA arena advances all lanes per pass through the shared
 *   target_clones kernels (see thermal/stream_kernels.hh). Lanes whose
 *   model is not bank-compatible fall back to their own scalar step.
 * - Benign workload: when every lane in a group shares a workload
 *   fingerprint and a slot is "uniform" (no capping/outage/shed/fault
 *   divergence), one leader lane applies the traces and the others
 *   consume its harvested per-server/tenant power (bitwise what they
 *   would compute themselves; see SharedBenignSlot).
 * - Divergence is masked, not branched around: a lane under capping or
 *   faults simply runs its own workload phase that slot and resyncs
 *   automatically (the workload phase fully rewrites server state);
 *   early-finishing lanes stop calling setLanePowers and their bank
 *   column decays unread.
 *
 * Per-lane results are bit-identical to Simulation::run because the
 * runner calls the exact same slot-phase methods in the same order --
 * the engine's stepMinute is the one-lane special case. Lanes
 * checkpoint/resume as independent simulations: the bank scatters its
 * state back at every run() boundary and whenever a lane finishes, so
 * saveState between runs sees a normal scalar Simulation.
 *
 * The steady-state group loop performs no heap allocation (arenas are
 * sized at group formation; see tests/core/test_zero_alloc.cc).
 */

#ifndef ECOLO_CORE_LANE_BATCH_HH
#define ECOLO_CORE_LANE_BATCH_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/engine.hh"
#include "thermal/lane_bank.hh"

namespace ecolo::core {

/**
 * The group-formation rule as a single hash, for callers that must
 * decide *before* construction whether two requests could share a SoA
 * pass (the serve scheduler's micro-batching key). Folds the server
 * count, the thermal key (factorization key x kernel mode), and the
 * horizon; equal keys are exactly the requests LaneBatchRunner would
 * pack into one group when added at now() == 0 with this horizon.
 * Never returns zero (zero is the scheduler's "not batchable").
 */
std::uint64_t laneCompatibilityKey(const SimulationConfig &config,
                                   MinuteIndex horizon_minutes);

struct LaneBatchOptions
{
    /** Lanes packed per group, clamped to [1, LaneThermalBank::kLanes].
     * Fleet drivers shrink this so groups still saturate the pool. */
    std::size_t lanesPerGroup = thermal::LaneThermalBank::kLanes;
    /** Let fingerprint-equal lanes share the benign workload phase. */
    bool shareBenignWorkload = true;
    /** Advance streaming-compatible lanes through a LaneThermalBank. */
    bool useThermalBank = true;
};

class LaneBatchRunner
{
  public:
    explicit LaneBatchRunner(LaneBatchOptions options = {});

    /**
     * Register a simulation to advance for `horizon_minutes` more
     * minutes (from its current now()). The runner borrows the
     * simulation for the duration of its run() calls only; between
     * calls the simulation is in its normal scalar state. Returns the
     * lane id (add order). Adding after a run() re-forms the groups.
     */
    std::size_t add(Simulation &sim, MinuteIndex horizon_minutes);

    /**
     * Advance every unfinished lane by min(minutes, its remaining
     * horizon). Groups run in parallel on the global pool; lanes within
     * a group advance in lockstep. A lane whose cancel check fires is
     * retired permanently (its remaining() drops to zero).
     */
    void run(MinuteIndex minutes);

    /** run() until every lane has exhausted its horizon. */
    void runAll();

    bool finished() const;
    MinuteIndex remaining(std::size_t lane) const;
    /**
     * True when the lane was retired by its cancel check rather than
     * by exhausting its horizon. Both end states leave remaining() at
     * zero; serving-side callers need the distinction to answer
     * CANCELLED vs RESULT per lane.
     */
    bool cancelled(std::size_t lane) const;

    /**
     * Per-slot observation hook, called after a lane finishes a slot
     * with (lane id, minute offset within the current run() call).
     * Called from pool workers -- concurrently for lanes of different
     * groups -- so the hook must write only lane-owned state.
     */
    using SlotHook = std::function<void(std::size_t, MinuteIndex)>;
    void setSlotHook(SlotHook hook) { slotHook_ = std::move(hook); }

    /** Packing / execution counters (tests, telemetry, bench). */
    struct Stats
    {
        std::size_t groups = 0;
        std::size_t bankedLanes = 0;
        std::size_t scalarFallbackLanes = 0;
        std::uint64_t slotsExecuted = 0;
        std::uint64_t sharedWorkloadSlots = 0; //!< follower slots skipped
    };
    const Stats &stats() const { return stats_; }

  private:
    struct Lane
    {
        Simulation *sim = nullptr;
        MinuteIndex remaining = 0;
        bool active = false;      //!< participating in the current run()
        bool cancelled = false;   //!< retired by its cancel check
        bool benignStale = false; //!< skipped uniform workload phases
        int bankSlot = -1;        //!< column in the group's bank, -1 = scalar
    };

    struct Group
    {
        std::vector<std::size_t> lanes; //!< lane ids, leader candidates first
        std::uint64_t sharedFp = 0;     //!< nonzero: workload sharing armed
        bool bankActive = false;
        std::size_t bankReference = 0;  //!< lane id the bank was sized from
        thermal::LaneThermalBank bank;
        SharedBenignSlot shared;
        std::vector<unsigned char> uniform; //!< per group-lane slot scratch
        // Per-group tallies, folded into stats_ after each run() (groups
        // execute concurrently and must not share mutable counters).
        std::uint64_t slotCount = 0;
        std::uint64_t sharedCount = 0;
    };

    void formGroups();
    void runGroup(Group &group);
    void stepGroup(Group &group, MinuteIndex offset);
    void finishLane(Group &group, Lane &lane);
    void emitTelemetry(std::uint64_t slots, double seconds) const;

    LaneBatchOptions options_;
    std::vector<Lane> lanes_;
    std::vector<Simulation::SlotContext> ctx_; //!< per lane id
    std::vector<Group> groups_;
    bool groupsDirty_ = true;
    MinuteIndex chunkMinutes_ = 0; //!< minutes for the current run() call
    SlotHook slotHook_;
    Stats stats_;
};

} // namespace ecolo::core

#endif // ECOLO_CORE_LANE_BATCH_HH
