/**
 * @file
 * Per-run metrics and the per-minute record the reproduction harnesses use
 * to regenerate the paper's time-series figures.
 */

#ifndef ECOLO_CORE_METRICS_HH
#define ECOLO_CORE_METRICS_HH

#include <cstddef>

#include <vector>

#include "core/mdp.hh"
#include "util/sim_time.hh"
#include "util/state_io.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace ecolo::core {

/** Everything observable about one simulated minute. */
struct MinuteRecord
{
    MinuteIndex time = 0;
    Kilowatts meteredTotal{0.0};   //!< what the operator's meters see
    Kilowatts actualHeat{0.0};     //!< true total cooling load
    Kilowatts attackBatteryPower{0.0}; //!< behind-the-meter injection
    Kilowatts benignPower{0.0};
    Celsius maxInlet{27.0};
    Celsius supply{27.0};
    double batterySoc = 1.0;
    AttackAction action = AttackAction::Standby;
    bool cappingActive = false;
    bool outage = false;
    /** Degraded-mode (fault-response) command was in force this minute. */
    bool degraded = false;
    /** Commanded benign shed fraction in force this minute. */
    double shedFraction = 0.0;
    /** The side-channel estimate was held over (sensor fault). */
    bool estimateStale = false;
};

/** Aggregated over a run. */
class SimulationMetrics
{
  public:
    SimulationMetrics();

    /** Feed one minute's record plus the emergency-perf sample (if any). */
    void recordMinute(const MinuteRecord &record, Celsius supply_set_point,
                      Celsius mean_inlet);

    /** Add one emergency-minute performance sample (normalized p95). */
    void recordEmergencyPerf(double normalized_p95);

    /** Add one tenant's emergency-minute performance sample. */
    void recordTenantEmergencyPerf(std::size_t tenant,
                                   double normalized_p95);

    void noteEmergencyDeclared() { ++emergencies_; }
    void noteOutage() { ++outages_; }

    MinuteIndex minutes() const { return minutes_; }
    MinuteIndex attackMinutes() const { return attackMinutes_; }
    MinuteIndex emergencyMinutes() const { return emergencyMinutes_; }
    MinuteIndex outageMinutes() const { return outageMinutes_; }
    /** Minutes with a degraded-mode (fault-response) command in force. */
    MinuteIndex degradedMinutes() const { return degradedMinutes_; }
    std::size_t emergencies() const { return emergencies_; }
    std::size_t outages() const { return outages_; }

    /** Fraction of simulated time under emergency capping. */
    double emergencyFraction() const;
    /** Average attack time in hours per simulated day. */
    double attackHoursPerDay() const;
    /** Emergency time extrapolated to hours per year. */
    double emergencyHoursPerYear() const;

    /** Mean inlet-temperature rise above the set point (Fig. 11(b)). */
    const OnlineStats &inletRise() const { return inletRise_; }
    /** Max-inlet distribution (per-minute hottest inlet). */
    const OnlineStats &maxInlet() const { return maxInlet_; }
    /** Normalized p95 during emergency minutes (Fig. 11(d)). */
    const OnlineStats &emergencyPerf() const { return emergencyPerf_; }

    /** Per-benign-tenant emergency performance (index = tenant). */
    const std::vector<OnlineStats> &tenantEmergencyPerf() const
    { return tenantPerf_; }

    /**
     * Distribution of the per-minute hottest inlet ("probability
     * distribution of the temperature", one of the paper's evaluation
     * metrics). Bins span 25-50 C.
     */
    const Histogram &inletHistogram() const { return inletHistogram_; }

    KilowattHours attackerGridEnergy() const { return attackerGridEnergy_; }
    KilowattHours batteryEnergyDelivered() const
    { return batteryDelivered_; }

    /** Serialize / restore all accumulated metrics (checkpointing). */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

  private:
    MinuteIndex minutes_ = 0;
    MinuteIndex attackMinutes_ = 0;
    MinuteIndex emergencyMinutes_ = 0;
    MinuteIndex outageMinutes_ = 0;
    MinuteIndex degradedMinutes_ = 0;
    std::size_t emergencies_ = 0;
    std::size_t outages_ = 0;
    OnlineStats inletRise_;
    OnlineStats maxInlet_;
    OnlineStats emergencyPerf_;
    std::vector<OnlineStats> tenantPerf_;
    Histogram inletHistogram_;
    KilowattHours attackerGridEnergy_{0.0};
    KilowattHours batteryDelivered_{0.0};
};

} // namespace ecolo::core

#endif // ECOLO_CORE_METRICS_HH
