/**
 * @file
 * The engine/schema version constant stamped into every durable artifact
 * fingerprint (checkpoints, serve result-cache keys).
 *
 * Bump this whenever a change alters simulated trajectories or the
 * serialized state layout: the version participates in the checkpoint
 * fingerprints (core/checkpoint.hh, FleetSimulation) and in the
 * content-addressed result-cache key (serve/result_cache.hh), so an
 * artifact produced by an older build can never be restored or served as
 * a hit by a newer, behaviorally different one.
 */

#ifndef ECOLO_CORE_VERSION_HH
#define ECOLO_CORE_VERSION_HH

#include <cstdint>

namespace ecolo::core {

/**
 * Monotonically increasing engine/schema version. History:
 *  - 1: PR 2 checkpoint layer (implicit; checkpoints carried no version)
 *  - 2: PR 4 serving stack; version stamped into fingerprints/cache keys
 *  - 3: PR 5 streaming thermal kernel: Auto now resolves to the
 *       recurrent kernel (fp-level trajectory shift) and the thermal
 *       checkpoint section gained the kernel mode + mode accumulators
 *       (THIS -> THS2)
 */
inline constexpr std::uint32_t kEngineSchemaVersion = 3;

} // namespace ecolo::core

#endif // ECOLO_CORE_VERSION_HH
