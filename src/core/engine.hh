/**
 * @file
 * The discrete-time (1-minute slot) edge-colocation simulation engine.
 *
 * Wires together every substrate: tenant workload traces drive server
 * power; the attacker's policy drives its dual-source power supply; the
 * thermal environment turns actual heat into inlet temperatures; the
 * operator's protocol turns inlet temperatures into capping and outage
 * commands; and the latency model turns capping into tenant performance
 * degradation. One Simulation instance corresponds to one experiment run.
 */

#ifndef ECOLO_CORE_ENGINE_HH
#define ECOLO_CORE_ENGINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "battery/power_supply.hh"
#include "core/config.hh"
#include "core/metrics.hh"
#include "faults/fault.hh"
#include "core/operator.hh"
#include "core/policies.hh"
#include "perf/latency_model.hh"
#include "power/layout.hh"
#include "power/pdu.hh"
#include "power/tenant.hh"
#include "sidechannel/voltage_channel.hh"
#include "thermal/environment.hh"
#include "util/result.hh"
#include "util/rng.hh"

namespace ecolo::core {

/** One configured run of the edge colocation under a given attack policy. */
class Simulation
{
  public:
    using MinuteCallback = std::function<void(const MinuteRecord &)>;

    /**
     * Build the full system. The config seeds all randomness; two runs
     * with the same config and policy behave identically.
     */
    Simulation(SimulationConfig config,
               std::unique_ptr<AttackPolicy> policy);

    /** Advance the simulation by the given number of minutes. */
    void run(MinuteIndex num_minutes);

    /** Convenience: run whole days. */
    void runDays(double days);

    const SimulationMetrics &metrics() const { return metrics_; }
    const SimulationConfig &config() const { return config_; }
    AttackPolicy &policy() { return *policy_; }
    const AttackPolicy &policy() const { return *policy_; }

    /** Install a per-minute observer (time-series figures). */
    void setMinuteCallback(MinuteCallback callback)
    { callback_ = std::move(callback); }

    /**
     * Install a cooperative cancellation check, polled once per simulated
     * minute before the step. When it returns true, run() stops early
     * (now() tells how far it got); the simulation stays consistent and
     * can be checkpointed or resumed. Unset (the default) costs one
     * branch per minute and leaves trajectories bit-identical.
     */
    using CancelCheck = std::function<bool()>;
    void setCancelCheck(CancelCheck check)
    { cancel_ = std::move(check); }

    /** Current simulated minute. */
    MinuteIndex now() const { return now_; }

    // ---- Introspection for tests and harnesses ----
    const power::Tenant &benignTenant(std::size_t i) const
    { return benignTenants_.at(i); }
    std::size_t numBenignTenants() const { return benignTenants_.size(); }
    const battery::DualSourcePowerSupply &attackerSupply() const
    { return attackerSupply_; }
    const thermal::ThermalEnvironment &thermalEnvironment() const
    { return thermal_; }
    const ColoOperator &coloOperator() const { return operator_; }
    const power::Pdu &pdu() const { return pdu_; }

    /** Per-server heat of the most recent minute (defense harnesses). */
    const std::vector<Kilowatts> &lastServerHeat() const
    { return lastHeat_; }
    /** Per-server metered power of the most recent minute. */
    const std::vector<Kilowatts> &lastServerMetered() const
    { return lastMetered_; }

    /** Faults active during the most recently simulated minute. */
    const faults::ActiveFaults &activeFaults() const { return faultsNow_; }

    /**
     * Serialize the complete mutable state. A Simulation constructed from
     * the same config and policy kind, then restored with loadState,
     * continues bit-identically to the uninterrupted run (learning
     * policies excepted; see AttackPolicy::saveState).
     */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

  private:
    void buildTenants();
    void stepMinute();
    void applyFaultsForMinute();
    Kilowatts benignActualPower() const;
    AttackObservation makeObservation(bool capping, bool outage);

    SimulationConfig config_;
    power::DataCenterLayout layout_;
    Rng rng_;

    std::vector<power::Tenant> benignTenants_;
    power::Tenant attackerTenant_;
    battery::DualSourcePowerSupply attackerSupply_;

    thermal::ThermalEnvironment thermal_;
    sidechannel::VoltageSideChannel channel_;
    perf::LatencyModel latency_;
    power::Pdu pdu_;
    ColoOperator operator_;

    std::unique_ptr<AttackPolicy> policy_;

    OperatorCommand command_;       //!< command in force this minute
    AttackObservation lastObs_;
    AttackAction lastAction_ = AttackAction::Standby;
    bool havePending_ = false;

    /** True when the config carries a non-empty fault schedule; with an
     * empty schedule every fault hook is skipped (bit-identical runs). */
    bool faultsEnabled_ = false;
    faults::ActiveFaults faultsNow_;
    /** Last non-NaN side-channel estimate (sensor-fault fallback). */
    Kilowatts lastValidEstimate_{0.0};

    std::vector<Kilowatts> lastHeat_;
    std::vector<Kilowatts> lastMetered_;
    /** Side-channel per-sample scratch arena: sized on the first minute,
     * reused every minute after (no per-slot heap traffic). */
    std::vector<double> sampleScratch_;

    SimulationMetrics metrics_;
    MinuteCallback callback_;
    CancelCheck cancel_;
    MinuteIndex now_ = 0;
    std::size_t emergenciesSeen_ = 0;
    std::size_t outagesSeen_ = 0;

    // ---- Telemetry-only edge trackers. Deliberately NOT checkpointed:
    // telemetry is excluded from state fingerprints (see
    // telemetry/telemetry.hh), so a resumed run simply re-observes
    // transitions from the resume point onward. Only touched when
    // telemetry::enabled().
    OperatorState prevOpState_ = OperatorState::Normal;
    bool prevAnyCap_ = false;
    bool prevFaultsActive_ = false;
    int prevDegradedTier_ = 0;
    bool batteryDepletedLatched_ = false;
};

/** Factory helpers used across examples and benches. */
std::unique_ptr<AttackPolicy>
makeRandomPolicy(const SimulationConfig &config, double attack_probability);
std::unique_ptr<AttackPolicy>
makeMyopicPolicy(const SimulationConfig &config, Kilowatts threshold);
std::unique_ptr<ForesightedPolicy>
makeForesightedPolicy(const SimulationConfig &config, double weight,
                      bool warm_start = true);
std::unique_ptr<AttackPolicy>
makeOneShotPolicy(const SimulationConfig &config, Kilowatts threshold,
                  MinuteIndex arm_delay);

/**
 * Construct a policy from its CLI/RPC name
 * (standby|random|myopic|foresighted|oneshot). Fails with a
 * ValidationError naming the accepted set on an unknown name. Shared by
 * edgetherm_cli and the serving stack so both speak the same names.
 */
util::Result<std::unique_ptr<AttackPolicy>>
tryMakePolicyByName(const SimulationConfig &config,
                    const std::string &name, double param);

/** The per-policy default parameter (0.0 for standby/unknown names). */
double defaultPolicyParam(const std::string &name);

/** Minimum state of charge that funds one minute of attack. */
double minAttackSoc(const SimulationConfig &config);

} // namespace ecolo::core

#endif // ECOLO_CORE_ENGINE_HH
