/**
 * @file
 * The discrete-time (1-minute slot) edge-colocation simulation engine.
 *
 * Wires together every substrate: tenant workload traces drive server
 * power; the attacker's policy drives its dual-source power supply; the
 * thermal environment turns actual heat into inlet temperatures; the
 * operator's protocol turns inlet temperatures into capping and outage
 * commands; and the latency model turns capping into tenant performance
 * degradation. One Simulation instance corresponds to one experiment run.
 */

#ifndef ECOLO_CORE_ENGINE_HH
#define ECOLO_CORE_ENGINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "battery/power_supply.hh"
#include "core/config.hh"
#include "core/metrics.hh"
#include "faults/fault.hh"
#include "core/operator.hh"
#include "core/policies.hh"
#include "perf/latency_model.hh"
#include "power/layout.hh"
#include "power/pdu.hh"
#include "power/tenant.hh"
#include "sidechannel/voltage_channel.hh"
#include "thermal/environment.hh"
#include "util/result.hh"
#include "util/rng.hh"

namespace ecolo::core {

class LaneBatchRunner;

/**
 * One slot's shared benign-workload products, harvested once by a lane
 * group's leader and consumed by every follower lane (see
 * core/lane_batch.hh). Each field preserves the exact accumulation
 * association of the scalar consumer it substitutes for: tenantKw[k]
 * matches Tenant::actualPower's per-server chain, tenantTotal matches
 * benignActualPower's per-tenant chain, and flatTotal matches the heat
 * phase's single flat chain over all benign servers -- so shared values
 * are bitwise what each follower would have computed itself.
 */
struct SharedBenignSlot
{
    std::vector<double> serverKw;    //!< per benign server, global order
    std::vector<Kilowatts> tenantKw; //!< per-tenant actualPower sums
    Kilowatts tenantTotal{0.0};      //!< chain over tenantKw (observation)
    Kilowatts flatTotal{0.0};        //!< flat chain over benign servers
};

/** One configured run of the edge colocation under a given attack policy. */
class Simulation
{
  public:
    using MinuteCallback = std::function<void(const MinuteRecord &)>;

    /**
     * Build the full system. The config seeds all randomness; two runs
     * with the same config and policy behave identically.
     */
    Simulation(SimulationConfig config,
               std::unique_ptr<AttackPolicy> policy);

    /** Advance the simulation by the given number of minutes. */
    void run(MinuteIndex num_minutes);

    /** Convenience: run whole days. */
    void runDays(double days);

    const SimulationMetrics &metrics() const { return metrics_; }
    const SimulationConfig &config() const { return config_; }
    AttackPolicy &policy() { return *policy_; }
    const AttackPolicy &policy() const { return *policy_; }

    /** Install a per-minute observer (time-series figures). */
    void setMinuteCallback(MinuteCallback callback)
    { callback_ = std::move(callback); }

    /**
     * Install a cooperative cancellation check, polled once per simulated
     * minute before the step. When it returns true, run() stops early
     * (now() tells how far it got); the simulation stays consistent and
     * can be checkpointed or resumed. Unset (the default) costs one
     * branch per minute and leaves trajectories bit-identical.
     */
    using CancelCheck = std::function<bool()>;
    void setCancelCheck(CancelCheck check)
    { cancel_ = std::move(check); }

    /** Current simulated minute. */
    MinuteIndex now() const { return now_; }

    // ---- Introspection for tests and harnesses ----
    const power::Tenant &benignTenant(std::size_t i) const
    { return benignTenants_.at(i); }
    std::size_t numBenignTenants() const { return benignTenants_.size(); }
    const battery::DualSourcePowerSupply &attackerSupply() const
    { return attackerSupply_; }
    const thermal::ThermalEnvironment &thermalEnvironment() const
    { return thermal_; }
    const ColoOperator &coloOperator() const { return operator_; }
    const power::Pdu &pdu() const { return pdu_; }

    /** Per-server heat of the most recent minute (defense harnesses). */
    const std::vector<Kilowatts> &lastServerHeat() const
    { return lastHeat_; }
    /** Per-server metered power of the most recent minute. */
    const std::vector<Kilowatts> &lastServerMetered() const
    { return lastMetered_; }

    /** Faults active during the most recently simulated minute. */
    const faults::ActiveFaults &activeFaults() const { return faultsNow_; }

    /**
     * Serialize the complete mutable state. A Simulation constructed from
     * the same config and policy kind, then restored with loadState,
     * continues bit-identically to the uninterrupted run (learning
     * policies excepted; see AttackPolicy::saveState).
     */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

  private:
    // The lane-batch runner drives the per-slot phases below directly
    // (interleaving them across lanes) instead of going through
    // stepMinute; it also reads the workload fingerprint and the
    // thermal environment for packing.
    friend class LaneBatchRunner;

    /**
     * The locals of one stepMinute invocation, threaded through the
     * slot phases so the step can be decomposed (stepMinute) or
     * interleaved across lanes (LaneBatchRunner) with identical
     * behavior. Plain data; resetting and copying never allocates.
     */
    struct SlotContext
    {
        bool capping = false; //!< emergency capping in force
        bool outage = false;
        bool anyCap = false; //!< emergency or preventive capping
        Kilowatts capLevel{0.0};
        bool degradedNow = false;
        double shedFraction = 0.0;
        AttackObservation obs;
        AttackAction action = AttackAction::Standby;
        battery::SupplyResult supply{Kilowatts(0.0), Kilowatts(0.0),
                                     Kilowatts(0.0)};
        Kilowatts benignTotal{0.0};
        Kilowatts meteredTotal{0.0};
        Celsius maxInlet{0.0};
    };

    /** Thermal environment for the config, via config.setupCache (shared
     * matrix + factorization) when installed. */
    static thermal::ThermalEnvironment
    makeThermalEnvironment(const SimulationConfig &config,
                           const power::DataCenterLayout &layout);

    // ---- The per-minute step, split into phases. stepMinute calls them
    // in order; LaneBatchRunner calls the same methods per lane (the two
    // paths share every instruction, which is what makes lane execution
    // bit-identical). See stepMinute for the phase numbering.
    void slotBegin(SlotContext &ctx);
    /** True when this slot's benign-workload phase is a pure function of
     * the shared traces (no capping/outage/shed/failures/trace gap), so
     * a fingerprint-equal lane's results can be reused. */
    bool slotBenignUniform(const SlotContext &ctx) const;
    void slotWorkloadBenign(const SlotContext &ctx);
    void slotWorkloadAttacker(const SlotContext &ctx);
    void slotObserveDecide(SlotContext &ctx,
                           const Kilowatts *shared_benign_actual);
    void slotAttackerSupply(SlotContext &ctx);
    void slotHeatAndMeter(SlotContext &ctx, const SharedBenignSlot *shared);
    void slotThermal();
    /** Thermal phase when a LaneThermalBank advanced the matrix model:
     * apply the bank's (bit-identical) rises for this lane. */
    void slotThermalFromBank(const double *rises, std::size_t stride);
    void slotOperatorReact(SlotContext &ctx);
    void slotFinish(const SlotContext &ctx);

    /** Compute the shared products of a just-run benign workload phase
     * (group leader only; out's vectors must be pre-sized). */
    void harvestSharedBenign(SharedBenignSlot &out) const;
    /** Re-derive the benign servers' state for the last simulated minute
     * after follower slots skipped the workload phase (only ever called
     * when every skipped slot was uniform: trace applied, powered on,
     * caps clear). */
    void restoreBenignWorkload();

    void buildTenants();
    void stepMinute();
    void applyFaultsForMinute();
    Kilowatts benignActualPower() const;
    AttackObservation makeObservation(
        bool capping, bool outage,
        const Kilowatts *benign_actual_override = nullptr);

    SimulationConfig config_;
    power::DataCenterLayout layout_;
    Rng rng_;

    std::vector<power::Tenant> benignTenants_;
    power::Tenant attackerTenant_;
    battery::DualSourcePowerSupply attackerSupply_;

    thermal::ThermalEnvironment thermal_;
    sidechannel::VoltageSideChannel channel_;
    perf::LatencyModel latency_;
    power::Pdu pdu_;
    ColoOperator operator_;

    std::unique_ptr<AttackPolicy> policy_;

    OperatorCommand command_;       //!< command in force this minute
    AttackObservation lastObs_;
    AttackAction lastAction_ = AttackAction::Standby;
    bool havePending_ = false;

    /** True when the config carries a non-empty fault schedule; with an
     * empty schedule every fault hook is skipped (bit-identical runs). */
    bool faultsEnabled_ = false;
    /** Hash of everything the benign workload phase is a function of
     * (seed, generator kind/params, scaling inputs); equal fingerprints
     * mean identical scaled traces and tenant structure. 0 = external
     * traces, never shareable. */
    std::uint64_t workloadFingerprint_ = 0;
    faults::ActiveFaults faultsNow_;
    /** Last non-NaN side-channel estimate (sensor-fault fallback). */
    Kilowatts lastValidEstimate_{0.0};

    std::vector<Kilowatts> lastHeat_;
    std::vector<Kilowatts> lastMetered_;
    /** Side-channel per-sample scratch arena: sized on the first minute,
     * reused every minute after (no per-slot heap traffic). */
    std::vector<double> sampleScratch_;

    SimulationMetrics metrics_;
    MinuteCallback callback_;
    CancelCheck cancel_;
    MinuteIndex now_ = 0;
    std::size_t emergenciesSeen_ = 0;
    std::size_t outagesSeen_ = 0;

    // ---- Telemetry-only edge trackers. Deliberately NOT checkpointed:
    // telemetry is excluded from state fingerprints (see
    // telemetry/telemetry.hh), so a resumed run simply re-observes
    // transitions from the resume point onward. Only touched when
    // telemetry::enabled().
    OperatorState prevOpState_ = OperatorState::Normal;
    bool prevAnyCap_ = false;
    bool prevFaultsActive_ = false;
    int prevDegradedTier_ = 0;
    bool batteryDepletedLatched_ = false;
};

/** Factory helpers used across examples and benches. */
std::unique_ptr<AttackPolicy>
makeRandomPolicy(const SimulationConfig &config, double attack_probability);
std::unique_ptr<AttackPolicy>
makeMyopicPolicy(const SimulationConfig &config, Kilowatts threshold);
std::unique_ptr<ForesightedPolicy>
makeForesightedPolicy(const SimulationConfig &config, double weight,
                      bool warm_start = true);
std::unique_ptr<AttackPolicy>
makeOneShotPolicy(const SimulationConfig &config, Kilowatts threshold,
                  MinuteIndex arm_delay);

/**
 * Construct a policy from its CLI/RPC name
 * (standby|random|myopic|foresighted|oneshot). Fails with a
 * ValidationError naming the accepted set on an unknown name. Shared by
 * edgetherm_cli and the serving stack so both speak the same names.
 */
util::Result<std::unique_ptr<AttackPolicy>>
tryMakePolicyByName(const SimulationConfig &config,
                    const std::string &name, double param);

/** The per-policy default parameter (0.0 for standby/unknown names). */
double defaultPolicyParam(const std::string &name);

/** Minimum state of charge that funds one minute of attack. */
double minAttackSoc(const SimulationConfig &config);

} // namespace ecolo::core

#endif // ECOLO_CORE_ENGINE_HH
