#include "core/engine.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/setup_cache.hh"
#include "telemetry/telemetry.hh"
#include "trace/generators.hh"
#include "util/logging.hh"

namespace ecolo::core {

namespace {

/** Per-tenant jitter so the three benign tenants are not clones. */
trace::UtilizationTrace
makeBenignTrace(const SimulationConfig &config, std::size_t tenant_index,
                Rng &rng)
{
    const std::size_t horizon = kMinutesPerYear;
    const auto k = static_cast<double>(tenant_index);
    if (config.traceKind == TraceKind::GoogleStyle) {
        trace::GoogleStyleTraceGenerator::Params params =
            config.googleParams;
        params.peakHour += k * 0.7;
        params.meanDwellMinutes *= 1.0 + 0.15 * k;
        return trace::GoogleStyleTraceGenerator(params).generate(horizon,
                                                                 rng);
    }
    if (config.traceKind == TraceKind::RequestLevel) {
        trace::RequestTraceGenerator::Params params;
        params.peakHour += 0.4 * (k - 1.0);
        params.peakRequestsPerSecond *= 1.0 + 0.05 * (k - 1.0);
        return trace::RequestTraceGenerator(params).generate(horizon, rng);
    }
    trace::DiurnalTraceGenerator::Params params = config.diurnalParams;
    params.peakHour += 0.4 * (k - 1.0);  // stagger peaks around 14:00
    params.baseUtilization += 0.02 * (k - 1.0);
    params.burstsPerDay += k;
    return trace::DiurnalTraceGenerator(params).generate(horizon, rng);
}

} // namespace

Simulation::Simulation(SimulationConfig config,
                       std::unique_ptr<AttackPolicy> policy)
    : config_([&] {
          config.validate();
          return config;
      }()),
      layout_(config_.layout),
      rng_(config_.seed),
      attackerTenant_("attacker", config_.attackerSubscription,
                      config_.attackerNumServers, config_.serverSpec),
      attackerSupply_(config_.batterySpec, config_.attackerSubscription),
      thermal_(makeThermalEnvironment(config_, layout_)),
      channel_(config_.sideChannel, Rng(config_.seed ^ 0x5e1dc4a2ULL)),
      latency_(config_.latency),
      pdu_(config_.capacity),
      operator_([&] {
          ColoOperator::Params params;
          params.emergencyThreshold = config_.emergencyThreshold;
          params.sustainMinutes = config_.emergencySustainMinutes;
          params.cappingMinutes = config_.cappingMinutes;
          params.shutdownThreshold = config_.shutdownThreshold;
          params.outageRestartMinutes = config_.outageRestartMinutes;
          params.adaptiveCapping = config_.adaptiveCapping;
          return params;
      }()),
      policy_(std::move(policy)),
      faultsEnabled_(!config_.faultSchedule.empty()),
      lastValidEstimate_(config_.attackerSubscription),
      lastHeat_(config_.numServers(), Kilowatts(0.0)),
      lastMetered_(config_.numServers(), Kilowatts(0.0))
{
    ECOLO_ASSERT(policy_ != nullptr, "simulation needs an attack policy");
    ECOLO_ASSERT(layout_.numServers() == config_.numServers(),
                 "layout/server-count mismatch");
    buildTenants();

    pdu_.addCircuit("attacker", config_.attackerSubscription);
    for (const auto &tenant : benignTenants_)
        pdu_.addCircuit(tenant.name(), tenant.subscribedCapacity());
}

thermal::ThermalEnvironment
Simulation::makeThermalEnvironment(const SimulationConfig &config,
                                   const power::DataCenterLayout &layout)
{
    if (config.setupCache) {
        auto &cache = *config.setupCache;
        auto matrix =
            cache.matrix(SetupCache::matrixKey(config), [&] {
                return thermal::HeatDistributionMatrix::analyticDefault(
                    layout, config.matrixParams,
                    config.matrixHorizonMinutes);
            });
        // The factorization is the single most expensive thermal setup
        // step and is shared by the factorized and streaming kernels;
        // the dense kernel never computes one, so do not force it here.
        std::shared_ptr<const thermal::TemporalFactorization> factors;
        if (config.thermalMode != thermal::KernelMode::Dense) {
            factors = cache.factorization(
                SetupCache::factorizationKey(config), [&] {
                    return thermal::TemporalFactorization::compute(
                        *matrix, config.factorization);
                });
        }
        return thermal::ThermalEnvironment(
            *matrix, config.cooling, 15.0, config.thermalMode,
            config.factorization, std::move(factors));
    }
    return thermal::ThermalEnvironment(
        thermal::HeatDistributionMatrix::analyticDefault(
            layout, config.matrixParams, config.matrixHorizonMinutes),
        config.cooling, 15.0, config.thermalMode, config.factorization);
}

void
Simulation::buildTenants()
{
    const std::size_t per_tenant = config_.serversPerBenignTenant();
    benignTenants_.reserve(config_.numBenignTenants);
    // Always fork, even when the trace cache hits: the fork advances
    // rng_, and the engine's own stream must not depend on whether a
    // cache was installed.
    Rng trace_rng = rng_.fork();
    SetupCache *cache = (config_.setupCache != nullptr &&
                         config_.externalBenignTraces.empty())
                            ? config_.setupCache.get()
                            : nullptr;

    std::shared_ptr<const SetupCache::TraceSet> cached_traces;
    if (cache != nullptr) {
        cached_traces = cache->traceSet(
            SetupCache::traceSetKey(config_), [&] {
                // Generation consumes trace_rng exactly as the uncached
                // path below does, so hit and miss yield the same traces.
                SetupCache::TraceSet set(config_.numBenignTenants);
                if (config_.traceKind == TraceKind::GoogleStyle) {
                    const trace::UtilizationTrace shared =
                        makeBenignTrace(config_, 0, trace_rng);
                    for (auto &t : set)
                        t = shared;
                } else {
                    for (std::size_t k = 0; k < set.size(); ++k)
                        set[k] = makeBenignTrace(config_, k, trace_rng);
                }
                return set;
            });
    }
    // The alternate (Google-style) trace models ONE recorded cluster
    // trace driving the whole site (the paper's "alternate total power
    // trace"), so every tenant shares it; the default diurnal trace is
    // per-tenant with jitter.
    trace::UtilizationTrace shared_alternate;
    if (cache == nullptr && config_.traceKind == TraceKind::GoogleStyle &&
        config_.externalBenignTraces.empty()) {
        shared_alternate = makeBenignTrace(config_, 0, trace_rng);
    }
    for (std::size_t k = 0; k < config_.numBenignTenants; ++k) {
        benignTenants_.emplace_back("tenant-" + std::to_string(k + 1),
                                    config_.benignSubscription(),
                                    per_tenant, config_.serverSpec);
        if (!config_.externalBenignTraces.empty()) {
            benignTenants_.back().setTrace(
                config_.externalBenignTraces[k]);
        } else if (cached_traces != nullptr) {
            benignTenants_.back().setTrace((*cached_traces)[k]);
        } else if (!shared_alternate.empty()) {
            benignTenants_.back().setTrace(shared_alternate);
        } else {
            benignTenants_.back().setTrace(
                makeBenignTrace(config_, k, trace_rng));
        }
    }

    // Scale so that the *whole* data center (attacker idling on dummy
    // workloads included) averages the configured utilization of capacity.
    const Kilowatts attacker_standby =
        config_.serverSpec.powerAt(config_.attackerStandbyUtilization) *
        static_cast<double>(config_.attackerNumServers);
    const Kilowatts target =
        config_.capacity * config_.averageUtilization - attacker_standby;
    ECOLO_ASSERT(target.value() > 0.0,
                 "average utilization target leaves no benign power");
    std::vector<power::Tenant *> tenant_ptrs;
    for (auto &tenant : benignTenants_)
        tenant_ptrs.push_back(&tenant);
    if (cache != nullptr) {
        const double factor = cache->scaleFactor(
            SetupCache::scaleFactorKey(config_), [&] {
                return power::computeMeanPowerScaleFactor(tenant_ptrs,
                                                          target);
            });
        power::applyTraceScale(tenant_ptrs, factor);
    } else {
        power::scaleTenantsToMeanPower(tenant_ptrs, target);
    }

    workloadFingerprint_ = config_.externalBenignTraces.empty()
                               ? SetupCache::scaleFactorKey(config_)
                               : 0;
}

Kilowatts
Simulation::benignActualPower() const
{
    Kilowatts total(0.0);
    for (const auto &tenant : benignTenants_)
        total += tenant.actualPower();
    return total;
}

AttackObservation
Simulation::makeObservation(bool capping, bool outage,
                            const Kilowatts *benign_actual_override)
{
    AttackObservation obs;
    obs.time = now_;
    obs.batterySoc = attackerSupply_.battery().soc();
    obs.cappingActive = capping;
    obs.outage = outage;

    if (outage) {
        obs.estimatedLoad = config_.attackerSubscription;
    } else {
        // The attacker estimates the benign aggregate via the voltage side
        // channel (it knows and subtracts its own draw), then reasons in
        // terms of "benign load + my subscription" as in the paper. The
        // channel averages the per-minute ripple samples into the
        // engine-owned scratch (sized once; the slot loop allocates
        // nothing afterwards). A lane group's leader may pass in the
        // shared benign aggregate (bitwise equal to what this lane would
        // compute; see SharedBenignSlot).
        const Kilowatts benign_actual = benign_actual_override != nullptr
                                            ? *benign_actual_override
                                            : benignActualPower();
        Kilowatts estimate(0.0);
        {
            telemetry::TraceSpan span("engine.sidechannel");
            estimate = channel_.estimateAveraged(
                benign_actual, config_.sideChannel.samplesPerEstimate,
                sampleScratch_);
        }
        if (std::isnan(estimate.value())) {
            // Sensor fault (dropout / corrupted samples): hold the last
            // valid estimate. Policies discretize estimatedLoad into
            // table indices, so a NaN must never reach them.
            obs.estimatedLoad = lastValidEstimate_;
            obs.estimateStale = true;
            ECOLO_WARN_RATE_LIMITED(
                5, "side-channel estimate invalid at minute ", now_,
                "; holding last valid estimate (",
                lastValidEstimate_.value(), " kW)");
            if (telemetry::enabled()) {
                telemetry::registry()
                    .counter("sidechannel.estimate.stale").inc();
            }
        } else {
            obs.estimatedLoad = estimate + config_.attackerSubscription;
            lastValidEstimate_ = obs.estimatedLoad;
            if (telemetry::enabled()) {
                telemetry::registry()
                    .histogram("sidechannel.estimate_error_kw")
                    .add(std::abs(estimate.value() -
                                  benign_actual.value()));
            }
        }
    }

    // The attacker's own inlet sensors: its servers are the first
    // attackerNumServers global indices (bottom of rack 0).
    double hottest = -1e30;
    for (std::size_t i = 0; i < config_.attackerNumServers; ++i)
        hottest = std::max(hottest,
                           thermal_.inletTemperature(i).value());
    obs.inletTemperature = Celsius(hottest);
    return obs;
}

void
Simulation::slotBegin(SlotContext &ctx)
{
    // ---- 0. Fault injection (skipped entirely on healthy configs). ----
    if (faultsEnabled_) {
        applyFaultsForMinute();
        if (telemetry::enabled()) {
            const bool faults_active = faultsNow_.any();
            if (faults_active != prevFaultsActive_) {
                telemetry::emitEvent(now_,
                                     faults_active
                                         ? telemetry::EventKind::
                                               FaultActivated
                                         : telemetry::EventKind::
                                               FaultExpired);
                prevFaultsActive_ = faults_active;
            }
        }
    }

    ctx.capping = command_.capServers;
    ctx.outage = command_.outage;
    // Degraded-mode preventive capping (operator fault response) caps at
    // its own level when no emergency cap is in force.
    const bool preventive =
        !ctx.capping && command_.preventiveCapLevel.has_value();
    ctx.anyCap = ctx.capping || preventive;
    ctx.capLevel =
        ctx.capping
            ? command_.capLevel.value_or(config_.perServerCap)
            : command_.preventiveCapLevel.value_or(config_.perServerCap);
    ctx.degradedNow = command_.degraded;
    ctx.shedFraction = command_.shedFraction;

    if (telemetry::enabled() && ctx.anyCap != prevAnyCap_) {
        telemetry::emitEvent(now_,
                             ctx.anyCap
                                 ? telemetry::EventKind::CappingStart
                                 : telemetry::EventKind::CappingEnd,
                             ctx.anyCap ? ctx.capLevel.value() : 0.0);
        prevAnyCap_ = ctx.anyCap;
    }
}

bool
Simulation::slotBenignUniform(const SlotContext &ctx) const
{
    if (ctx.anyCap || ctx.outage)
        return false;
    if (faultsEnabled_ &&
        (faultsNow_.traceGap || faultsNow_.failedServers > 0))
        return false;
    // Mirror the workload phase's shed computation exactly: a fraction
    // small enough to shed zero servers leaves the slot uniform.
    const std::size_t num_benign = config_.numBenignServers();
    const std::size_t shed = static_cast<std::size_t>(
        ctx.shedFraction * static_cast<double>(num_benign));
    return shed == 0;
}

void
Simulation::slotWorkloadBenign(const SlotContext &ctx)
{
    // ---- 1. Benign tenants follow their traces; operator commands. ----
    // A trace-gap fault freezes the telemetry feed: tenants keep replaying
    // the last pre-gap minute instead of dying on missing data.
    const MinuteIndex trace_minute =
        (faultsEnabled_ && faultsNow_.traceGap)
            ? std::max<MinuteIndex>(0, faultsNow_.traceGapStart - 1)
            : now_;
    for (auto &tenant : benignTenants_) {
        tenant.applyTraceAt(trace_minute);
        tenant.setPoweredOn(!ctx.outage);
        if (ctx.anyCap)
            tenant.setPerServerCap(ctx.capLevel);
        else
            tenant.clearCaps();
    }

    // Hard server failures (fault) and commanded partial shutdown
    // (degraded-mode response) power off benign servers from the back of
    // the bank; both are zero on healthy runs.
    if (!ctx.outage) {
        const std::size_t num_benign = config_.numBenignServers();
        const std::size_t shed = static_cast<std::size_t>(
            ctx.shedFraction * static_cast<double>(num_benign));
        const std::size_t failed =
            faultsEnabled_ ? faultsNow_.failedServers : 0;
        std::size_t remaining = std::min(num_benign, shed + failed);
        for (auto tenant = benignTenants_.rbegin();
             tenant != benignTenants_.rend() && remaining > 0; ++tenant) {
            auto &servers = tenant->servers();
            for (auto srv = servers.rbegin();
                 srv != servers.rend() && remaining > 0; ++srv) {
                srv->setPoweredOn(false);
                --remaining;
            }
        }
    }
}

void
Simulation::slotWorkloadAttacker(const SlotContext &ctx)
{
    attackerTenant_.setPoweredOn(!ctx.outage);
    if (ctx.anyCap)
        attackerTenant_.setPerServerCap(ctx.capLevel);
    else
        attackerTenant_.clearCaps();
}

void
Simulation::slotObserveDecide(SlotContext &ctx,
                              const Kilowatts *shared_benign_actual)
{
    // ---- 2. Observation, learning feedback, day boundary. ----
    ctx.obs = makeObservation(ctx.anyCap, ctx.outage,
                              shared_benign_actual);
    if (havePending_)
        policy_->feedback(lastObs_, lastAction_, ctx.obs);
    if (now_ > 0 && now_ % kMinutesPerDay == 0)
        policy_->onDayBoundary(dayIndex(now_));

    // ---- 3. Decide and enforce protocol compliance. ----
    {
        telemetry::TraceSpan span("engine.policy_decide");
        ctx.action = policy_->decide(ctx.obs);
    }
    if (ctx.outage) {
        ctx.action = AttackAction::Standby;
    } else if (ctx.anyCap && !policy_->ignoresCapping() &&
               ctx.action == AttackAction::Attack) {
        ctx.action = ctx.obs.batterySoc < 1.0 ? AttackAction::Charge
                                              : AttackAction::Standby;
    }
}

void
Simulation::slotAttackerSupply(SlotContext &ctx)
{
    // ---- 4. Attacker power execution. ----
    // A BMS cutout isolates the battery: neither discharging (the attack
    // fizzles at the grid cap) nor charging is possible.
    const bool bms_cutout = faultsEnabled_ && faultsNow_.bmsCutout;
    ctx.supply = battery::SupplyResult{Kilowatts(0.0), Kilowatts(0.0),
                                       Kilowatts(0.0)};
    if (!ctx.outage) {
        std::optional<Kilowatts> grid_limit;
        if (ctx.anyCap)
            grid_limit = ctx.capLevel *
                         static_cast<double>(config_.attackerNumServers);
        switch (ctx.action) {
          case AttackAction::Attack: {
            attackerTenant_.setUtilization(1.0);
            const Kilowatts demand =
                config_.attackerSubscription + config_.attackLoad;
            ctx.supply = attackerSupply_.step(
                demand,
                bms_cutout ? battery::SupplyMode::GridOnly
                           : battery::SupplyMode::DischargeBattery,
                minutes(1), grid_limit);
            break;
          }
          case AttackAction::Charge: {
            attackerTenant_.setUtilization(
                config_.attackerStandbyUtilization);
            ctx.supply = attackerSupply_.step(
                attackerTenant_.actualPower(),
                bms_cutout ? battery::SupplyMode::GridOnly
                           : battery::SupplyMode::ChargeBattery,
                minutes(1), grid_limit);
            break;
          }
          case AttackAction::Standby: {
            attackerTenant_.setUtilization(
                config_.attackerStandbyUtilization);
            ctx.supply = attackerSupply_.step(
                attackerTenant_.actualPower(),
                battery::SupplyMode::GridOnly, minutes(1), grid_limit);
            break;
          }
        }
    }
}

void
Simulation::slotHeatAndMeter(SlotContext &ctx,
                             const SharedBenignSlot *shared)
{
    // ---- 5. Per-server heat and metering. ----
    const std::size_t n_attacker = config_.attackerNumServers;
    const Kilowatts attacker_heat_per_server =
        ctx.supply.serverPower / static_cast<double>(n_attacker);
    const Kilowatts attacker_grid_per_server =
        ctx.supply.gridPower / static_cast<double>(n_attacker);
    std::size_t server = 0;
    for (; server < n_attacker; ++server) {
        lastHeat_[server] = attacker_heat_per_server;
        lastMetered_[server] = attacker_grid_per_server;
    }
    Kilowatts benign_total(0.0);
    if (shared != nullptr) {
        // Follower lane of a uniform slot: the leader's harvested values
        // are bitwise what the loop below would recompute.
        const std::size_t num_benign = config_.numBenignServers();
        for (std::size_t i = 0; i < num_benign; ++i, ++server) {
            const Kilowatts p(shared->serverKw[i]);
            lastHeat_[server] = p;
            lastMetered_[server] = p;
        }
        benign_total = shared->flatTotal;
    } else {
        for (const auto &tenant : benignTenants_) {
            for (const auto &srv : tenant.servers()) {
                const Kilowatts p = srv.actualPower();
                lastHeat_[server] = p;
                lastMetered_[server] = p;
                benign_total += p;
                ++server;
            }
        }
    }
    ECOLO_ASSERT(server == config_.numServers(),
                 "server heat vector not fully populated");

    pdu_.setEnergized(!ctx.outage);
    pdu_.setCircuitDraw(0, ctx.supply.gridPower);
    for (std::size_t k = 0; k < benignTenants_.size(); ++k)
        pdu_.setCircuitDraw(k + 1,
                            shared != nullptr
                                ? shared->tenantKw[k]
                                : benignTenants_[k].actualPower());
    ctx.benignTotal = benign_total;
    ctx.meteredTotal = pdu_.totalMeteredPower();
}

void
Simulation::slotThermal()
{
    // ---- 6a. Thermal step. ----
    telemetry::TraceSpan span("engine.thermal_step");
    thermal_.stepMinute(lastHeat_);
}

void
Simulation::slotThermalFromBank(const double *rises, std::size_t stride)
{
    telemetry::TraceSpan span("engine.thermal_step");
    thermal_.applyLaneStep(lastHeat_, rises, stride);
}

void
Simulation::slotOperatorReact(SlotContext &ctx)
{
    // ---- 6b. Operator reaction. ----
    // The attacker's batteries breathe the data center air; with a
    // thermally-aware battery spec this derates their usable capacity.
    attackerSupply_.battery().setAmbient(thermal_.inletTemperature(0));
    ctx.maxInlet = thermal_.maxInletTemperature();
    const Celsius max_inlet = ctx.maxInlet;
    // The operator trips on its own (possibly noisy) sensors; with noise
    // configured, occasional spurious emergencies occur even without an
    // attack -- the statistics the paper notes an attacker could hide
    // behind (Section VII-B).
    Celsius sensed_inlet = max_inlet;
    if (config_.operatorSensorNoise > 0.0) {
        sensed_inlet = max_inlet + CelsiusDelta(rng_.normal(
                           0.0, config_.operatorSensorNoise));
    }
    // The operator's own health telemetry: CRAC derating is visible on
    // the unit's controller, and a telemetry dropout blinds the inlet
    // feed (the operator falls back to its last good reading).
    DegradedContext degraded_ctx;
    if (faultsEnabled_) {
        degraded_ctx.coolingCapacityFactor =
            faultsNow_.coolingCapacityFactor;
        degraded_ctx.sensorValid = !faultsNow_.sideChannelDropout;
    }
    command_ = operator_.observeMinute(sensed_inlet, degraded_ctx);

    while (emergenciesSeen_ < operator_.emergenciesDeclared()) {
        metrics_.noteEmergencyDeclared();
        ++emergenciesSeen_;
        if (telemetry::enabled())
            telemetry::registry().counter("engine.emergency.declared").inc();
    }
    while (outagesSeen_ < operator_.outages()) {
        metrics_.noteOutage();
        ++outagesSeen_;
        if (telemetry::enabled())
            telemetry::registry().counter("engine.outage.count").inc();
    }

    if (telemetry::enabled()) {
        using telemetry::EventKind;
        const OperatorState op_state = operator_.state();
        if (op_state != prevOpState_) {
            if (op_state == OperatorState::Emergency) {
                telemetry::emitEvent(now_, EventKind::EmergencyDeclared,
                                     sensed_inlet.value());
            } else if (prevOpState_ == OperatorState::Emergency) {
                telemetry::emitEvent(now_, EventKind::EmergencyCleared,
                                     sensed_inlet.value());
            }
            if (op_state == OperatorState::Outage) {
                telemetry::emitEvent(now_, EventKind::Outage,
                                     sensed_inlet.value());
            } else if (prevOpState_ == OperatorState::Outage) {
                telemetry::emitEvent(now_, EventKind::OutageEnded,
                                     sensed_inlet.value());
            }
            prevOpState_ = op_state;
        }

        // Degraded-mode severity tier: 0 = healthy, 1 = set-point raise
        // only, 2 = preventive capping, 3 = partial shutdown.
        int tier = 0;
        if (command_.degraded) {
            tier = 1;
            if (command_.preventiveCapLevel.has_value())
                tier = 2;
            if (command_.shedFraction > 0.0)
                tier = 3;
        }
        if (tier != prevDegradedTier_) {
            telemetry::emitEvent(now_, EventKind::DegradedTierChange,
                                 static_cast<double>(tier));
            prevDegradedTier_ = tier;
        }

        const double soc = attackerSupply_.battery().soc();
        const double min_soc = minAttackSoc(config_);
        if (!batteryDepletedLatched_ && soc < min_soc) {
            telemetry::emitEvent(now_, EventKind::BatteryDepleted, soc);
            batteryDepletedLatched_ = true;
        } else if (batteryDepletedLatched_ && soc >= min_soc) {
            batteryDepletedLatched_ = false; // re-arm after recharge
        }

        auto &reg = telemetry::registry();
        reg.counter("engine.minutes").inc();
        if (ctx.anyCap)
            reg.counter("engine.capping.minutes").inc();
        if (ctx.action == AttackAction::Attack)
            reg.counter("engine.attack.minutes").inc();
        reg.gauge("engine.inlet.max_c").set(max_inlet.value());
        reg.gauge("battery.soc").set(soc);
    }
}

void
Simulation::slotFinish(const SlotContext &ctx)
{
    // ---- 7. Performance accounting during capped minutes. ----
    if (ctx.anyCap && !ctx.outage) {
        double sum = 0.0;
        for (std::size_t k = 0; k < benignTenants_.size(); ++k) {
            const auto &tenant = benignTenants_[k];
            const Kilowatts demand = tenant.demandPower();
            const double fraction =
                demand.value() > 1e-9
                    ? std::clamp(tenant.actualPower() / demand, 1e-6, 1.0)
                    : 1.0;
            const double norm =
                latency_.normalizedP95(tenant.utilization(), fraction);
            metrics_.recordTenantEmergencyPerf(k, norm);
            sum += norm;
        }
        metrics_.recordEmergencyPerf(
            sum / static_cast<double>(benignTenants_.size()));
    }

    // ---- 8. Record the minute. ----
    MinuteRecord record;
    record.time = now_;
    record.meteredTotal = ctx.meteredTotal;
    record.actualHeat = [&] {
        Kilowatts total(0.0);
        for (Kilowatts h : lastHeat_)
            total += h;
        return total;
    }();
    record.attackBatteryPower =
        std::max(Kilowatts(0.0), ctx.supply.batteryPower);
    record.benignPower = ctx.benignTotal;
    record.maxInlet = ctx.maxInlet;
    record.supply = thermal_.supplyTemperature();
    record.batterySoc = attackerSupply_.battery().soc();
    record.action = ctx.action;
    record.cappingActive = ctx.capping;
    record.outage = ctx.outage;
    record.degraded = ctx.degradedNow;
    record.shedFraction = ctx.shedFraction;
    record.estimateStale = ctx.obs.estimateStale;
    metrics_.recordMinute(record, config_.cooling.supplySetPoint,
                          thermal_.meanInletTemperature());
    if (callback_)
        callback_(record);

    lastObs_ = ctx.obs;
    lastAction_ = ctx.action;
    havePending_ = true;
    ++now_;
}

void
Simulation::harvestSharedBenign(SharedBenignSlot &out) const
{
    std::size_t idx = 0;
    Kilowatts tenant_total(0.0);
    Kilowatts flat_total(0.0);
    for (std::size_t k = 0; k < benignTenants_.size(); ++k) {
        const auto &tenant = benignTenants_[k];
        Kilowatts tenant_kw(0.0);
        for (const auto &srv : tenant.servers()) {
            const Kilowatts p = srv.actualPower();
            out.serverKw[idx++] = p.value();
            tenant_kw += p;    // Tenant::actualPower's chain
            flat_total += p;   // the heat phase's flat chain
        }
        out.tenantKw[k] = tenant_kw;
        tenant_total += tenant_kw; // benignActualPower's chain
    }
    out.tenantTotal = tenant_total;
    out.flatTotal = flat_total;
}

void
Simulation::restoreBenignWorkload()
{
    if (now_ <= 0)
        return;
    // The workload phase of a uniform slot is exactly this (trace at the
    // slot's minute, powered on, caps clear), so re-deriving it for the
    // last simulated minute reproduces the skipped phases' net effect.
    const MinuteIndex trace_minute = now_ - 1;
    for (auto &tenant : benignTenants_) {
        tenant.applyTraceAt(trace_minute);
        tenant.setPoweredOn(true);
        tenant.clearCaps();
    }
}

void
Simulation::stepMinute()
{
    // The scalar step: the phases in their original order. The lane
    // runner calls these same methods (interleaved across lanes), which
    // is what keeps the two execution paths bit-identical.
    SlotContext ctx;
    slotBegin(ctx);
    slotWorkloadBenign(ctx);
    slotWorkloadAttacker(ctx);
    slotObserveDecide(ctx, nullptr);
    slotAttackerSupply(ctx);
    slotHeatAndMeter(ctx, nullptr);
    slotThermal();
    slotOperatorReact(ctx);
    slotFinish(ctx);
}

void
Simulation::applyFaultsForMinute()
{
    faultsNow_ = config_.faultSchedule.activeAt(now_);

    // CRAC faults derate the cooling plant; the operator's commanded
    // set-point raise (a degraded-mode response decided last minute) is
    // applied alongside so the two compose in the capacity model.
    thermal_.cooling().setFaultDerating(faultsNow_.coolingCapacityFactor,
                                        faultsNow_.coolingRecoveryFactor);
    thermal_.cooling().setSetPointOffset(command_.setPointRaise);
    attackerSupply_.battery().setFaultCapacityFactor(
        faultsNow_.batteryCapacityFactor);

    using sidechannel::SensorFaultMode;
    SensorFaultMode mode = SensorFaultMode::Healthy;
    if (faultsNow_.sideChannelDropout)
        mode = SensorFaultMode::Dropout;
    else if (faultsNow_.sideChannelNan)
        mode = SensorFaultMode::Nan;
    else if (faultsNow_.sideChannelStuck)
        mode = SensorFaultMode::Stuck;
    channel_.setFaultMode(mode);
}

void
Simulation::saveState(util::StateWriter &writer) const
{
    writer.tag("SIM ");
    writer.i64(now_);
    rng_.saveState(writer);

    writer.boolean(command_.capServers);
    writer.boolean(command_.outage);
    writer.boolean(command_.capLevel.has_value());
    writer.f64(command_.capLevel ? command_.capLevel->value() : 0.0);
    writer.boolean(command_.preventiveCapLevel.has_value());
    writer.f64(command_.preventiveCapLevel
                   ? command_.preventiveCapLevel->value()
                   : 0.0);
    writer.f64(command_.setPointRaise.value());
    writer.f64(command_.shedFraction);
    writer.boolean(command_.degraded);

    writer.i64(lastObs_.time);
    writer.f64(lastObs_.batterySoc);
    writer.f64(lastObs_.estimatedLoad.value());
    writer.f64(lastObs_.inletTemperature.value());
    writer.boolean(lastObs_.cappingActive);
    writer.boolean(lastObs_.outage);
    writer.boolean(lastObs_.estimateStale);
    writer.u32(static_cast<std::uint32_t>(lastAction_));
    writer.boolean(havePending_);
    writer.f64(lastValidEstimate_.value());
    writer.u64(emergenciesSeen_);
    writer.u64(outagesSeen_);

    std::vector<double> kw(lastHeat_.size());
    for (std::size_t i = 0; i < lastHeat_.size(); ++i)
        kw[i] = lastHeat_[i].value();
    writer.f64Vector(kw);
    for (std::size_t i = 0; i < lastMetered_.size(); ++i)
        kw[i] = lastMetered_[i].value();
    writer.f64Vector(kw);

    attackerSupply_.saveState(writer);
    thermal_.saveState(writer);
    channel_.saveState(writer);
    operator_.saveState(writer);
    policy_->saveState(writer);
    metrics_.saveState(writer);
}

void
Simulation::loadState(util::StateReader &reader)
{
    reader.tag("SIM ");
    now_ = reader.i64();
    rng_.loadState(reader);

    command_.capServers = reader.boolean();
    command_.outage = reader.boolean();
    const bool have_cap = reader.boolean();
    const double cap_kw = reader.f64();
    command_.capLevel =
        have_cap ? std::optional<Kilowatts>(Kilowatts(cap_kw))
                 : std::nullopt;
    const bool have_preventive = reader.boolean();
    const double preventive_kw = reader.f64();
    command_.preventiveCapLevel =
        have_preventive ? std::optional<Kilowatts>(Kilowatts(preventive_kw))
                        : std::nullopt;
    command_.setPointRaise = CelsiusDelta(reader.f64());
    command_.shedFraction = reader.f64();
    command_.degraded = reader.boolean();

    lastObs_.time = reader.i64();
    lastObs_.batterySoc = reader.f64();
    lastObs_.estimatedLoad = Kilowatts(reader.f64());
    lastObs_.inletTemperature = Celsius(reader.f64());
    lastObs_.cappingActive = reader.boolean();
    lastObs_.outage = reader.boolean();
    lastObs_.estimateStale = reader.boolean();
    lastAction_ = static_cast<AttackAction>(reader.u32());
    havePending_ = reader.boolean();
    lastValidEstimate_ = Kilowatts(reader.f64());
    emergenciesSeen_ = static_cast<std::size_t>(reader.u64());
    outagesSeen_ = static_cast<std::size_t>(reader.u64());

    const std::vector<double> heat_kw = reader.f64Vector();
    const std::vector<double> metered_kw = reader.f64Vector();
    if (reader.ok() && (heat_kw.size() != lastHeat_.size() ||
                        metered_kw.size() != lastMetered_.size())) {
        reader.fail(ECOLO_ERROR(
            util::ErrorCode::StateError,
            "server-count mismatch restoring simulation state: "
            "checkpoint has ",
            heat_kw.size(), " servers, config has ", lastHeat_.size()));
        return;
    }
    for (std::size_t i = 0; i < heat_kw.size(); ++i)
        lastHeat_[i] = Kilowatts(heat_kw[i]);
    for (std::size_t i = 0; i < metered_kw.size(); ++i)
        lastMetered_[i] = Kilowatts(metered_kw[i]);

    attackerSupply_.loadState(reader);
    thermal_.loadState(reader);
    channel_.loadState(reader);
    operator_.loadState(reader);
    policy_->loadState(reader);
    metrics_.loadState(reader);
}

void
Simulation::run(MinuteIndex num_minutes)
{
    ECOLO_ASSERT(num_minutes >= 0, "negative run length");
    for (MinuteIndex i = 0; i < num_minutes; ++i) {
        if (cancel_ && cancel_())
            break;
        stepMinute();
    }
}

void
Simulation::runDays(double days)
{
    run(static_cast<MinuteIndex>(days * static_cast<double>(
        kMinutesPerDay)));
}

std::unique_ptr<AttackPolicy>
makeRandomPolicy(const SimulationConfig &config, double attack_probability)
{
    return std::make_unique<RandomPolicy>(
        attack_probability, minAttackSoc(config),
        Rng(config.seed ^ 0x7a11ba5eULL));
}

std::unique_ptr<AttackPolicy>
makeMyopicPolicy(const SimulationConfig &config, Kilowatts threshold)
{
    return std::make_unique<MyopicPolicy>(threshold, minAttackSoc(config));
}

std::unique_ptr<ForesightedPolicy>
makeForesightedPolicy(const SimulationConfig &config, double weight,
                      bool warm_start)
{
    ForesightedPolicy::Params params;
    params.weight = weight;
    // T_0 in the reward (Eqn. 2) is the inlet temperature the operator
    // conditions *without* attacks. The matrix model keeps inlets a few
    // tenths of a degree above the set point even at baseline, so measure
    // T_0 slightly above the set point; otherwise every action collects a
    // constant reward offset that drowns the attack/no-attack contrast.
    params.baselineInlet = config.cooling.supplySetPoint +
                           CelsiusDelta(config.foresightedRewardMargin);
    params.capacity = config.capacity;
    params.attackLoad = config.attackLoad;
    params.battery = config.batterySpec;
    params.stateSpace.loadMin = config.capacity * 0.5;
    params.stateSpace.loadMax = config.capacity * 1.08;
    auto policy = std::make_unique<ForesightedPolicy>(
        params, Rng(config.seed ^ 0xf0e51337ULL));
    if (warm_start) {
        policy->warmStart();
        policy->burnInSchedules(14);
    }
    return policy;
}

std::unique_ptr<AttackPolicy>
makeOneShotPolicy(const SimulationConfig &config, Kilowatts threshold,
                  MinuteIndex arm_delay)
{
    (void)config;
    return std::make_unique<OneShotPolicy>(threshold, arm_delay);
}

util::Result<std::unique_ptr<AttackPolicy>>
tryMakePolicyByName(const SimulationConfig &config,
                    const std::string &name, double param)
{
    if (name == "standby")
        return std::unique_ptr<AttackPolicy>(
            std::make_unique<StandbyPolicy>());
    if (name == "random")
        return makeRandomPolicy(config, param);
    if (name == "myopic")
        return makeMyopicPolicy(config, Kilowatts(param));
    if (name == "foresighted")
        return std::unique_ptr<AttackPolicy>(
            makeForesightedPolicy(config, param));
    if (name == "oneshot")
        return makeOneShotPolicy(config, Kilowatts(param), 0);
    return ECOLO_ERROR(util::ErrorCode::ValidationError,
                       "unknown policy '", name,
                       "' (expected "
                       "standby|random|myopic|foresighted|oneshot)");
}

double
defaultPolicyParam(const std::string &name)
{
    if (name == "random")
        return 0.08;
    if (name == "myopic")
        return 7.4;
    if (name == "foresighted")
        return 14.0;
    if (name == "oneshot")
        return 7.0;
    return 0.0;
}

double
minAttackSoc(const SimulationConfig &config)
{
    const double delivered_per_minute = config.attackLoad.value() / 60.0;
    const double stored_needed =
        delivered_per_minute / config.batterySpec.dischargeEfficiency;
    return stored_needed / config.batterySpec.capacity.value();
}

} // namespace ecolo::core
