#include "core/setup_cache.hh"

#include <bit>

namespace ecolo::core {

namespace {

/** FNV-1a over 64-bit words (doubles hashed by bit pattern, so any
 * representational difference changes the key). */
class Fnv
{
  public:
    Fnv &word(std::uint64_t w)
    {
        // Mix byte-wise so every bit of the word lands in the state.
        for (int shift = 0; shift < 64; shift += 8) {
            state_ ^= (w >> shift) & 0xffULL;
            state_ *= 0x100000001b3ULL;
        }
        return *this;
    }

    Fnv &real(double v) { return word(std::bit_cast<std::uint64_t>(v)); }

    std::uint64_t value() const { return state_; }

  private:
    std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

void
hashDiurnal(Fnv &h, const trace::DiurnalTraceGenerator::Params &p)
{
    h.real(p.baseUtilization)
        .real(p.diurnalAmplitude)
        .real(p.peakHour)
        .real(p.secondaryAmplitude)
        .real(p.secondaryPeakHour)
        .real(p.weekendFactor)
        .real(p.noiseSigma)
        .real(p.noisePhi)
        .real(p.burstsPerDay)
        .real(p.burstMagnitude)
        .real(p.burstDurationMinutes);
}

void
hashGoogle(Fnv &h, const trace::GoogleStyleTraceGenerator::Params &p)
{
    h.word(p.plateauLevels.size());
    for (double level : p.plateauLevels)
        h.real(level);
    h.real(p.meanDwellMinutes)
        .real(p.diurnalAmplitude)
        .real(p.peakHour)
        .real(p.noiseSigma)
        .real(p.noisePhi)
        .real(p.burstsPerDay)
        .real(p.burstMagnitude)
        .real(p.burstDurationMinutes);
}

} // namespace

std::shared_ptr<const SetupCache::TraceSet>
SetupCache::traceSet(std::uint64_t key,
                     const std::function<TraceSet()> &make)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = traceSets_.find(key);
        if (it != traceSets_.end()) {
            ++counters_.traceHits;
            return it->second;
        }
        ++counters_.traceMisses;
    }
    // Compute outside the lock: concurrent misses on one key both pay
    // the generation cost, but the results are identical and the loser
    // is simply discarded -- better than serializing the whole campaign
    // behind one ~1 s trace generation.
    auto value = std::make_shared<const TraceSet>(make());
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = traceSets_.emplace(key, value);
    if (!inserted)
        return it->second;
    traceOrder_.push_back(key);
    while (traceOrder_.size() > kMaxTraceSets) {
        traceSets_.erase(traceOrder_.front());
        traceOrder_.pop_front();
    }
    return value;
}

double
SetupCache::scaleFactor(std::uint64_t key,
                        const std::function<double()> &make)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = scaleFactors_.find(key);
        if (it != scaleFactors_.end()) {
            ++counters_.scaleHits;
            return it->second;
        }
        ++counters_.scaleMisses;
    }
    const double value = make();
    std::lock_guard<std::mutex> lock(mutex_);
    return scaleFactors_.emplace(key, value).first->second;
}

std::shared_ptr<const thermal::HeatDistributionMatrix>
SetupCache::matrix(
    std::uint64_t key,
    const std::function<thermal::HeatDistributionMatrix()> &make)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = matrices_.find(key);
        if (it != matrices_.end()) {
            ++counters_.matrixHits;
            return it->second;
        }
        ++counters_.matrixMisses;
    }
    auto value =
        std::make_shared<const thermal::HeatDistributionMatrix>(make());
    std::lock_guard<std::mutex> lock(mutex_);
    return matrices_.emplace(key, value).first->second;
}

std::shared_ptr<const thermal::TemporalFactorization>
SetupCache::factorization(
    std::uint64_t key,
    const std::function<thermal::TemporalFactorization()> &make)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = factorizations_.find(key);
        if (it != factorizations_.end()) {
            ++counters_.factorizationHits;
            return it->second;
        }
        ++counters_.factorizationMisses;
    }
    auto value =
        std::make_shared<const thermal::TemporalFactorization>(make());
    std::lock_guard<std::mutex> lock(mutex_);
    return factorizations_.emplace(key, value).first->second;
}

SetupCache::Counters
SetupCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::uint64_t
SetupCache::traceSetKey(const SimulationConfig &config)
{
    Fnv h;
    h.word(0x7261cE5eULL) // domain separator
        .word(config.seed)
        .word(static_cast<std::uint64_t>(config.traceKind))
        .word(config.numBenignTenants);
    switch (config.traceKind) {
      case TraceKind::Diurnal:
        hashDiurnal(h, config.diurnalParams);
        break;
      case TraceKind::GoogleStyle:
        hashGoogle(h, config.googleParams);
        break;
      case TraceKind::RequestLevel:
        // The request-level generator's parameters are derived from the
        // tenant index alone (no config fields); kind + count suffice.
        break;
    }
    return h.value();
}

std::uint64_t
SetupCache::scaleFactorKey(const SimulationConfig &config)
{
    Fnv h;
    h.word(0x5ca1eFacULL)
        .word(traceSetKey(config))
        .real(config.serverSpec.idlePower.value())
        .real(config.serverSpec.peakPower.value())
        .word(config.numBenignTenants)
        .word(config.serversPerBenignTenant())
        .real(config.capacity.value())
        .real(config.averageUtilization)
        .real(config.attackerStandbyUtilization)
        .word(config.attackerNumServers);
    return h.value();
}

std::uint64_t
SetupCache::matrixKey(const SimulationConfig &config)
{
    Fnv h;
    h.word(0x6eA7a712ULL)
        .word(config.layout.numRacks)
        .word(config.layout.serversPerRack)
        .real(config.matrixParams.selfGain)
        .real(config.matrixParams.neighborGain)
        .real(config.matrixParams.slotDecay)
        .real(config.matrixParams.crossRackGain)
        .real(config.matrixParams.globalGain)
        .real(config.matrixParams.riseTimeMinutes)
        .real(config.matrixParams.topSlotBias)
        .word(config.matrixHorizonMinutes);
    return h.value();
}

std::uint64_t
SetupCache::factorizationKey(const SimulationConfig &config)
{
    Fnv h;
    h.word(0xFac70125ULL)
        .word(matrixKey(config))
        .real(config.factorization.relTolerance)
        .word(config.factorization.maxRank)
        .real(config.factorization.streamingTolerance)
        .word(config.factorization.maxModesPerFactor);
    return h.value();
}

} // namespace ecolo::core
