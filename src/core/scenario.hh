/**
 * @file
 * Scenario files: load/override a SimulationConfig from key=value text, so
 * experiments can be described declaratively (used by the CLI tool and
 * user scripts).
 *
 * Recognized keys (all optional; defaults are Table I):
 *
 *   capacityKw, averageUtilization, seed, traceKind (diurnal|google)
 *   attacker.servers, attacker.subscriptionKw, attacker.attackLoadKw,
 *   attacker.standbyUtilization
 *   battery.capacityKwh, battery.chargeRateKw, battery.dischargeRateKw,
 *   battery.chargeEfficiency, battery.dischargeEfficiency
 *   cooling.capacityKw, cooling.setPointC, cooling.airVolumeM3,
 *   cooling.deratingPerKelvin
 *   protocol.emergencyThresholdC, protocol.sustainMinutes,
 *   protocol.cappingMinutes, protocol.perServerCapKw,
 *   protocol.shutdownThresholdC, protocol.outageRestartMinutes
 *   sidechannel.extraRelativeNoise, sidechannel.jammingNoiseVolts
 *   rl.rewardMargin
 *   trace.baseUtilization, trace.diurnalAmplitude, trace.peakHour
 *   fault.N.type, fault.N.startMinute, fault.N.startDay,
 *   fault.N.durationMinutes, fault.N.magnitude, fault.N.servers,
 *   fault.random.* (fault-injection timeline; see faults/schedule.hh and
 *   docs/faults.md)
 */

#ifndef ECOLO_CORE_SCENARIO_HH
#define ECOLO_CORE_SCENARIO_HH

#include <iosfwd>
#include <string>

#include "core/config.hh"
#include "util/keyvalue.hh"
#include "util/result.hh"

namespace ecolo::core {

/**
 * Apply the recognized keys of a parsed key=value document on top of the
 * given config. Fails with a structured error (ParseError for
 * unparseable/unknown keys, ValidationError when the resulting config is
 * inconsistent) that names the scenario source and line where known;
 * unknown keys are an error unless allow_unknown is set. `fault.*` keys
 * build config.faultSchedule.
 */
util::Result<void> tryApplyScenario(const KeyValueConfig &kv,
                                    SimulationConfig &config,
                                    bool allow_unknown = false);

/** Load Table I defaults + a scenario file, with structured errors. */
util::Result<SimulationConfig>
tryLoadScenarioFile(const std::string &path);

/** Legacy wrapper around tryApplyScenario; ECOLO_FATAL on any error. */
void applyScenario(const KeyValueConfig &kv, SimulationConfig &config,
                   bool allow_unknown = false);

/** Load Table I defaults + a scenario file; ECOLO_FATAL on any error. */
SimulationConfig loadScenarioFile(const std::string &path);

/** Human-readable dump of a configuration (CLI --describe). */
void describeConfig(std::ostream &os, const SimulationConfig &config);

} // namespace ecolo::core

#endif // ECOLO_CORE_SCENARIO_HH
