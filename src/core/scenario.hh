/**
 * @file
 * Scenario files: load/override a SimulationConfig from key=value text, so
 * experiments can be described declaratively (used by the CLI tool and
 * user scripts).
 *
 * Recognized keys (all optional; defaults are Table I):
 *
 *   capacityKw, averageUtilization, seed, traceKind (diurnal|google)
 *   attacker.servers, attacker.subscriptionKw, attacker.attackLoadKw,
 *   attacker.standbyUtilization
 *   battery.capacityKwh, battery.chargeRateKw, battery.dischargeRateKw,
 *   battery.chargeEfficiency, battery.dischargeEfficiency
 *   cooling.capacityKw, cooling.setPointC, cooling.airVolumeM3,
 *   cooling.deratingPerKelvin
 *   protocol.emergencyThresholdC, protocol.sustainMinutes,
 *   protocol.cappingMinutes, protocol.perServerCapKw,
 *   protocol.shutdownThresholdC, protocol.outageRestartMinutes
 *   sidechannel.extraRelativeNoise, sidechannel.jammingNoiseVolts
 *   rl.rewardMargin
 *   trace.baseUtilization, trace.diurnalAmplitude, trace.peakHour
 */

#ifndef ECOLO_CORE_SCENARIO_HH
#define ECOLO_CORE_SCENARIO_HH

#include <iosfwd>
#include <string>

#include "core/config.hh"
#include "util/keyvalue.hh"

namespace ecolo::core {

/**
 * Apply the recognized keys of a parsed key=value document on top of the
 * given config. ECOLO_FATAL on unknown keys (catches typos) unless
 * allow_unknown is set; the resulting config is validated.
 */
void applyScenario(const KeyValueConfig &kv, SimulationConfig &config,
                   bool allow_unknown = false);

/** Load Table I defaults + a scenario file. */
SimulationConfig loadScenarioFile(const std::string &path);

/** Human-readable dump of a configuration (CLI --describe). */
void describeConfig(std::ostream &os, const SimulationConfig &config);

} // namespace ecolo::core

#endif // ECOLO_CORE_SCENARIO_HH
