#include "core/lane_batch.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <string>

#include "core/setup_cache.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace ecolo::core {

namespace {

constexpr std::size_t kNoLeader = static_cast<std::size_t>(-1);

/** Everything the bank-packing heuristic keys on: lanes sort by this and
 * groups form over equal prefixes. The thermal component folds the
 * factorization key (matrix shape + fit options) with the kernel mode;
 * streamingStateCompatible still has the final, exact say per lane. */
std::array<std::uint64_t, 4>
packKey(const Simulation &sim, std::uint64_t fp)
{
    const SimulationConfig &cfg = sim.config();
    const std::uint64_t thermal_key =
        SetupCache::factorizationKey(cfg) * 1099511628211ULL ^
        static_cast<std::uint64_t>(cfg.thermalMode);
    return {cfg.numServers(), thermal_key,
            static_cast<std::uint64_t>(sim.now()), fp};
}

} // namespace

std::uint64_t
laneCompatibilityKey(const SimulationConfig &config,
                     MinuteIndex horizon_minutes)
{
    const std::uint64_t thermal_key =
        SetupCache::factorizationKey(config) * 1099511628211ULL ^
        static_cast<std::uint64_t>(config.thermalMode);
    std::uint64_t key = static_cast<std::uint64_t>(config.numServers());
    key = key * 1099511628211ULL ^ thermal_key;
    key = key * 1099511628211ULL ^
          static_cast<std::uint64_t>(horizon_minutes);
    return key | 1;
}

LaneBatchRunner::LaneBatchRunner(LaneBatchOptions options)
    : options_(options)
{
    options_.lanesPerGroup =
        std::clamp<std::size_t>(options_.lanesPerGroup, 1,
                                thermal::LaneThermalBank::kLanes);
}

std::size_t
LaneBatchRunner::add(Simulation &sim, MinuteIndex horizon_minutes)
{
    ECOLO_ASSERT(horizon_minutes >= 0, "negative lane horizon");
    Lane lane;
    lane.sim = &sim;
    lane.remaining = horizon_minutes;
    lanes_.push_back(lane);
    groupsDirty_ = true;
    return lanes_.size() - 1;
}

void
LaneBatchRunner::formGroups()
{
    groups_.clear();
    ctx_.resize(lanes_.size());
    stats_.groups = 0;
    stats_.bankedLanes = 0;
    stats_.scalarFallbackLanes = 0;

    // Sort lane ids so bank-compatible (and, as a tiebreaker,
    // fingerprint-equal) lanes sit adjacently, then chunk runs of equal
    // (servers, thermal, now) keys into groups.
    std::vector<std::size_t> order(lanes_.size());
    std::vector<std::array<std::uint64_t, 4>> keys(lanes_.size());
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        order[i] = i;
        keys[i] = packKey(*lanes_[i].sim,
                          lanes_[i].sim->workloadFingerprint_);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return keys[a] < keys[b];
                     });

    std::size_t i = 0;
    while (i < order.size()) {
        Group group;
        const auto &key = keys[order[i]];
        while (i < order.size() &&
               group.lanes.size() < options_.lanesPerGroup &&
               keys[order[i]][0] == key[0] &&
               keys[order[i]][1] == key[1] &&
               keys[order[i]][2] == key[2]) {
            group.lanes.push_back(order[i]);
            ++i;
        }

        // Workload sharing arms only when every lane is provably running
        // the same benign workload (equal nonzero fingerprints).
        if (options_.shareBenignWorkload && group.lanes.size() >= 2) {
            const std::uint64_t fp =
                lanes_[group.lanes.front()].sim->workloadFingerprint_;
            bool all_equal = fp != 0;
            for (std::size_t lid : group.lanes)
                all_equal = all_equal &&
                            lanes_[lid].sim->workloadFingerprint_ == fp;
            group.sharedFp = all_equal ? fp : 0;
        }
        if (group.sharedFp != 0) {
            const SimulationConfig &cfg =
                lanes_[group.lanes.front()].sim->config();
            group.shared.serverKw.assign(cfg.numBenignServers(), 0.0);
            group.shared.tenantKw.assign(cfg.numBenignTenants,
                                         Kilowatts(0.0));
        }
        group.uniform.assign(group.lanes.size(), 0);

        // Bank adoption: at least two streaming-compatible lanes make
        // the SoA arena worth its gather/scatter; the rest run their own
        // scalar thermal step (masked divergence, not an error).
        if (options_.useThermalBank) {
            const thermal::MatrixThermalModel *reference = nullptr;
            std::size_t reference_lane = 0;
            std::size_t compatible = 0;
            for (std::size_t lid : group.lanes) {
                const auto &model =
                    lanes_[lid].sim->thermalEnvironment().matrixModel();
                if (reference == nullptr) {
                    if (model.activeKernel() ==
                        thermal::KernelMode::Streaming) {
                        reference = &model;
                        reference_lane = lid;
                        ++compatible;
                    }
                } else if (model.streamingStateCompatible(*reference)) {
                    ++compatible;
                }
            }
            if (reference != nullptr && compatible >= 2) {
                group.bankActive = true;
                group.bankReference = reference_lane;
                group.bank.configure(*reference);
                int slot = 0;
                for (std::size_t lid : group.lanes) {
                    const auto &model = lanes_[lid]
                                            .sim->thermalEnvironment()
                                            .matrixModel();
                    if (lid == reference_lane ||
                        model.streamingStateCompatible(*reference)) {
                        lanes_[lid].bankSlot = slot++;
                        ++stats_.bankedLanes;
                    } else {
                        lanes_[lid].bankSlot = -1;
                        ++stats_.scalarFallbackLanes;
                    }
                }
            } else {
                for (std::size_t lid : group.lanes)
                    lanes_[lid].bankSlot = -1;
                stats_.scalarFallbackLanes += group.lanes.size();
            }
        } else {
            for (std::size_t lid : group.lanes)
                lanes_[lid].bankSlot = -1;
            stats_.scalarFallbackLanes += group.lanes.size();
        }

        groups_.push_back(std::move(group));
    }
    stats_.groups = groups_.size();
    groupsDirty_ = false;

    if (telemetry::enabled()) {
        telemetry::registry()
            .counter("lanebatch.scalar_fallback")
            .inc(stats_.scalarFallbackLanes);
    }
}

void
LaneBatchRunner::finishLane(Group &group, Lane &lane)
{
    lane.active = false;
    if (group.bankActive && lane.bankSlot >= 0) {
        group.bank.scatterLane(
            static_cast<std::size_t>(lane.bankSlot),
            lane.sim->thermal_.matrixModelMutable());
    }
    if (lane.benignStale) {
        lane.sim->restoreBenignWorkload();
        lane.benignStale = false;
    }
}

void
LaneBatchRunner::stepGroup(Group &group, MinuteIndex offset)
{
    const bool sharing = group.sharedFp != 0;
    std::size_t leader = kNoLeader;

    // Phase A: faults + command unpack per lane; find a uniform leader.
    for (std::size_t idx = 0; idx < group.lanes.size(); ++idx) {
        Lane &lane = lanes_[group.lanes[idx]];
        group.uniform[idx] = 0;
        if (!lane.active)
            continue;
        Simulation &sim = *lane.sim;
        if (sim.cancel_ && sim.cancel_()) {
            // Same poll point as Simulation::run: before the step. A
            // cancelled lane is retired for good (it cannot rejoin the
            // bank's ring phase after sitting slots out).
            lane.remaining = 0;
            lane.cancelled = true;
            finishLane(group, lane);
            continue;
        }
        Simulation::SlotContext &ctx = ctx_[group.lanes[idx]];
        ctx = Simulation::SlotContext();
        sim.slotBegin(ctx);
        if (sharing && sim.slotBenignUniform(ctx)) {
            group.uniform[idx] = 1;
            if (leader == kNoLeader)
                leader = idx;
        }
    }

    // Phase B: the leader applies the shared benign workload once and
    // harvests the products every uniform lane consumes.
    if (leader != kNoLeader) {
        const std::size_t lid = group.lanes[leader];
        lanes_[lid].sim->slotWorkloadBenign(ctx_[lid]);
        lanes_[lid].sim->harvestSharedBenign(group.shared);
        lanes_[lid].benignStale = false;
    }

    // Phase C: the serial per-lane phases (workload divergence, policy,
    // attacker supply, heat/metering).
    for (std::size_t idx = 0; idx < group.lanes.size(); ++idx) {
        Lane &lane = lanes_[group.lanes[idx]];
        if (!lane.active)
            continue;
        Simulation &sim = *lane.sim;
        Simulation::SlotContext &ctx = ctx_[group.lanes[idx]];
        const bool uniform = group.uniform[idx] != 0;
        if (!uniform) {
            // Divergent slot (capping, outage, shed, faults, or no
            // sharing): the lane runs its own workload phase, which
            // fully rewrites benign server state -- automatic resync.
            sim.slotWorkloadBenign(ctx);
            lane.benignStale = false;
        } else if (idx != leader) {
            lane.benignStale = true;
            ++group.sharedCount;
        }
        sim.slotWorkloadAttacker(ctx);
        sim.slotObserveDecide(ctx, uniform ? &group.shared.tenantTotal
                                           : nullptr);
        sim.slotAttackerSupply(ctx);
        sim.slotHeatAndMeter(ctx, uniform ? &group.shared : nullptr);
    }

    // Phase D: one SoA pass advances every banked lane's thermal model.
    if (group.bankActive) {
        group.bank.beginSlot();
        for (std::size_t lid : group.lanes) {
            Lane &lane = lanes_[lid];
            if (lane.active && lane.bankSlot >= 0)
                group.bank.setLanePowers(
                    static_cast<std::size_t>(lane.bankSlot),
                    lane.sim->lastHeat_);
        }
        group.bank.step();
    }

    // Phase E: rises back into each lane, operator reaction, record.
    for (std::size_t idx = 0; idx < group.lanes.size(); ++idx) {
        const std::size_t lid = group.lanes[idx];
        Lane &lane = lanes_[lid];
        if (!lane.active)
            continue;
        Simulation &sim = *lane.sim;
        if (group.bankActive && lane.bankSlot >= 0) {
            sim.slotThermalFromBank(
                group.bank.laneRises(
                    static_cast<std::size_t>(lane.bankSlot)),
                thermal::LaneThermalBank::riseStride());
        } else {
            sim.slotThermal();
        }
        sim.slotOperatorReact(ctx_[lid]);
        sim.slotFinish(ctx_[lid]);
        ++group.slotCount;
        if (slotHook_)
            slotHook_(lid, offset);
        if (--lane.remaining <= 0) {
            lane.remaining = 0;
            finishLane(group, lane);
        }
    }
}

void
LaneBatchRunner::runGroup(Group &group)
{
    MinuteIndex span = 0;
    for (std::size_t lid : group.lanes) {
        Lane &lane = lanes_[lid];
        lane.active = lane.remaining > 0;
        if (lane.active)
            span = std::max(span,
                            std::min(lane.remaining, chunkMinutes_));
    }
    if (span == 0)
        return;

    if (group.bankActive) {
        // Between run() calls the models are authoritative (they were
        // scattered at the last boundary, and may have been restored
        // from a checkpoint since). Re-adopt the shared ring phase from
        // the first live banked lane and gather them all.
        const Lane *phase_lane = nullptr;
        for (std::size_t lid : group.lanes) {
            const Lane &lane = lanes_[lid];
            if (lane.active && lane.bankSlot >= 0) {
                phase_lane = &lane;
                break;
            }
        }
        if (phase_lane != nullptr) {
            group.bank.adoptPhase(
                phase_lane->sim->thermal_.matrixModelMutable());
            for (std::size_t lid : group.lanes) {
                Lane &lane = lanes_[lid];
                if (lane.active && lane.bankSlot >= 0)
                    group.bank.gatherLane(
                        static_cast<std::size_t>(lane.bankSlot),
                        lane.sim->thermal_.matrixModelMutable());
            }
        }
    }

    for (MinuteIndex m = 0; m < span; ++m)
        stepGroup(group, m);

    // Run boundary: hand the thermal state back to still-active lanes
    // (finished ones were scattered in finishLane) and resync any lane
    // that consumed shared workloads, so every simulation is a normal,
    // checkpointable scalar Simulation between runs.
    for (std::size_t lid : group.lanes) {
        Lane &lane = lanes_[lid];
        if (lane.active && group.bankActive && lane.bankSlot >= 0) {
            group.bank.scatterLane(
                static_cast<std::size_t>(lane.bankSlot),
                lane.sim->thermal_.matrixModelMutable());
        }
        if (lane.benignStale) {
            lane.sim->restoreBenignWorkload();
            lane.benignStale = false;
        }
        lane.active = false;
    }
}

void
LaneBatchRunner::run(MinuteIndex minutes)
{
    ECOLO_ASSERT(minutes >= 0, "negative run length");
    if (minutes == 0 || lanes_.empty())
        return;
    if (groupsDirty_)
        formGroups();
    chunkMinutes_ = minutes;

    const auto start = std::chrono::steady_clock::now();
    if (groups_.size() == 1) {
        // Single group: run inline (also keeps the steady-state loop
        // allocation-free; parallelFor's dispatch is not).
        runGroup(groups_.front());
    } else {
        util::parallelFor(0, groups_.size(), [this](std::size_t g) {
            telemetry::TraceSpan group_span(
                telemetry::enabled()
                    ? "lanebatch.group[" + std::to_string(g) + "]"
                    : std::string());
            runGroup(groups_[g]);
        });
    }
    const auto end = std::chrono::steady_clock::now();

    // Fold the per-group counters on the calling thread (groups run
    // concurrently and must not share mutable stats).
    std::uint64_t slots = 0;
    for (Group &group : groups_) {
        slots += group.slotCount;
        stats_.slotsExecuted += group.slotCount;
        stats_.sharedWorkloadSlots += group.sharedCount;
        group.slotCount = 0;
        group.sharedCount = 0;
    }
    if (telemetry::enabled()) {
        const double seconds =
            std::chrono::duration<double>(end - start).count();
        emitTelemetry(slots, seconds);
    }
}

void
LaneBatchRunner::runAll()
{
    MinuteIndex span = 0;
    for (const Lane &lane : lanes_)
        span = std::max(span, lane.remaining);
    if (span > 0)
        run(span);
}

bool
LaneBatchRunner::finished() const
{
    for (const Lane &lane : lanes_)
        if (lane.remaining > 0)
            return false;
    return true;
}

MinuteIndex
LaneBatchRunner::remaining(std::size_t lane) const
{
    ECOLO_ASSERT(lane < lanes_.size(), "lane index out of range");
    return lanes_[lane].remaining;
}

bool
LaneBatchRunner::cancelled(std::size_t lane) const
{
    ECOLO_ASSERT(lane < lanes_.size(), "lane index out of range");
    return lanes_[lane].cancelled;
}

void
LaneBatchRunner::emitTelemetry(std::uint64_t slots, double seconds) const
{
    auto &reg = telemetry::registry();
    auto &occupancy = reg.histogram("lanebatch.lanes_occupied");
    for (const Group &group : groups_)
        occupancy.add(static_cast<double>(group.lanes.size()));
    if (seconds > 0.0) {
        reg.gauge("lanebatch.slots_per_second")
            .set(static_cast<double>(slots) / seconds);
    }
}

} // namespace ecolo::core
