/**
 * @file
 * The attacker's Markov-decision-process vocabulary (Section IV-A):
 * state s = (battery energy, estimated benign load), three actions
 * (charge / attack / standby), and the discretized state space the
 * Q-learning tables index.
 */

#ifndef ECOLO_CORE_MDP_HH
#define ECOLO_CORE_MDP_HH

#include <cstddef>
#include <string>

#include "util/sim_time.hh"
#include "util/units.hh"

namespace ecolo::core {

/** The attacker's three actions. */
enum class AttackAction : int
{
    Charge = 0,  //!< recharge built-in batteries from the PDU
    Attack = 1,  //!< run at peak power, discharging batteries
    Standby = 2, //!< dummy workloads, no battery activity
};

inline constexpr std::size_t kNumAttackActions = 3;

/** Human-readable action name. */
const char *toString(AttackAction action);

/** What the attacker can observe each minute. */
struct AttackObservation
{
    MinuteIndex time = 0;
    /** Battery state of charge in [0, 1]. */
    double batterySoc = 1.0;
    /**
     * Side-channel estimate of the total load, expressed as benign load
     * plus the attacker's subscribed capacity (the paper's convention for
     * thresholds like "7.4 kW of the 8 kW capacity").
     */
    Kilowatts estimatedLoad{0.0};
    /** The attacker's own inlet-temperature sensor reading. */
    Celsius inletTemperature{27.0};
    /** True while the operator's emergency capping is in force. */
    bool cappingActive = false;
    /** True while the PDU is de-energized (outage). */
    bool outage = false;
    /**
     * True when the side channel produced no fresh reading this minute
     * (sensor fault) and estimatedLoad is the last valid value held over.
     * Policies discretize estimatedLoad, so a NaN must never reach them.
     */
    bool estimateStale = false;
};

/** Discretization of (battery, load) into Q-table indices. */
class StateSpace
{
  public:
    struct Params
    {
        std::size_t batteryBins = 11;
        std::size_t loadBins = 16;
        Kilowatts loadMin{4.0};
        Kilowatts loadMax{8.5};
    };

    StateSpace() : StateSpace(Params{}) {}
    explicit StateSpace(Params params);

    std::size_t numStates() const
    { return params_.batteryBins * params_.loadBins; }

    std::size_t batteryBins() const { return params_.batteryBins; }
    std::size_t loadBins() const { return params_.loadBins; }

    std::size_t batteryBinOf(double soc) const;
    std::size_t loadBinOf(Kilowatts load) const;

    /** Flat index of the (soc, load) pair. */
    std::size_t indexOf(double soc, Kilowatts load) const;

    /** Flat index from explicit bins. */
    std::size_t indexOfBins(std::size_t battery_bin,
                            std::size_t load_bin) const;

    /** Bin representative values (for policy dumps / Fig. 10). */
    double batteryBinCenter(std::size_t bin) const;
    Kilowatts loadBinCenter(std::size_t bin) const;

    std::size_t batteryBinFromIndex(std::size_t state) const;
    std::size_t loadBinFromIndex(std::size_t state) const;

    const Params &params() const { return params_; }

  private:
    Params params_;
};

} // namespace ecolo::core

#endif // ECOLO_CORE_MDP_HH
