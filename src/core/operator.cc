#include "core/operator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::core {

const char *
toString(OperatorState state)
{
    switch (state) {
      case OperatorState::Normal:
        return "normal";
      case OperatorState::Pending:
        return "pending";
      case OperatorState::Emergency:
        return "emergency";
      case OperatorState::Outage:
        return "outage";
    }
    return "unknown";
}

ColoOperator::ColoOperator(Params params) : params_(params)
{
    ECOLO_ASSERT(params_.sustainMinutes >= 1 && params_.cappingMinutes >= 1,
                 "protocol durations must be at least one minute");
    ECOLO_ASSERT(params_.emergencyThreshold < params_.shutdownThreshold,
                 "emergency threshold must be below shutdown threshold");
}

OperatorCommand
ColoOperator::observeMinute(Celsius max_inlet)
{
    return observeMinute(max_inlet, DegradedContext{});
}

OperatorCommand
ColoOperator::observeMinute(Celsius sensed, const DegradedContext &ctx)
{
    // Sensor fallback: on an invalid/NaN reading, hold the last good
    // value so the protocol keeps running instead of comparing against
    // garbage (every comparison with NaN is false, which would silently
    // disable the entire emergency protocol).
    Celsius max_inlet = sensed;
    if (!ctx.sensorValid || std::isnan(sensed.value())) {
        ++blindMinutes_;
        max_inlet = lastGoodInlet_;
    } else {
        blindMinutes_ = 0;
        lastGoodInlet_ = sensed;
    }

    // The shutdown threshold overrides everything: permanent-damage
    // protection trips regardless of protocol state.
    if (state_ != OperatorState::Outage &&
        max_inlet >= params_.shutdownThreshold) {
        state_ = OperatorState::Outage;
        restartLeft_ = params_.outageRestartMinutes;
        ++outages_;
    }

    switch (state_) {
      case OperatorState::Outage:
        ++outageMinutes_;
        if (--restartLeft_ <= 0) {
            state_ = OperatorState::Normal;
            sustainCounter_ = 0;
            cappingLeft_ = 0;
        }
        break;

      case OperatorState::Emergency:
        ++emergencyMinutes_;
        if (--cappingLeft_ <= 0) {
            state_ = OperatorState::Normal;
            sustainCounter_ = 0;
        }
        break;

      case OperatorState::Normal:
      case OperatorState::Pending:
        if (max_inlet > params_.emergencyThreshold) {
            ++sustainCounter_;
            state_ = OperatorState::Pending;
            if (sustainCounter_ >= params_.sustainMinutes) {
                state_ = OperatorState::Emergency;
                cappingLeft_ = params_.cappingMinutes;
                ++emergencies_;
                ++emergencyMinutes_;
                --cappingLeft_;
                if (params_.adaptiveCapping) {
                    // Scale the cap depth with the declaration overshoot.
                    const double overshoot = std::clamp(
                        (max_inlet - params_.emergencyThreshold).value() /
                            params_.adaptiveFullScaleKelvin,
                        0.0, 1.0);
                    activeCapLevel_ =
                        params_.adaptiveMaxCap +
                        (params_.adaptiveMinCap - params_.adaptiveMaxCap) *
                            overshoot;
                }
            }
        } else {
            sustainCounter_ = 0;
            state_ = OperatorState::Normal;
        }
        break;
    }

    OperatorCommand command;
    command.capServers = state_ == OperatorState::Emergency;
    command.outage = state_ == OperatorState::Outage;
    if (command.capServers && params_.adaptiveCapping)
        command.capLevel = activeCapLevel_;

    // ---- Degraded-mode overlay: graceful responses to injected faults.
    // With a healthy context every branch below is skipped, so the
    // fault-free path stays bit-identical.
    if (state_ != OperatorState::Outage) {
        const double factor =
            std::clamp(ctx.coolingCapacityFactor, 0.0, 1.0);
        const double severity = 1.0 - factor;

        if (factor < 1.0) {
            // Tier 1: raise the CRAC set point, trading inlet margin for
            // removal capacity; ramps to the maximum as capacity falls to
            // the shed threshold.
            const double span =
                std::max(1e-9, 1.0 - params_.derateShedThreshold);
            const double ramp = std::min(1.0, severity / span);
            command.setPointRaise =
                CelsiusDelta(params_.maxSetPointRaise.value() * ramp);
            command.degraded = true;
        }
        if (factor < params_.derateCapThreshold) {
            // Tier 2: preventive load capping *before* the emergency
            // protocol has to trip -- interpolate from the gentlest to the
            // hardest cap as the derating deepens.
            const double span = std::max(
                1e-9,
                params_.derateCapThreshold - params_.derateShedThreshold);
            const double depth = std::clamp(
                (params_.derateCapThreshold - factor) / span, 0.0, 1.0);
            command.preventiveCapLevel =
                params_.adaptiveMaxCap +
                (params_.adaptiveMinCap - params_.adaptiveMaxCap) * depth;
            command.degraded = true;
        }
        if (factor < params_.derateShedThreshold) {
            // Tier 3: partial shutdown -- shed benign load outright when
            // capping alone cannot fit the site under the surviving
            // capacity.
            command.shedFraction = std::min(
                params_.maxShedFraction,
                (params_.derateShedThreshold - factor) /
                    std::max(1e-9, params_.derateShedThreshold));
            command.degraded = true;
        }
        if (blindMinutes_ > params_.sensorBlindTolerance) {
            // Flying blind: assume the worst and cap preventively at the
            // hardest of the applicable levels.
            const Kilowatts blind_cap = params_.sensorBlindCap;
            command.preventiveCapLevel =
                command.preventiveCapLevel
                    ? std::min(*command.preventiveCapLevel, blind_cap)
                    : blind_cap;
            command.degraded = true;
        }
    }
    if (command.degraded)
        ++degradedMinutes_;
    return command;
}

void
ColoOperator::reset()
{
    state_ = OperatorState::Normal;
    sustainCounter_ = 0;
    cappingLeft_ = 0;
    restartLeft_ = 0;
    emergencies_ = 0;
    outages_ = 0;
    emergencyMinutes_ = 0;
    outageMinutes_ = 0;
    degradedMinutes_ = 0;
    blindMinutes_ = 0;
    lastGoodInlet_ = Celsius(27.0);
}

void
ColoOperator::saveState(util::StateWriter &writer) const
{
    writer.tag("OPER");
    writer.u32(static_cast<std::uint32_t>(state_));
    writer.i64(sustainCounter_);
    writer.i64(cappingLeft_);
    writer.i64(restartLeft_);
    writer.u64(emergencies_);
    writer.u64(outages_);
    writer.f64(activeCapLevel_.value());
    writer.i64(emergencyMinutes_);
    writer.i64(outageMinutes_);
    writer.i64(degradedMinutes_);
    writer.i64(blindMinutes_);
    writer.f64(lastGoodInlet_.value());
}

void
ColoOperator::loadState(util::StateReader &reader)
{
    reader.tag("OPER");
    state_ = static_cast<OperatorState>(reader.u32());
    sustainCounter_ = reader.i64();
    cappingLeft_ = reader.i64();
    restartLeft_ = reader.i64();
    emergencies_ = static_cast<std::size_t>(reader.u64());
    outages_ = static_cast<std::size_t>(reader.u64());
    activeCapLevel_ = Kilowatts(reader.f64());
    emergencyMinutes_ = reader.i64();
    outageMinutes_ = reader.i64();
    degradedMinutes_ = reader.i64();
    blindMinutes_ = reader.i64();
    lastGoodInlet_ = Celsius(reader.f64());
}

} // namespace ecolo::core
