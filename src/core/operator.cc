#include "core/operator.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ecolo::core {

const char *
toString(OperatorState state)
{
    switch (state) {
      case OperatorState::Normal:
        return "normal";
      case OperatorState::Pending:
        return "pending";
      case OperatorState::Emergency:
        return "emergency";
      case OperatorState::Outage:
        return "outage";
    }
    return "unknown";
}

ColoOperator::ColoOperator(Params params) : params_(params)
{
    ECOLO_ASSERT(params_.sustainMinutes >= 1 && params_.cappingMinutes >= 1,
                 "protocol durations must be at least one minute");
    ECOLO_ASSERT(params_.emergencyThreshold < params_.shutdownThreshold,
                 "emergency threshold must be below shutdown threshold");
}

OperatorCommand
ColoOperator::observeMinute(Celsius max_inlet)
{
    // The shutdown threshold overrides everything: permanent-damage
    // protection trips regardless of protocol state.
    if (state_ != OperatorState::Outage &&
        max_inlet >= params_.shutdownThreshold) {
        state_ = OperatorState::Outage;
        restartLeft_ = params_.outageRestartMinutes;
        ++outages_;
    }

    switch (state_) {
      case OperatorState::Outage:
        ++outageMinutes_;
        if (--restartLeft_ <= 0) {
            state_ = OperatorState::Normal;
            sustainCounter_ = 0;
            cappingLeft_ = 0;
        }
        break;

      case OperatorState::Emergency:
        ++emergencyMinutes_;
        if (--cappingLeft_ <= 0) {
            state_ = OperatorState::Normal;
            sustainCounter_ = 0;
        }
        break;

      case OperatorState::Normal:
      case OperatorState::Pending:
        if (max_inlet > params_.emergencyThreshold) {
            ++sustainCounter_;
            state_ = OperatorState::Pending;
            if (sustainCounter_ >= params_.sustainMinutes) {
                state_ = OperatorState::Emergency;
                cappingLeft_ = params_.cappingMinutes;
                ++emergencies_;
                ++emergencyMinutes_;
                --cappingLeft_;
                if (params_.adaptiveCapping) {
                    // Scale the cap depth with the declaration overshoot.
                    const double overshoot = std::clamp(
                        (max_inlet - params_.emergencyThreshold).value() /
                            params_.adaptiveFullScaleKelvin,
                        0.0, 1.0);
                    activeCapLevel_ =
                        params_.adaptiveMaxCap +
                        (params_.adaptiveMinCap - params_.adaptiveMaxCap) *
                            overshoot;
                }
            }
        } else {
            sustainCounter_ = 0;
            state_ = OperatorState::Normal;
        }
        break;
    }

    OperatorCommand command;
    command.capServers = state_ == OperatorState::Emergency;
    command.outage = state_ == OperatorState::Outage;
    if (command.capServers && params_.adaptiveCapping)
        command.capLevel = activeCapLevel_;
    return command;
}

void
ColoOperator::reset()
{
    state_ = OperatorState::Normal;
    sustainCounter_ = 0;
    cappingLeft_ = 0;
    restartLeft_ = 0;
    emergencies_ = 0;
    outages_ = 0;
    emergencyMinutes_ = 0;
    outageMinutes_ = 0;
}

} // namespace ecolo::core
