#include "core/threat_assessment.hh"

#include <algorithm>
#include <ostream>

#include "thermal/cooling.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace ecolo::core {

namespace {

/**
 * Step a room replica through an attack: uncapped heat until the
 * emergency protocol caps, then capped heat (with the battery still
 * injecting, the one-shot behaviour). Returns minutes until the supply
 * temperature reaches `target`, or -1 if the attack stalls first.
 */
double
minutesUntil(const SimulationConfig &config, Kilowatts uncapped_heat,
             Kilowatts capped_heat, Celsius target)
{
    thermal::CoolingSystem room(config.cooling);
    long over_threshold = 0;
    bool capped = false;
    double previous = -1.0;
    for (int minute = 1; minute <= 24 * 60; ++minute) {
        room.step(capped ? capped_heat : uncapped_heat, minutes(1));
        const double supply = room.supplyTemperature().value();
        if (supply >= target.value())
            return minute;
        if (!capped) {
            over_threshold =
                supply > config.emergencyThreshold.value()
                    ? over_threshold + 1
                    : 0;
            if (over_threshold >= config.emergencySustainMinutes)
                capped = true; // protocol reacts from the next minute
        } else if (supply <= previous + 1e-9) {
            return -1.0; // capping arrested the rise
        }
        previous = supply;
    }
    return -1.0;
}

} // namespace

ThreatAssessment
assessThreat(const SimulationConfig &config, Kilowatts peak_benign_load)
{
    ThreatAssessment out;
    const Kilowatts benign_subscription =
        config.capacity - config.attackerSubscription;
    out.peakBenignLoad = peak_benign_load.value() > 0.0
                             ? peak_benign_load
                             : benign_subscription * 0.95;

    const Kilowatts attacker_standby =
        config.serverSpec.powerAt(config.attackerStandbyUtilization) *
        static_cast<double>(config.attackerNumServers);
    out.coolingHeadroom = config.cooling.capacity -
                          (out.peakBenignLoad + attacker_standby);

    // ---- Repeated attacks ----
    const Kilowatts attack_total =
        out.peakBenignLoad + config.attackerSubscription +
        config.attackLoad;
    const Kilowatts overload = attack_total - config.cooling.capacity;
    // The smallest battery load that produces any overload at peak, plus
    // a working margin so the rise is not glacial.
    out.minEmergencyAttackLoad = Kilowatts(std::max(
        0.0, (config.cooling.capacity - out.peakBenignLoad -
              config.attackerSubscription)
                 .value()) +
        0.1);

    thermal::CoolingSystem room(config.cooling);
    if (overload.value() > 0.0) {
        const Seconds rise_time = room.timeToReach(
            config.emergencyThreshold, overload,
            config.cooling.supplySetPoint);
        out.minutesToEmergency =
            toMinutes(rise_time) +
            static_cast<double>(config.emergencySustainMinutes);
        out.emergencyFeasible = out.minutesToEmergency < 60.0;
        const double stored_kwh =
            config.attackLoad.value() * out.minutesToEmergency / 60.0 /
            config.batterySpec.dischargeEfficiency;
        out.minBatteryForEmergency = KilowattHours(stored_kwh);
    }

    // ---- One-shot ----
    const Kilowatts capped_metered =
        config.perServerCap * static_cast<double>(config.numServers());
    const Kilowatts capped_heat = capped_metered + config.attackLoad;
    const double shutdown_minutes = minutesUntil(
        config, attack_total, capped_heat, config.shutdownThreshold);
    if (shutdown_minutes > 0.0) {
        out.outageFeasible = true;
        out.minutesToShutdown = shutdown_minutes;
        out.minBatteryForOutage = KilowattHours(
            config.attackLoad.value() * shutdown_minutes / 60.0 /
            config.batterySpec.dischargeEfficiency);
    }

    // ---- Defense sizing ----
    out.extraCoolingToNeutralize = Kilowatts(std::max(
        0.0, (attack_total - config.cooling.capacity).value() + 0.1));

    return out;
}

void
printAssessment(std::ostream &os, const SimulationConfig &config,
                const ThreatAssessment &a)
{
    TextTable table({"threat metric", "value"});
    table.addRow("assumed peak benign load (kW)",
                 fixed(a.peakBenignLoad.value(), 2));
    table.addRow("cooling headroom at peak (kW)",
                 fixed(a.coolingHeadroom.value(), 2));
    table.addRow("min attack load for emergencies (kW)",
                 fixed(a.minEmergencyAttackLoad.value(), 2));
    table.addRow("configured attack load (kW)",
                 fixed(config.attackLoad.value(), 2));
    if (a.emergencyFeasible) {
        table.addRow("minutes of attack per emergency",
                     fixed(a.minutesToEmergency, 1));
        table.addRow("battery per emergency burst (kWh)",
                     fixed(a.minBatteryForEmergency.value(), 3));
    } else {
        table.addRow("repeated attacks", "NOT feasible at this load");
    }
    if (a.outageFeasible) {
        table.addRow("minutes of attack to 45 C outage",
                     fixed(a.minutesToShutdown, 1));
        table.addRow("battery for a one-shot strike (kWh)",
                     fixed(a.minBatteryForOutage.value(), 3));
    } else {
        table.addRow("one-shot outage",
                     "NOT feasible (capping arrests the rise)");
    }
    table.addRow("extra cooling to neutralize (kW)",
                 fixed(a.extraCoolingToNeutralize.value(), 2));
    table.print(os);
}

} // namespace ecolo::core
