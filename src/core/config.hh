/**
 * @file
 * SimulationConfig: every knob of the edge-colocation simulation, with
 * defaults matching Table I of the paper (8 kW capacity, 4 tenants,
 * 40 servers in 2 racks, 0.8 kW attacker subscription, 0.2 kWh battery,
 * 1 kW attack load, 0.2 kW charge rate, 32 C emergency threshold,
 * gamma = 0.99, delta(t) = 1/t^0.85).
 */

#ifndef ECOLO_CORE_CONFIG_HH
#define ECOLO_CORE_CONFIG_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "battery/battery.hh"
#include "faults/schedule.hh"
#include "perf/latency_model.hh"
#include "power/layout.hh"
#include "power/server.hh"
#include "sidechannel/voltage_channel.hh"
#include "trace/generators.hh"
#include "thermal/cooling.hh"
#include "thermal/heat_matrix.hh"
#include "util/result.hh"
#include "util/sim_time.hh"
#include "util/units.hh"

namespace ecolo::core {

class SetupCache;

/** Which synthetic workload drives the benign tenants. */
enum class TraceKind
{
    Diurnal,      //!< default trace (Facebook/Baidu-like, Fig. 6(b))
    GoogleStyle,  //!< alternate trace (Google-cluster-like, Fig. 13(a))
    RequestLevel, //!< Poisson request-level pipeline (paper Sec. V-A)
};

/** Full simulation configuration. */
struct SimulationConfig
{
    // ---- Data center (Table I) ----
    Kilowatts capacity{8.0};
    std::size_t numBenignTenants = 3;
    power::DataCenterLayout::Params layout{};  //!< 2 racks x 20 servers
    power::ServerSpec serverSpec{Kilowatts(0.06), Kilowatts(0.20)};

    // ---- Attacker ----
    std::size_t attackerNumServers = 4;
    Kilowatts attackerSubscription{0.8};
    /** Battery-supplied heat injected during an attack (Table I: 1 kW). */
    Kilowatts attackLoad{1.0};
    battery::BatterySpec batterySpec{
        KilowattHours(0.2), Kilowatts(0.2), Kilowatts(1.0), 0.90, 0.95};
    /** Utilization of the attacker's dummy workloads outside attacks. */
    double attackerStandbyUtilization = 0.15;
    /**
     * Margin added to the supply set point when forming T_0 in the
     * Foresighted reward (Eqn. 2): rises below set point + margin earn
     * nothing. Models the operator-conditioned baseline band; also sets
     * the learner's signal-to-noise (see DESIGN.md).
     */
    double foresightedRewardMargin = 0.5;

    // ---- Thermal ----
    thermal::CoolingParams cooling{};
    thermal::HeatDistributionMatrix::AnalyticParams matrixParams{};
    std::size_t matrixHorizonMinutes = 10;
    /**
     * Rise-computation kernel. Auto picks the streaming recurrence when
     * the exponential-mode fit is within factorization.streamingTolerance
     * (the analytic matrix fits exactly, so campaigns normally stream),
     * the factorized walk when only the low-rank truncation holds, and
     * the dense reference convolution otherwise. Dense / Factorized /
     * Streaming force a specific kernel (Streaming falls back to
     * Factorized, with a warning, when the fit misses tolerance).
     * Scenario key: thermal.kernel = auto|dense|factorized|streaming.
     */
    thermal::KernelMode thermalMode = thermal::KernelMode::Auto;
    /**
     * Truncation tolerance / rank cap for the factorized kernel and the
     * fit-residual admission knob for the streaming kernel
     * (thermal.streamingTolerance).
     */
    thermal::FactorizationOptions factorization{};

    // ---- Operator / emergency protocol ----
    Celsius emergencyThreshold{32.0};
    MinuteIndex emergencySustainMinutes = 2;
    MinuteIndex cappingMinutes = 5;
    Kilowatts perServerCap{0.12}; //!< 60% of the 200 W server capacity
    /** Use runtime-coordinated (overshoot-scaled) capping depth. */
    bool adaptiveCapping = false;
    Celsius shutdownThreshold{45.0};
    MinuteIndex outageRestartMinutes = 60;
    /**
     * Std-dev (deg C) of the operator's inlet-temperature sensing noise.
     * Non-zero values produce the occasional no-attack thermal
     * emergencies real colocations see (Section VII-B), which the SLA
     * statistics monitor must discriminate from attacks. Default 0 keeps
     * the paper's idealized protocol.
     */
    double operatorSensorNoise = 0.0;

    // ---- Workload ----
    TraceKind traceKind = TraceKind::Diurnal;
    double averageUtilization = 0.75; //!< of the data center capacity
    /** Shape of the default trace (per-tenant jitter applied on top). */
    trace::DiurnalTraceGenerator::Params diurnalParams{};
    /** Shape of the alternate trace. */
    trace::GoogleStyleTraceGenerator::Params googleParams{};
    /**
     * Optional externally supplied per-tenant utilization traces (e.g.
     * loaded with trace::loadTrace from real logs). When non-empty, must
     * hold exactly numBenignTenants traces; they are scaled jointly to
     * the configured average utilization and used instead of the
     * synthetic generators.
     */
    std::vector<trace::UtilizationTrace> externalBenignTraces{};

    // ---- Side channel & performance ----
    sidechannel::SideChannelParams sideChannel{};
    perf::LatencyModelParams latency{};

    // ---- Fault injection (robustness experiments) ----
    /**
     * Deterministic timeline of injected faults (empty by default: runs
     * with an empty schedule are bit-identical to builds without the
     * fault subsystem). Populated from `fault.*` scenario keys or
     * programmatically; see faults/schedule.hh and docs/faults.md.
     */
    faults::FaultSchedule faultSchedule{};

    // ---- Reproducibility ----
    std::uint64_t seed = 42;

    // ---- Campaign acceleration ----
    /**
     * Optional cache shared by campaign members (see core/setup_cache.hh):
     * simulations constructed with the same cache reuse generated benign
     * trace sets, the mean-power scale factor, the analytic heat matrix,
     * and its temporal factorization instead of recomputing them. Purely
     * a constructor-time accelerator -- behavior is bit-identical with or
     * without it (every cached value is a deterministic function of the
     * other config fields that key it). Never serialized.
     */
    std::shared_ptr<SetupCache> setupCache{};

    /** Total number of servers (benign + attacker). */
    std::size_t numServers() const
    { return layout.numRacks * layout.serversPerRack; }

    std::size_t numBenignServers() const
    { return numServers() - attackerNumServers; }

    /** Per-benign-tenant server count (must divide evenly). */
    std::size_t serversPerBenignTenant() const
    { return numBenignServers() / numBenignTenants; }

    /** Per-benign-tenant subscription. */
    Kilowatts benignSubscription() const
    {
        return Kilowatts((capacity - attackerSubscription).value() /
                         static_cast<double>(numBenignTenants));
    }

    /**
     * Full consistency check: structural constraints (server/tenant
     * divisibility, threshold ordering) plus value sanity -- every
     * physical quantity must be finite, efficiencies in (0, 1], air
     * volume and rates positive. Returns a ValidationError naming the
     * offending parameter, its value, and the accepted range.
     */
    util::Result<void> validated() const;

    /** Abort (via ECOLO_FATAL) if the configuration is inconsistent. */
    void validate() const;

    /** The paper's default 8 kW / 40-server configuration. */
    static SimulationConfig paperDefault();

    /**
     * The scaled-down 14-server / 3 kW prototype from the paper's
     * validation and appendix experiments.
     */
    static SimulationConfig prototypeScale();
};

} // namespace ecolo::core

#endif // ECOLO_CORE_CONFIG_HH
