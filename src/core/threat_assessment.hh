/**
 * @file
 * Operator-facing threat assessment: closed-form answers to "could a
 * battery-equipped tenant hurt *my* site, and with how much hardware?".
 *
 * This is the defensive counterpart of the attack policies: given a site
 * configuration and its expected peak benign load, it computes the
 * minimum attacker resources (attack load, battery energy) needed for a
 * thermal emergency and for a one-shot outage, plus the time scales
 * involved — everything Section VII's "infrastructure resilience"
 * decisions need, without running a simulation.
 */

#ifndef ECOLO_CORE_THREAT_ASSESSMENT_HH
#define ECOLO_CORE_THREAT_ASSESSMENT_HH

#include <iosfwd>

#include "core/config.hh"

namespace ecolo::core {

/** The assessment result. */
struct ThreatAssessment
{
    /** Peak benign load assumed (kW). */
    Kilowatts peakBenignLoad{0.0};
    /** Headroom between peak total load and cooling capacity (kW). */
    Kilowatts coolingHeadroom{0.0};

    // ---- Repeated attacks (thermal emergencies) ----
    /** Smallest battery attack load that can trigger an emergency. */
    Kilowatts minEmergencyAttackLoad{0.0};
    /** Minutes of sustained attack needed at the configured attack load. */
    double minutesToEmergency = 0.0;
    /** Battery energy that sustains one emergency-triggering burst. */
    KilowattHours minBatteryForEmergency{0.0};
    /** True if the configured attacker can trigger emergencies at all. */
    bool emergencyFeasible = false;

    // ---- One-shot attack (outage) ----
    /** Minutes of sustained attack to reach the shutdown threshold. */
    double minutesToShutdown = 0.0;
    /** Battery energy for a complete one-shot strike. */
    KilowattHours minBatteryForOutage{0.0};
    /** True if capping alone cannot stop the configured one-shot. */
    bool outageFeasible = false;

    // ---- Defense sizing ----
    /** Extra cooling capacity that makes the configured attacker unable
     *  to trigger emergencies at the assumed peak load. */
    Kilowatts extraCoolingToNeutralize{0.0};
};

/**
 * Assess a site. peak_benign_load defaults to the benign tenants' full
 * subscription scaled by a 0.95 coincidence factor; pass a measured value
 * for a sharper answer.
 */
ThreatAssessment
assessThreat(const SimulationConfig &config,
             Kilowatts peak_benign_load = Kilowatts(0.0));

/** Pretty-print an assessment (used by the CLI's --assess). */
void printAssessment(std::ostream &os, const SimulationConfig &config,
                     const ThreatAssessment &assessment);

} // namespace ecolo::core

#endif // ECOLO_CORE_THREAT_ASSESSMENT_HH
