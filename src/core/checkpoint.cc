#include "core/checkpoint.hh"

#include <cstdio>
#include <fstream>

#include "telemetry/telemetry.hh"
#include "util/state_io.hh"

namespace ecolo::core {

util::Result<void>
saveSimulationCheckpoint(const std::string &path, const Simulation &sim,
                         const std::string &policy_name,
                         std::uint32_t schema_version)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            return ECOLO_ERROR(util::ErrorCode::IoError,
                               "cannot open checkpoint file for writing: ",
                               tmp);
        }
        util::StateWriter writer(os);
        writer.header();
        writer.tag("CLI ");
        writer.u32(schema_version);
        writer.u64(sim.config().seed);
        writer.u64(sim.config().numServers());
        writer.str(policy_name);
        sim.saveState(writer);
        os.flush();
        if (!writer.good() || !os) {
            return ECOLO_ERROR(util::ErrorCode::IoError,
                               "short write to checkpoint file: ", tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "cannot rename checkpoint into place: ", tmp,
                           " -> ", path);
    }
    telemetry::emitEvent(sim.now(), telemetry::EventKind::CheckpointSaved,
                         static_cast<double>(sim.now()), path);
    return {};
}

util::Result<void>
loadSimulationCheckpoint(const std::string &path, Simulation &sim,
                         const std::string &policy_name,
                         std::uint32_t schema_version)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "cannot open checkpoint file: ", path);
    }
    util::StateReader reader(is);
    reader.header();
    reader.tag("CLI ");
    const std::uint32_t version = reader.u32();
    const std::uint64_t seed = reader.u64();
    const std::uint64_t servers = reader.u64();
    const std::string policy = reader.str();
    if (!reader.ok())
        return reader.status().error();
    if (version != schema_version) {
        return ECOLO_ERROR(util::ErrorCode::StateError,
                           "engine schema version mismatch for ", path,
                           ": checkpoint v", version, " vs build v",
                           schema_version,
                           " (refusing to resume across builds)");
    }
    if (seed != sim.config().seed ||
        servers != sim.config().numServers() || policy != policy_name) {
        return ECOLO_ERROR(util::ErrorCode::StateError,
                           "checkpoint fingerprint mismatch for ", path,
                           ": checkpoint (seed ", seed, ", ", servers,
                           " servers, policy ", policy,
                           ") vs run (seed ", sim.config().seed, ", ",
                           sim.config().numServers(), " servers, policy ",
                           policy_name, ")");
    }
    sim.loadState(reader);
    if (reader.ok()) {
        telemetry::emitEvent(sim.now(),
                             telemetry::EventKind::CheckpointRestored,
                             static_cast<double>(sim.now()), path);
    }
    return reader.status();
}

} // namespace ecolo::core
