#include "core/policies.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::core {

namespace {

/** Charge-if-useful fallback shared by the non-attacking branches. */
AttackAction
idleAction(const AttackObservation &obs)
{
    return obs.batterySoc < 1.0 - 1e-9 ? AttackAction::Charge
                                       : AttackAction::Standby;
}

} // namespace

AttackAction
StandbyPolicy::decide(const AttackObservation &obs)
{
    // Keep the battery topped up so the baseline is cost-comparable.
    return idleAction(obs);
}

RandomPolicy::RandomPolicy(double attack_probability, double min_attack_soc,
                           Rng rng)
    : attackProbability_(attack_probability), minAttackSoc_(min_attack_soc),
      rng_(rng)
{
    ECOLO_ASSERT(attack_probability >= 0.0 && attack_probability <= 1.0,
                 "attack probability out of [0,1]");
}

AttackAction
RandomPolicy::decide(const AttackObservation &obs)
{
    if (obs.outage || obs.cappingActive)
        return idleAction(obs);
    if (obs.batterySoc >= minAttackSoc_ &&
        rng_.bernoulli(attackProbability_)) {
        return AttackAction::Attack;
    }
    return idleAction(obs);
}

void
RandomPolicy::saveState(util::StateWriter &writer) const
{
    writer.tag("RPOL");
    rng_.saveState(writer);
}

void
RandomPolicy::loadState(util::StateReader &reader)
{
    reader.tag("RPOL");
    rng_.loadState(reader);
}

MyopicPolicy::MyopicPolicy(Kilowatts load_threshold,
                           double min_continue_soc, double min_start_soc)
    : loadThreshold_(load_threshold), minContinueSoc_(min_continue_soc),
      minStartSoc_(min_start_soc)
{
    ECOLO_ASSERT(min_continue_soc <= min_start_soc,
                 "continue threshold above start threshold");
}

AttackAction
MyopicPolicy::decide(const AttackObservation &obs)
{
    if (obs.outage || obs.cappingActive) {
        attacking_ = false; // oblige the emergency protocol
        return idleAction(obs);
    }
    if (obs.estimatedLoad < loadThreshold_) {
        attacking_ = false;
        return idleAction(obs);
    }
    const double needed = attacking_ ? minContinueSoc_ : minStartSoc_;
    if (obs.batterySoc >= needed) {
        attacking_ = true;
        return AttackAction::Attack;
    }
    attacking_ = false;
    return idleAction(obs);
}

void
MyopicPolicy::saveState(util::StateWriter &writer) const
{
    writer.tag("MPOL");
    writer.boolean(attacking_);
}

void
MyopicPolicy::loadState(util::StateReader &reader)
{
    reader.tag("MPOL");
    attacking_ = reader.boolean();
}

ForesightedPolicy::ForesightedPolicy(Params params, Rng rng)
    : params_(params), stateSpace_(params.stateSpace),
      learner_(stateSpace_.numStates(), kNumAttackActions,
               [this](std::size_t s, int a) { return postStateOf(s, a); },
               params.learner),
      rng_(rng)
{
}

double
ForesightedPolicy::socDeltaPerMinute(AttackAction action) const
{
    const auto &batt = params_.battery;
    switch (action) {
      case AttackAction::Charge:
        return batt.maxChargeRate.value() * batt.chargeEfficiency /
               (batt.capacity.value() * 60.0);
      case AttackAction::Attack:
        return -params_.attackLoad.value() /
               (batt.dischargeEfficiency * batt.capacity.value() * 60.0);
      case AttackAction::Standby:
        return 0.0;
    }
    return 0.0;
}

std::size_t
ForesightedPolicy::postStateOf(std::size_t state, int action) const
{
    const std::size_t battery_bin = stateSpace_.batteryBinFromIndex(state);
    const std::size_t load_bin = stateSpace_.loadBinFromIndex(state);
    const double soc = stateSpace_.batteryBinCenter(battery_bin);
    const double next_soc = std::clamp(
        soc + socDeltaPerMinute(static_cast<AttackAction>(action)), 0.0,
        1.0);
    return stateSpace_.indexOfBins(stateSpace_.batteryBinOf(next_soc),
                                   load_bin);
}

AttackAction
ForesightedPolicy::decide(const AttackObservation &obs)
{
    if (obs.outage || obs.cappingActive) {
        // Oblige the operator's emergency protocol; no learning on forced
        // slots.
        return idleAction(obs);
    }
    const std::size_t state =
        stateSpace_.indexOf(obs.batterySoc, obs.estimatedLoad);
    const int action = learner_.selectAction(state, rng_, params_.explore);
    return static_cast<AttackAction>(action);
}

void
ForesightedPolicy::feedback(const AttackObservation &prev,
                            AttackAction action,
                            const AttackObservation &next)
{
    if (prev.cappingActive || prev.outage)
        return; // forced compliance slots carry no decision to learn from
    const std::size_t state =
        stateSpace_.indexOf(prev.batterySoc, prev.estimatedLoad);
    const std::size_t next_state =
        stateSpace_.indexOf(next.batterySoc, next.estimatedLoad);

    // Eqn. (2): w * [T - T0]^+ - beta(a).
    const double rise = std::max(
        0.0, (next.inletTemperature - params_.baselineInlet).value());
    const double cost = action == AttackAction::Attack ? 1.0 : 0.0;
    const double reward = params_.weight * rise - cost;

    learner_.update(state, static_cast<int>(action), reward, next_state);
}

void
ForesightedPolicy::onDayBoundary(long day)
{
    (void)day;
    learner_.advanceDay();
}

void
ForesightedPolicy::warmStart()
{
    // Rough per-minute supply-temperature gain of attacking, from the
    // aggregate energy-balance rate (~1.3 K per minute per kW of overload
    // for the default container).
    constexpr double rise_per_overload_kw = 1.3;
    double best_attack_q = 0.0;
    for (std::size_t lb = 0; lb < stateSpace_.loadBins(); ++lb) {
        const Kilowatts load = stateSpace_.loadBinCenter(lb);
        const double overload =
            (load + params_.attackLoad - params_.capacity).value();
        const double q_attack =
            params_.weight * std::max(0.0, overload) *
                rise_per_overload_kw -
            1.0;
        best_attack_q = std::max(best_attack_q, q_attack);
        for (std::size_t bb = 0; bb < stateSpace_.batteryBins(); ++bb) {
            const std::size_t s = stateSpace_.indexOfBins(bb, lb);
            const bool has_energy = bb > 0;
            learner_.setQValue(s, static_cast<int>(AttackAction::Attack),
                               has_energy ? q_attack : -1.0);
            learner_.setQValue(s, static_cast<int>(AttackAction::Charge),
                               0.0);
            learner_.setQValue(s, static_cast<int>(AttackAction::Standby),
                               0.0);
        }
    }
    // Stored battery energy is worth roughly the attacks it can fund.
    for (std::size_t bb = 0; bb < stateSpace_.batteryBins(); ++bb) {
        const double soc = stateSpace_.batteryBinCenter(bb);
        const double minutes_of_attack =
            soc * params_.battery.capacity.value() *
            params_.battery.dischargeEfficiency /
            (params_.attackLoad.value() / 60.0);
        const double value =
            0.25 * std::max(0.0, best_attack_q) * minutes_of_attack;
        for (std::size_t lb = 0; lb < stateSpace_.loadBins(); ++lb)
            learner_.setPostValue(stateSpace_.indexOfBins(bb, lb), value);
    }
}

void
ForesightedPolicy::burnInSchedules(int days)
{
    for (int d = 0; d < days; ++d)
        learner_.advanceDay();
}

AttackAction
ForesightedPolicy::greedyActionFor(double soc, Kilowatts load) const
{
    const std::size_t state = stateSpace_.indexOf(soc, load);
    return static_cast<AttackAction>(learner_.greedyAction(state));
}

VanillaRlPolicy::VanillaRlPolicy(ForesightedPolicy::Params params, Rng rng)
    : params_(params), stateSpace_(params.stateSpace),
      learner_(stateSpace_.numStates(), kNumAttackActions, params.learner),
      rng_(rng)
{
}

AttackAction
VanillaRlPolicy::decide(const AttackObservation &obs)
{
    if (obs.outage || obs.cappingActive)
        return idleAction(obs);
    const std::size_t state =
        stateSpace_.indexOf(obs.batterySoc, obs.estimatedLoad);
    return static_cast<AttackAction>(
        learner_.selectAction(state, rng_, params_.explore));
}

void
VanillaRlPolicy::feedback(const AttackObservation &prev,
                          AttackAction action,
                          const AttackObservation &next)
{
    if (prev.cappingActive || prev.outage)
        return;
    const std::size_t state =
        stateSpace_.indexOf(prev.batterySoc, prev.estimatedLoad);
    const std::size_t next_state =
        stateSpace_.indexOf(next.batterySoc, next.estimatedLoad);
    const double rise = std::max(
        0.0, (next.inletTemperature - params_.baselineInlet).value());
    const double cost = action == AttackAction::Attack ? 1.0 : 0.0;
    learner_.update(state, static_cast<int>(action),
                    params_.weight * rise - cost, next_state);
}

void
VanillaRlPolicy::onDayBoundary(long day)
{
    (void)day;
    learner_.advanceDay();
}

OneShotPolicy::OneShotPolicy(Kilowatts load_threshold,
                             MinuteIndex arm_delay_minutes)
    : loadThreshold_(load_threshold), armDelay_(arm_delay_minutes)
{
}

AttackAction
OneShotPolicy::decide(const AttackObservation &obs)
{
    if (done_ || obs.outage)
        return AttackAction::Standby;
    if (firing_) {
        if (obs.batterySoc <= 1e-6) {
            done_ = true;
            return AttackAction::Standby;
        }
        return AttackAction::Attack; // press on, capping or not
    }
    if (obs.time >= armDelay_ && obs.batterySoc >= 1.0 - 1e-9 &&
        obs.estimatedLoad >= loadThreshold_) {
        firing_ = true;
        return AttackAction::Attack;
    }
    return idleAction(obs);
}

void
OneShotPolicy::saveState(util::StateWriter &writer) const
{
    writer.tag("1POL");
    writer.boolean(firing_);
    writer.boolean(done_);
}

void
OneShotPolicy::loadState(util::StateReader &reader)
{
    reader.tag("1POL");
    firing_ = reader.boolean();
    done_ = reader.boolean();
}

} // namespace ecolo::core
