/**
 * @file
 * Attack policies (Sections III-C and IV).
 *
 *  - StandbyPolicy:     never attacks (no-attack baseline).
 *  - RandomPolicy:      attacks with a fixed probability whenever the
 *                       battery has energy, oblivious of the load.
 *  - MyopicPolicy:      attacks greedily whenever the estimated load
 *                       crosses a threshold and the battery has energy.
 *  - ForesightedPolicy: the paper's batch-Q-learning policy that learns
 *                       when attacking pays off in the long run.
 *  - OneShotPolicy:     waits for a full battery and a high load, then
 *                       discharges everything to force an outage; keeps
 *                       injecting heat even through emergency capping.
 *
 * All repeated-attack policies comply with the operator's emergency
 * protocol (they stop attacking while capping is in force); only the
 * one-shot attacker violates it, since its goal is the outage itself.
 */

#ifndef ECOLO_CORE_POLICIES_HH
#define ECOLO_CORE_POLICIES_HH

#include <memory>
#include <optional>
#include <string>

#include "battery/battery.hh"
#include "core/mdp.hh"
#include "core/rl/batch_q.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace ecolo::core {

/** Interface the simulation engine drives. */
class AttackPolicy
{
  public:
    virtual ~AttackPolicy() = default;

    virtual const char *name() const = 0;

    /** Choose this minute's action from the current observation. */
    virtual AttackAction decide(const AttackObservation &obs) = 0;

    /**
     * Learning hook: the observation that resulted from the last decided
     * action. Non-learning policies ignore it.
     */
    virtual void
    feedback(const AttackObservation &prev, AttackAction action,
             const AttackObservation &next)
    {
        (void)prev;
        (void)action;
        (void)next;
    }

    /** Called once per simulated day (schedules, bookkeeping). */
    virtual void onDayBoundary(long day) { (void)day; }

    /** True if the one-shot attacker ignores capping compliance. */
    virtual bool ignoresCapping() const { return false; }

    /**
     * Checkpoint hooks. Stateless policies need nothing; policies with
     * decision state or an RNG stream override both so a restored run
     * reproduces the uninterrupted one bit-identically. The learning
     * policies (Foresighted/VanillaRL) intentionally keep the default:
     * their tables persist via saveTables/loadTables, and campaign
     * checkpointing (core/fleet) only drives OneShotPolicy.
     */
    virtual void saveState(util::StateWriter &writer) const { (void)writer; }
    virtual void loadState(util::StateReader &reader) { (void)reader; }
};

/** Never attacks. */
class StandbyPolicy : public AttackPolicy
{
  public:
    const char *name() const override { return "Standby"; }
    AttackAction decide(const AttackObservation &obs) override;
};

/** Load-oblivious random attacker. */
class RandomPolicy : public AttackPolicy
{
  public:
    RandomPolicy(double attack_probability, double min_attack_soc, Rng rng);

    const char *name() const override { return "Random"; }
    AttackAction decide(const AttackObservation &obs) override;
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;

  private:
    double attackProbability_;
    double minAttackSoc_;
    Rng rng_;
};

/**
 * Greedy threshold attacker. Starts an attack burst whenever the
 * estimated load crosses the threshold and the battery holds a useful
 * reserve, then keeps attacking until the operator declares an emergency,
 * the load drops, or the battery runs dry (the paper's Fig. 9 behaviour:
 * "attacks continue until the operator announces a thermal emergency").
 */
class MyopicPolicy : public AttackPolicy
{
  public:
    /**
     * @param load_threshold estimated load (incl. own subscription) that
     *        triggers an attack burst
     * @param min_continue_soc battery level below which an ongoing burst
     *        must stop (one minute's worth of attack energy)
     * @param min_start_soc battery reserve required to *start* a burst;
     *        without it the policy degenerates into one-minute dribbles
     *        that never accumulate heat
     */
    MyopicPolicy(Kilowatts load_threshold, double min_continue_soc,
                 double min_start_soc = 0.5);

    const char *name() const override { return "Myopic"; }
    AttackAction decide(const AttackObservation &obs) override;
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;

    Kilowatts loadThreshold() const { return loadThreshold_; }

  private:
    Kilowatts loadThreshold_;
    double minContinueSoc_;
    double minStartSoc_;
    bool attacking_ = false;
};

/** The paper's reinforcement-learning attacker. */
class ForesightedPolicy : public AttackPolicy
{
  public:
    struct Params
    {
        double weight = 14.0;          //!< w in the reward (Eqn. 2)
        Celsius baselineInlet{27.0};   //!< T_0 in the reward
        Kilowatts capacity{8.0};       //!< data center capacity (context)
        Kilowatts attackLoad{1.0};     //!< battery heat during an attack
        battery::BatterySpec battery{};//!< for post-state battery dynamics
        StateSpace::Params stateSpace{};
        LearnerParams learner{};
        bool explore = true;           //!< epsilon-greedy during learning
    };

    ForesightedPolicy(Params params, Rng rng);

    // The learner holds a post-state callback bound to this object, so
    // copying/moving would leave the copy consulting the original.
    ForesightedPolicy(const ForesightedPolicy &) = delete;
    ForesightedPolicy &operator=(const ForesightedPolicy &) = delete;

    const char *name() const override { return "Foresighted"; }
    AttackAction decide(const AttackObservation &obs) override;
    void feedback(const AttackObservation &prev, AttackAction action,
                  const AttackObservation &next) override;
    void onDayBoundary(long day) override;

    /**
     * Heuristic table initialization standing in for the paper's offline
     * warm start on random traces: seeds Q(s, attack) with the immediate
     * overload-driven temperature gain minus the unit cost, and the
     * post-state values with a battery-energy bonus. Online learning then
     * refines both.
     */
    void warmStart();

    /**
     * Advance the learning-rate and exploration schedules as if the
     * learner had already trained for the given number of days. The paper
     * initializes its Q tables offline on random power traces before the
     * online year starts; the offline phase both shapes the tables
     * (warmStart) and burns in the schedules -- without the burn-in, the
     * day-one learning rate (delta = 1) simply overwrites the offline
     * tables with single-sample estimates.
     */
    void burnInSchedules(int days);

    /** Greedy action for an arbitrary (soc, load) pair -- Fig. 10 dumps. */
    AttackAction greedyActionFor(double soc, Kilowatts load) const;

    /** Persist / restore the learned tables (train once, replay later). */
    void saveTables(std::ostream &os) const { learner_.save(os); }
    void loadTables(std::istream &is) { learner_.load(is); }

    const StateSpace &stateSpace() const { return stateSpace_; }
    const BatchQLearning &learner() const { return learner_; }
    const Params &params() const { return params_; }

  private:
    std::size_t postStateOf(std::size_t state, int action) const;
    double socDeltaPerMinute(AttackAction action) const;

    Params params_;
    StateSpace stateSpace_;
    BatchQLearning learner_;
    Rng rng_;
};

/**
 * Ablation variant of ForesightedPolicy that uses textbook one-table
 * Q-learning instead of the paper's batch (post-state) learner. Used by
 * the RL ablation benchmark to quantify how much the post-state
 * factorization buys.
 */
class VanillaRlPolicy : public AttackPolicy
{
  public:
    VanillaRlPolicy(ForesightedPolicy::Params params, Rng rng);

    const char *name() const override { return "VanillaRL"; }
    AttackAction decide(const AttackObservation &obs) override;
    void feedback(const AttackObservation &prev, AttackAction action,
                  const AttackObservation &next) override;
    void onDayBoundary(long day) override;

    const VanillaQLearning &learner() const { return learner_; }

  private:
    ForesightedPolicy::Params params_;
    StateSpace stateSpace_;
    VanillaQLearning learner_;
    Rng rng_;
};

/** Outage-seeking single-strike attacker. */
class OneShotPolicy : public AttackPolicy
{
  public:
    /**
     * @param load_threshold estimated load (incl. own subscription) above
     *        which the strike is launched
     * @param arm_delay_minutes do not strike before this time (lets demos
     *        and benches position the strike)
     */
    OneShotPolicy(Kilowatts load_threshold, MinuteIndex arm_delay_minutes);

    const char *name() const override { return "OneShot"; }
    AttackAction decide(const AttackObservation &obs) override;
    bool ignoresCapping() const override { return true; }
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;

    bool fired() const { return firing_ || done_; }
    bool exhausted() const { return done_; }

  private:
    Kilowatts loadThreshold_;
    MinuteIndex armDelay_;
    bool firing_ = false;
    bool done_ = false;
};

} // namespace ecolo::core

#endif // ECOLO_CORE_POLICIES_HH
