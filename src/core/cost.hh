/**
 * @file
 * Cost model (Section VI-C): ballpark annual dollar figures for both sides.
 *
 * Attacker: power-capacity subscription ($150/kW/month), electricity
 * ($0.1/kWh), and amortized server purchases ($4,500 each) -- the paper's
 * published rates. Benign tenants: the paper monetizes the increased
 * 95th-percentile latency during emergencies following prior colo-cost
 * studies; we expose that as a rate per (tenant x emergency-hour x unit of
 * excess normalized latency), calibrated so the paper's default scenario
 * (Foresighted, ~2.5-3% of the year in emergencies, ~3x normalized p95)
 * lands near its "$60+K/year" figure.
 */

#ifndef ECOLO_CORE_COST_HH
#define ECOLO_CORE_COST_HH

#include <cstddef>

#include "core/config.hh"
#include "core/metrics.hh"
#include "util/units.hh"

namespace ecolo::core {

/** Tunable rates. */
struct CostModelParams
{
    double subscriptionPerKwMonth = 150.0;
    double energyPerKwh = 0.10;
    double serverCost = 4500.0;
    double serverAmortizationYears = 4.0;
    /** $ per tenant per emergency-hour per unit of excess normalized p95. */
    double degradationCostRate = 25.0;
    /** $ per minute of outage (Ponemon-style, scaled to edge size). */
    double outageCostPerMinute = 1000.0;
};

/** Attacker-side annual cost breakdown. */
struct AttackerCost
{
    double subscriptionUsd = 0.0;
    double energyUsd = 0.0;
    double serversUsd = 0.0;
    double total() const
    { return subscriptionUsd + energyUsd + serversUsd; }
};

/** Benign-side annual cost breakdown. */
struct BenignCost
{
    double degradationUsd = 0.0;
    double outageUsd = 0.0;
    double total() const { return degradationUsd + outageUsd; }
};

/** The calculator. */
class CostModel
{
  public:
    CostModel() = default;
    explicit CostModel(CostModelParams params) : params_(params) {}

    /**
     * Attacker's annual cost for the given configuration; energy is taken
     * from the run's metered consumption, extrapolated to a year.
     */
    AttackerCost attackerAnnualCost(const SimulationConfig &config,
                                    const SimulationMetrics &metrics) const;

    /** Benign tenants' annual cost implied by the run's emergencies. */
    BenignCost benignAnnualCost(const SimulationConfig &config,
                                const SimulationMetrics &metrics) const;

    const CostModelParams &params() const { return params_; }

  private:
    CostModelParams params_;
};

} // namespace ecolo::core

#endif // ECOLO_CORE_COST_HH
