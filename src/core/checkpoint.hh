/**
 * @file
 * Whole-Simulation checkpoint save/restore with a versioned fingerprint.
 *
 * Hoisted out of edgetherm_cli so the serving stack (SIGTERM drain
 * checkpoints its in-flight runs) and tests share one implementation.
 * The file layout is the PR-2 StateWriter format: header, "CLI " tag,
 * then a fingerprint -- engine schema version, seed, server count,
 * policy name -- that must match the restoring run before any state is
 * interpreted. The schema version gate guarantees a checkpoint written
 * by an older, behaviorally different build is rejected instead of
 * silently resuming a diverged trajectory.
 */

#ifndef ECOLO_CORE_CHECKPOINT_HH
#define ECOLO_CORE_CHECKPOINT_HH

#include <string>

#include "core/engine.hh"
#include "core/version.hh"
#include "util/result.hh"

namespace ecolo::core {

/**
 * Atomically persist one Simulation (fingerprint + full state) to
 * `path` via tmp+rename. @param schema_version is the build's engine
 * version; overriding it exists for regression tests only.
 */
util::Result<void>
saveSimulationCheckpoint(const std::string &path, const Simulation &sim,
                         const std::string &policy_name,
                         std::uint32_t schema_version =
                             kEngineSchemaVersion);

/**
 * Restore a checkpoint written by saveSimulationCheckpoint into a
 * freshly constructed, same-config Simulation. Fails with IoError on
 * unreadable files and StateError on corrupt data or any fingerprint
 * mismatch (schema version, seed, server count, policy name).
 */
util::Result<void>
loadSimulationCheckpoint(const std::string &path, Simulation &sim,
                         const std::string &policy_name,
                         std::uint32_t schema_version =
                             kEngineSchemaVersion);

} // namespace ecolo::core

#endif // ECOLO_CORE_CHECKPOINT_HH
