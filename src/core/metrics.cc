#include "core/metrics.hh"

namespace ecolo::core {

SimulationMetrics::SimulationMetrics() : inletHistogram_(25.0, 50.0, 50)
{
}

void
SimulationMetrics::recordMinute(const MinuteRecord &record,
                                Celsius supply_set_point, Celsius mean_inlet)
{
    ++minutes_;
    if (record.action == AttackAction::Attack &&
        record.attackBatteryPower.value() > 1e-9) {
        ++attackMinutes_;
    }
    if (record.cappingActive)
        ++emergencyMinutes_;
    if (record.outage)
        ++outageMinutes_;
    if (record.degraded)
        ++degradedMinutes_;
    inletRise_.add((mean_inlet - supply_set_point).value());
    maxInlet_.add(record.maxInlet.value());
    inletHistogram_.add(record.maxInlet.value());
    attackerGridEnergy_ +=
        (record.meteredTotal - record.benignPower) * ecolo::minutes(1);
    if (record.attackBatteryPower.value() > 0.0)
        batteryDelivered_ += record.attackBatteryPower * ecolo::minutes(1);
}

void
SimulationMetrics::recordEmergencyPerf(double normalized_p95)
{
    emergencyPerf_.add(normalized_p95);
}

void
SimulationMetrics::recordTenantEmergencyPerf(std::size_t tenant,
                                             double normalized_p95)
{
    if (tenant >= tenantPerf_.size())
        tenantPerf_.resize(tenant + 1);
    tenantPerf_[tenant].add(normalized_p95);
}

double
SimulationMetrics::emergencyFraction() const
{
    if (minutes_ == 0)
        return 0.0;
    return static_cast<double>(emergencyMinutes_) /
           static_cast<double>(minutes_);
}

double
SimulationMetrics::attackHoursPerDay() const
{
    if (minutes_ == 0)
        return 0.0;
    const double days = static_cast<double>(minutes_) /
                        static_cast<double>(kMinutesPerDay);
    return static_cast<double>(attackMinutes_) / 60.0 / days;
}

double
SimulationMetrics::emergencyHoursPerYear() const
{
    return emergencyFraction() * 365.0 * 24.0;
}

void
SimulationMetrics::saveState(util::StateWriter &writer) const
{
    writer.tag("METR");
    writer.i64(minutes_);
    writer.i64(attackMinutes_);
    writer.i64(emergencyMinutes_);
    writer.i64(outageMinutes_);
    writer.i64(degradedMinutes_);
    writer.u64(emergencies_);
    writer.u64(outages_);
    inletRise_.saveState(writer);
    maxInlet_.saveState(writer);
    emergencyPerf_.saveState(writer);
    writer.u64(tenantPerf_.size());
    for (const OnlineStats &stats : tenantPerf_)
        stats.saveState(writer);
    inletHistogram_.saveState(writer);
    writer.f64(attackerGridEnergy_.value());
    writer.f64(batteryDelivered_.value());
}

void
SimulationMetrics::loadState(util::StateReader &reader)
{
    reader.tag("METR");
    minutes_ = reader.i64();
    attackMinutes_ = reader.i64();
    emergencyMinutes_ = reader.i64();
    outageMinutes_ = reader.i64();
    degradedMinutes_ = reader.i64();
    emergencies_ = static_cast<std::size_t>(reader.u64());
    outages_ = static_cast<std::size_t>(reader.u64());
    inletRise_.loadState(reader);
    maxInlet_.loadState(reader);
    emergencyPerf_.loadState(reader);
    tenantPerf_.resize(static_cast<std::size_t>(reader.u64()));
    for (OnlineStats &stats : tenantPerf_)
        stats.loadState(reader);
    inletHistogram_.loadState(reader);
    attackerGridEnergy_ = KilowattHours(reader.f64());
    batteryDelivered_ = KilowattHours(reader.f64());
}

} // namespace ecolo::core
