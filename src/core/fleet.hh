/**
 * @file
 * Coordinated attacks across a fleet of edge colocations.
 *
 * The paper (Sections III-C, VI-A) notes that the one-shot attack "can
 * also be coordinated across multiple edge colocations for a wide-area
 * service interruption" — the scenario that matters for edge-assisted
 * driving, where a region's worth of sites going down together is far
 * worse than any single outage. FleetSimulation runs N independent sites
 * (each with its own traces and thermal state) whose attackers arm for a
 * common strike minute, and reports the wide-area availability impact.
 */

#ifndef ECOLO_CORE_FLEET_HH
#define ECOLO_CORE_FLEET_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/lane_batch.hh"
#include "core/version.hh"
#include "util/result.hh"
#include "util/state_io.hh"

namespace ecolo::core {

/** Outcome of a coordinated fleet campaign. */
struct FleetResult
{
    std::size_t numSites = 0;
    /** Sites that suffered at least one outage. */
    std::size_t sitesWithOutage = 0;
    /** Largest number of sites simultaneously de-energized. */
    std::size_t maxSimultaneousOutages = 0;
    /** Minutes during which at least half the fleet was down. */
    MinuteIndex wideAreaInterruptionMinutes = 0;
    /** Minutes from the strike minute to the first outage; -1 if none. */
    MinuteIndex firstOutageDelay = -1;
    /** Per-site outage minutes. */
    std::vector<MinuteIndex> siteOutageMinutes;
};

/** N edge colocations attacked in lock-step. */
class FleetSimulation
{
  public:
    /**
     * @param base_config per-site configuration; each site gets a distinct
     *        seed derived from base_config.seed (independent tenants and
     *        side channels)
     * @param num_sites fleet size
     * @param strike_minute the coordinated arm time; each site's one-shot
     *        attacker fires at the first minute >= strike_minute when its
     *        local load estimate crosses strike_threshold
     * @param strike_threshold per-site load gate (set low for tight
     *        simultaneity, high for maximal per-site damage)
     */
    FleetSimulation(SimulationConfig base_config, std::size_t num_sites,
                    MinuteIndex strike_minute, Kilowatts strike_threshold);

    /**
     * Advance every site by the given number of minutes. Sites are
     * packed into SIMD lane groups (core/lane_batch.hh) that run
     * concurrently on the global thread pool -- one SoA thermal pass
     * advances several sites at once -- and the outcome is bit-identical
     * to a serial minute-by-minute sweep.
     */
    void run(MinuteIndex minutes);

    /** Aggregate results so far. */
    const FleetResult &result() const { return result_; }

    std::size_t numSites() const { return sites_.size(); }
    const Simulation &site(std::size_t i) const { return *sites_.at(i); }
    MinuteIndex strikeMinute() const { return strikeMinute_; }

    /** Sites currently in outage. */
    std::size_t sitesDownNow() const;

    /** Minutes simulated so far. */
    MinuteIndex now() const { return now_; }

    /**
     * Atomically persist the complete campaign state -- a config
     * fingerprint, the aggregate result, and every site's full
     * simulation state -- to `path` (written to `path + ".tmp"` first,
     * then renamed, so a crash mid-write never clobbers the previous
     * good checkpoint). A fleet constructed with the same parameters
     * and restored via loadCheckpoint continues bit-identically to the
     * uninterrupted campaign. The fingerprint includes the engine
     * schema version (core/version.hh); @param schema_version exists
     * for regression tests only.
     */
    util::Result<void>
    saveCheckpoint(const std::string &path,
                   std::uint32_t schema_version =
                       kEngineSchemaVersion) const;

    /**
     * Restore a checkpoint written by saveCheckpoint into this (freshly
     * constructed, same-parameters) fleet. Fails with a structured error
     * on I/O problems, corrupt data, or a config fingerprint mismatch;
     * after a failure the fleet may be partially restored and should be
     * discarded (callers typically rebuild and cold-start instead of
     * dying -- that is the graceful-degradation contract).
     */
    util::Result<void>
    loadCheckpoint(const std::string &path,
                   std::uint32_t schema_version = kEngineSchemaVersion);

  private:
    std::vector<std::unique_ptr<Simulation>> sites_;
    std::vector<bool> downNow_;
    MinuteIndex strikeMinute_;
    MinuteIndex now_ = 0;
    FleetResult result_;
    /**
     * Per-site outage-flag scratch reused across run() calls (rows keep
     * their capacity), so the steady-state campaign loop -- e.g. a
     * checkpointing driver calling run() in small chunks -- allocates
     * nothing per chunk once warm.
     */
    std::vector<std::vector<unsigned char>> downScratch_;
    /**
     * Lane-batch executor, built lazily on the first run() so its group
     * sizing can see the thread pool actually in use. Site index ==
     * lane id (add order), which the outage slot hook relies on.
     */
    std::unique_ptr<LaneBatchRunner> runner_;
};

} // namespace ecolo::core

#endif // ECOLO_CORE_FLEET_HH
