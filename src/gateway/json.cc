#include "gateway/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "telemetry/events.hh" // jsonEscape

namespace ecolo::gateway {

const char *
toString(JsonValue::Kind kind)
{
    switch (kind) {
    case JsonValue::Kind::Null:
        return "null";
    case JsonValue::Kind::Bool:
        return "bool";
    case JsonValue::Kind::Number:
        return "number";
    case JsonValue::Kind::String:
        return "string";
    case JsonValue::Kind::Array:
        return "array";
    case JsonValue::Kind::Object:
        return "object";
    }
    return "?";
}

const JsonValue *
JsonValue::member(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members_)
        if (name == key)
            return &value;
    return nullptr;
}

std::string
jsonQuote(const std::string &s)
{
    return "\"" + telemetry::jsonEscape(s) + "\"";
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no Inf/NaN; null beats invalid output
    const double rounded = std::nearbyint(v);
    if (rounded == v && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/**
 * Recursive-descent parser over the input bytes. All failures funnel
 * through fail() so every message names the byte offset.
 */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::size_t max_depth)
        : text_(text), maxDepth_(max_depth)
    {}

    util::Result<JsonValue>
    run()
    {
        skipWs();
        auto value = parseValue(0);
        if (!value)
            return value;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing bytes after JSON document");
        return value;
    }

  private:
    util::Error
    failError(const std::string &what) const
    {
        return ECOLO_ERROR(util::ErrorCode::ParseError, "json: ", what,
                           " at byte ", pos_);
    }

    util::Result<JsonValue>
    fail(const std::string &what) const
    {
        return failError(what);
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(const char *literal)
    {
        std::size_t n = 0;
        while (literal[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, literal) != 0)
            return false;
        pos_ += n;
        return true;
    }

    util::Result<JsonValue>
    parseValue(std::size_t depth)
    {
        if (depth > maxDepth_)
            return fail("nesting deeper than the configured limit");
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
        case '{':
            return parseObject(depth);
        case '[':
            return parseArray(depth);
        case '"':
            return parseString();
        case 't':
        case 'f':
            return parseBool();
        case 'n':
            if (!consume("null"))
                return fail("invalid literal");
            return JsonValue{};
        default:
            return parseNumber();
        }
    }

    util::Result<JsonValue>
    parseBool()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Bool;
        if (consume("true")) {
            v.bool_ = true;
            return v;
        }
        if (consume("false")) {
            v.bool_ = false;
            return v;
        }
        return fail("invalid literal");
    }

    util::Result<JsonValue>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        // int part: 0, or [1-9][0-9]*
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("invalid number");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!atEnd() && peek() == '.') {
            ++pos_;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("invalid number: digits must follow '.'");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("invalid number: empty exponent");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("invalid number");
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        v.number_ = parsed;
        return v;
    }

    util::Result<JsonValue>
    parseString()
    {
        auto text = parseStringBody();
        if (!text)
            return text.error();
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        v.string_ = text.take();
        return v;
    }

    util::Result<std::string>
    parseStringBody()
    {
        ++pos_; // opening quote, guaranteed by the caller
        std::string out;
        for (;;) {
            if (atEnd())
                return failError("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (c < 0x20)
                return failError(
                    "raw control character in string");
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                ++pos_;
                continue;
            }
            ++pos_; // backslash
            if (atEnd())
                return failError("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"':
                out.push_back('"');
                break;
            case '\\':
                out.push_back('\\');
                break;
            case '/':
                out.push_back('/');
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                auto unit = parseHex4();
                if (!unit)
                    return unit.error();
                std::uint32_t code = unit.value();
                if (code >= 0xD800 && code <= 0xDBFF) {
                    // High surrogate: the low half must follow.
                    if (atEnd() || text_[pos_] != '\\' ||
                        pos_ + 1 >= text_.size() ||
                        text_[pos_ + 1] != 'u')
                        return failError("lone high surrogate");
                    pos_ += 2;
                    auto low = parseHex4();
                    if (!low)
                        return low.error();
                    if (low.value() < 0xDC00 || low.value() > 0xDFFF)
                        return failError("invalid low surrogate");
                    code = 0x10000 + ((code - 0xD800) << 10) +
                           (low.value() - 0xDC00);
                } else if (code >= 0xDC00 && code <= 0xDFFF) {
                    return failError("lone low surrogate");
                }
                appendUtf8(out, code);
                break;
            }
            default:
                return failError("unknown escape");
            }
        }
    }

    util::Result<std::uint32_t>
    parseHex4()
    {
        if (pos_ + 4 > text_.size())
            return failError("truncated \\u escape");
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return failError("non-hex digit in \\u escape");
        }
        pos_ += 4;
        return value;
    }

    static void
    appendUtf8(std::string &out, std::uint32_t code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    util::Result<JsonValue>
    parseArray(std::size_t depth)
    {
        ++pos_; // '['
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            auto item = parseValue(depth + 1);
            if (!item)
                return item;
            v.items_.push_back(item.take());
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']')
                return v;
            if (c != ',') {
                --pos_;
                return fail("expected ',' or ']' in array");
            }
        }
    }

    util::Result<JsonValue>
    parseObject(std::size_t depth)
    {
        ++pos_; // '{'
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            if (atEnd() || peek() != '"')
                return fail("expected object key");
            auto key = parseStringBody();
            if (!key)
                return key.error();
            for (const auto &[name, unused] : v.members_) {
                (void)unused;
                if (name == key.value())
                    return fail("duplicate object key '" + key.value() +
                                "'");
            }
            skipWs();
            if (atEnd() || text_[pos_++] != ':') {
                if (!atEnd())
                    --pos_;
                return fail("expected ':' after object key");
            }
            skipWs();
            auto value = parseValue(depth + 1);
            if (!value)
                return value;
            v.members_.emplace_back(key.take(), value.take());
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}')
                return v;
            if (c != ',') {
                --pos_;
                return fail("expected ',' or '}' in object");
            }
        }
    }

    const std::string &text_;
    const std::size_t maxDepth_;
    std::size_t pos_ = 0;
};

util::Result<JsonValue>
JsonValue::parse(const std::string &text, std::size_t max_depth)
{
    return JsonParser(text, max_depth).run();
}

} // namespace ecolo::gateway
