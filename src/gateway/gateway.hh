/**
 * @file
 * The HTTP/JSON gateway: an async epoll front end that translates REST
 * calls into edgetherm-rpc-v2 conversations against a sharded cluster
 * of edgetherm-serve workers.
 *
 * One event-loop thread owns every client socket (accept, incremental
 * HTTP parse, response writes, keep-alive, idle reaping); a small pool
 * of forwarder threads performs the *blocking* worker RPC so a
 * year-long campaign on a worker never stalls the loop. The two sides
 * meet at a completion queue drained through an eventfd: forwarders
 * push response bytes tagged with a connection id, the loop stitches
 * them into the right socket -- or drops them when the client has
 * meanwhile gone away.
 *
 * Routes (all JSON; see docs/gateway.md for schemas):
 *
 *   POST   /v1/runs       submit a run; sync (default), chunked
 *                         streaming ("stream": true, NDJSON progress
 *                         events), or fire-and-poll ("async": true,
 *                         202 + id)
 *   GET    /v1/runs       recent run registry
 *   GET    /v1/runs/{id}  one run's state / terminal envelope
 *   DELETE /v1/runs/{id}  cancel (forwards CANCEL to the owning worker)
 *   POST   /v1/fleet      scatter/gather a batch of runs
 *   GET    /v1/stats      gateway.* metrics document
 *   GET    /v1/healthz    liveness + worker health summary
 *
 * Requests are validated with the *server's own* prepareSubmitPayload,
 * so the content-addressed cache key the gateway shards on is exactly
 * the key the chosen worker will cache under. Typed util::Result
 * errors map onto HTTP statuses (ValidationError/ParseError -> 400,
 * RETRY_AFTER backpressure -> 429 + Retry-After, DEADLINE_EXCEEDED ->
 * 504, draining worker -> 503, all replicas unreachable -> 502);
 * every failure is a JSON error body, never silence.
 */

#ifndef ECOLO_GATEWAY_GATEWAY_HH
#define ECOLO_GATEWAY_GATEWAY_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gateway/cluster.hh"
#include "gateway/http.hh"
#include "gateway/json.hh"
#include "serve/client.hh"
#include "telemetry/latency.hh"
#include "util/result.hh"
#include "util/socket.hh"

namespace ecolo::gateway {

struct GatewayOptions
{
    std::uint16_t port = 0; //!< 0 = ephemeral; see Gateway::port()
    std::vector<WorkerAddress> workers;
    std::size_t numForwarders = 4;   //!< concurrent worker RPCs
    std::size_t maxConnections = 128;
    int idleTimeoutMs = 30000;       //!< reap idle keep-alive clients
    /** Same bound the workers enforce; rejected here with a 400. */
    std::int64_t maxHorizonMinutes = 366L * 24 * 60 * 100;
    std::size_t maxRetainedRuns = 256; //!< registry retention
    std::size_t maxFleetRuns = 64;     //!< entries per /v1/fleet call
    HttpRequestParser::Limits http;
    WorkerPool::Options pool;
};

class Gateway
{
  public:
    explicit Gateway(GatewayOptions options);
    ~Gateway();

    Gateway(const Gateway &) = delete;
    Gateway &operator=(const Gateway &) = delete;

    /** Bind, start the worker pool, forwarders, and the event loop. */
    util::Result<void> start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Begin the drain sequence; idempotent, returns immediately. */
    void requestDrain();

    bool drainRequested() const
    { return draining_.load(std::memory_order_acquire); }
    bool running() const
    { return running_.load(std::memory_order_acquire); }

    /** Block until the drain completed and every thread was joined. */
    void waitUntilStopped();

    /** The edgetherm-metrics-v1 document with gateway.* mirrored in. */
    std::string metricsJson() const;

    WorkerPool &pool() { return pool_; }
    const WorkerPool &pool() const { return pool_; }

    /** Always-on HTTP counters (mirrored into telemetry by metricsJson). */
    struct HttpStats
    {
        std::uint64_t connectionsAccepted = 0;
        std::uint64_t connectionsRejected = 0; //!< over maxConnections
        std::uint64_t connectionsActive = 0;
        std::uint64_t requests = 0;
        std::uint64_t responses2xx = 0;
        std::uint64_t responses4xx = 0;
        std::uint64_t responses5xx = 0;
        std::uint64_t parseErrors = 0;
        std::uint64_t expectContinue = 0;
        std::uint64_t bytesIn = 0;
        std::uint64_t bytesOut = 0;
        std::uint64_t idleClosed = 0;
    };
    HttpStats httpStats() const;

    /** Route buckets for the latency tails. */
    enum class Route : int
    {
        Runs = 0,  //!< POST /v1/runs, /v1/fleet, DELETE (worker-bound)
        Stats = 1, //!< GET /v1/stats, /v1/healthz
        Other = 2, //!< registry reads, errors, unknown routes
    };
    telemetry::TailLatency::Snapshot routeLatency(Route route) const
    { return latency_[static_cast<int>(route)].snapshot(); }

  private:
    /** How a registry run currently stands. */
    enum class RunState : int
    {
        Queued,
        Running,
        Completed,
        Cancelled,
        Drained,
        RetryLater,
        Error,
        Unreachable, //!< every replica's transport failed
    };
    static const char *toString(RunState state);

    struct RunRecord
    {
        std::uint64_t id = 0;
        RunState state = RunState::Queued;
        std::string policy;
        std::int64_t horizonMinutes = 0;
        std::size_t worker = SIZE_MAX; //!< SIZE_MAX until accepted
        std::uint64_t remoteId = 0;
        bool cacheHit = false;
        std::size_t failovers = 0;
        std::size_t attempts = 0;
        int httpStatus = 0;        //!< terminal only
        std::string envelope;      //!< terminal JSON body
        std::shared_ptr<std::atomic<bool>> cancelRequested =
            std::make_shared<std::atomic<bool>>(false);
    };

    /** One client connection, owned by the event loop. */
    struct Conn
    {
        std::uint64_t id = 0;
        util::TcpConnection sock;
        HttpRequestParser parser;
        std::string pending; //!< received, not yet parsed
        std::string outBuf;
        std::size_t outOff = 0;
        bool busy = false;   //!< a forwarded request is in flight
        bool closeAfterWrite = false;
        bool continueSent = false;
        bool wantWrite = false; //!< EPOLLOUT armed
        std::chrono::steady_clock::time_point lastActivity;
    };

    /** Bytes from a forwarder for connection `connId`. */
    struct Completion
    {
        std::uint64_t connId = 0; //!< 0: no client waiting (async)
        std::string bytes;
        bool endOfResponse = false;
        bool closeAfter = false;
    };

    /** A parsed, validated POST /v1/runs body. */
    struct ParsedRun
    {
        serve::RequestSpec spec;
        std::uint64_t keyHash = 0;
        bool stream = false;
        bool async = false;
    };

    void eventLoop();
    void forwarderLoop();
    void enqueueJob(std::function<void()> job);
    void pushCompletion(Completion completion);
    void wakeLoop();

    void acceptReady();
    void onReadable(Conn &conn);
    void onWritable(Conn &conn);
    void consumePending(Conn &conn);
    void dispatch(Conn &conn);
    void respond(Conn &conn, Route route,
                 std::chrono::steady_clock::time_point started,
                 int status, const std::string &body, bool keep_alive,
                 const std::vector<std::pair<std::string, std::string>>
                     &extra_headers = {});
    void queueBytes(Conn &conn, const std::string &bytes);
    void flushWrites(Conn &conn);
    void setWantWrite(Conn &conn, bool want);
    void closeConn(std::uint64_t conn_id);
    void applyCompletions();
    void reapIdle();
    void recordResponse(int status);

    util::Result<ParsedRun> parseRunRequest(const JsonValue &doc,
                                            bool allow_modes) const;
    std::uint64_t registerRun(const ParsedRun &run);
    void finishRun(std::uint64_t run_id, int http_status,
                   RunState state, const std::string &envelope);

    void handleRuns(Conn &conn,
                    std::chrono::steady_clock::time_point started);
    void handleFleet(Conn &conn,
                     std::chrono::steady_clock::time_point started);
    void handleCancel(Conn &conn,
                      std::chrono::steady_clock::time_point started,
                      std::uint64_t run_id);
    void handleRunGet(Conn &conn,
                      std::chrono::steady_clock::time_point started,
                      std::uint64_t run_id);
    void handleRunList(Conn &conn,
                       std::chrono::steady_clock::time_point started);
    std::string healthzJson() const;
    /**
     * Pull each healthy worker's serve.batch.* / serve.setup_cache.*
     * counters over a STATS RPC and mirror them into the registry as
     * gateway.worker.N.* plus gateway.cluster.* aggregates, so
     * cluster-level batching efficiency is one curl away. Blocking;
     * forwarder threads only.
     */
    void collectWorkerServeStats();

    /** What forwardRun resolved to, ready for HTTP rendering. */
    struct ForwardHttp
    {
        int status = 500;
        std::string body;              //!< terminal JSON envelope
        std::uint32_t retryAfterMs = 0; //!< 429 only (header value)
    };

    /**
     * Forward one run on a forwarder thread; returns the HTTP status
     * and terminal envelope, updating the registry. `stream_conn` != 0
     * turns on NDJSON progress chunks to that connection.
     */
    ForwardHttp forwardRun(std::uint64_t run_id,
                           const serve::RequestSpec &spec,
                           std::uint64_t key_hash,
                           std::uint64_t stream_conn);

    const GatewayOptions options_;
    WorkerPool pool_;
    util::TcpListener listener_;
    std::uint16_t port_ = 0;
    int epollFd_ = -1;
    int eventFd_ = -1;

    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};

    std::uint64_t nextConnId_ = 2; //!< 0/1 tag listener and eventfd
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;

    std::mutex jobsMutex_;
    std::condition_variable jobsCv_;
    std::deque<std::function<void()>> jobs_;
    bool jobsClosed_ = false;
    std::vector<std::thread> forwarders_;
    std::thread loopThread_;

    std::mutex completionsMutex_;
    std::deque<Completion> completions_;

    mutable std::mutex runsMutex_;
    std::atomic<std::uint64_t> nextRunId_{1};
    std::map<std::uint64_t, RunRecord> runs_;
    std::deque<std::uint64_t> runOrder_;

    mutable telemetry::TailLatency latency_[3];

    std::atomic<std::uint64_t> connectionsAccepted_{0};
    std::atomic<std::uint64_t> connectionsRejected_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> responses2xx_{0};
    std::atomic<std::uint64_t> responses4xx_{0};
    std::atomic<std::uint64_t> responses5xx_{0};
    std::atomic<std::uint64_t> parseErrors_{0};
    std::atomic<std::uint64_t> expectContinue_{0};
    std::atomic<std::uint64_t> bytesIn_{0};
    std::atomic<std::uint64_t> bytesOut_{0};
    std::atomic<std::uint64_t> idleClosed_{0};
    std::atomic<std::uint64_t> runsSubmitted_{0};
    std::atomic<std::uint64_t> runsCompleted_{0};
    std::atomic<std::uint64_t> runsFailed_{0};
    std::atomic<std::uint64_t> runsStreaming_{0};
    std::atomic<std::uint64_t> runsAsync_{0};

    std::mutex stopMutex_; //!< serializes waitUntilStopped joins
    bool stopped_ = false;
};

} // namespace ecolo::gateway

#endif // ECOLO_GATEWAY_GATEWAY_HH
