#include "gateway/gateway.hh"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>

#include "serve/server.hh" // prepareSubmitPayload
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace ecolo::gateway {

namespace {

constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kEventTag = 1;
/** Bound on bytes buffered ahead of a busy connection (pipelining). */
constexpr std::size_t kMaxPendingBytes = 64u << 10;

/** JSON error code slug for an HTTP parse-failure status. */
const char *
httpErrorCode(int status)
{
    switch (status) {
    case 400:
        return "bad_request";
    case 404:
        return "not_found";
    case 405:
        return "method_not_allowed";
    case 413:
        return "payload_too_large";
    case 414:
        return "uri_too_long";
    case 417:
        return "expectation_failed";
    case 429:
        return "retry_later";
    case 431:
        return "headers_too_large";
    case 501:
        return "not_implemented";
    case 502:
        return "bad_gateway";
    case 503:
        return "unavailable";
    case 504:
        return "deadline_exceeded";
    case 505:
        return "http_version_not_supported";
    default:
        return "internal";
    }
}

/** The {"error":{...}} envelope every failure body uses. */
std::string
errorBody(const char *code, const std::string &message)
{
    return std::string("{\"error\":{\"code\":\"") + code +
           "\",\"message\":" + jsonQuote(message) + "}}";
}

const char *
rpcErrorCodeName(serve::RpcErrorCode code)
{
    switch (code) {
    case serve::RpcErrorCode::ParseError:
        return "parse_error";
    case serve::RpcErrorCode::ValidationError:
        return "validation_error";
    case serve::RpcErrorCode::Unavailable:
        return "unavailable";
    case serve::RpcErrorCode::UnknownRequest:
        return "unknown_request";
    case serve::RpcErrorCode::Internal:
        return "internal";
    case serve::RpcErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
    }
    return "internal";
}

int
rpcErrorHttpStatus(serve::RpcErrorCode code)
{
    switch (code) {
    case serve::RpcErrorCode::ParseError:
    case serve::RpcErrorCode::ValidationError:
        return 400;
    case serve::RpcErrorCode::Unavailable:
        return 503;
    case serve::RpcErrorCode::UnknownRequest:
        return 404;
    case serve::RpcErrorCode::Internal:
        return 500;
    case serve::RpcErrorCode::DeadlineExceeded:
        return 504;
    }
    return 500;
}

double
elapsedUs(std::chrono::steady_clock::time_point started)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - started)
        .count();
}

/** "/v1/runs/<digits>" -> id, or 0 on anything else. */
std::uint64_t
parseRunIdPath(const std::string &path)
{
    static const std::string prefix = "/v1/runs/";
    if (path.size() <= prefix.size() ||
        path.compare(0, prefix.size(), prefix) != 0)
        return 0;
    std::uint64_t id = 0;
    for (std::size_t i = prefix.size(); i < path.size(); ++i) {
        const char c = path[i];
        if (c < '0' || c > '9' || id > (~0ULL) / 16)
            return 0;
        id = id * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return id;
}

} // namespace

const char *
Gateway::toString(RunState state)
{
    switch (state) {
    case RunState::Queued:
        return "queued";
    case RunState::Running:
        return "running";
    case RunState::Completed:
        return "completed";
    case RunState::Cancelled:
        return "cancelled";
    case RunState::Drained:
        return "drained";
    case RunState::RetryLater:
        return "retry-later";
    case RunState::Error:
        return "error";
    case RunState::Unreachable:
        return "unreachable";
    }
    return "?";
}

Gateway::Gateway(GatewayOptions options)
    : options_(std::move(options)),
      pool_(options_.workers, options_.pool)
{}

Gateway::~Gateway()
{
    requestDrain();
    waitUntilStopped();
    if (epollFd_ >= 0)
        ::close(epollFd_);
    if (eventFd_ >= 0)
        ::close(eventFd_);
}

util::Result<void>
Gateway::start()
{
    auto listener = util::TcpListener::listenLoopback(options_.port);
    if (!listener)
        return listener.error();
    listener_ = listener.take();
    port_ = listener_.port();

    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0)
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "epoll_create1: ", std::strerror(errno));
    eventFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (eventFd_ < 0)
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "eventfd: ", std::strerror(errno));

    struct epoll_event ev;
    std::memset(&ev, 0, sizeof ev);
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listener_.nativeHandle(),
                    &ev) != 0)
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "epoll_ctl(listener): ",
                           std::strerror(errno));
    ev.events = EPOLLIN;
    ev.data.u64 = kEventTag;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, eventFd_, &ev) != 0)
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "epoll_ctl(eventfd): ",
                           std::strerror(errno));

    running_.store(true, std::memory_order_release);
    pool_.start();
    const std::size_t forwarders =
        std::max<std::size_t>(options_.numForwarders, 1);
    forwarders_.reserve(forwarders);
    for (std::size_t i = 0; i < forwarders; ++i)
        forwarders_.emplace_back([this] { forwarderLoop(); });
    loopThread_ = std::thread([this] { eventLoop(); });
    inform("edgetherm-gateway listening on 127.0.0.1:", port_, " (",
           pool_.size(), " workers, ", forwarders, " forwarders)");
    return {};
}

void
Gateway::requestDrain()
{
    draining_.store(true, std::memory_order_release);
    if (running())
        wakeLoop();
}

void
Gateway::waitUntilStopped()
{
    std::lock_guard<std::mutex> lock(stopMutex_);
    if (stopped_)
        return;
    if (loopThread_.joinable())
        loopThread_.join();
    // start() may have failed before threads existed; make the
    // teardown below safe to run regardless.
    {
        std::lock_guard<std::mutex> jobs(jobsMutex_);
        jobsClosed_ = true;
    }
    jobsCv_.notify_all();
    for (auto &t : forwarders_)
        if (t.joinable())
            t.join();
    pool_.stop();
    stopped_ = true;
}

void
Gateway::wakeLoop()
{
    if (eventFd_ < 0)
        return;
    const std::uint64_t one = 1;
    (void)!::write(eventFd_, &one, sizeof one);
}

void
Gateway::enqueueJob(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(jobsMutex_);
        jobs_.push_back(std::move(job));
    }
    jobsCv_.notify_one();
}

void
Gateway::forwarderLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(jobsMutex_);
            jobsCv_.wait(lock, [this] {
                return jobsClosed_ || !jobs_.empty();
            });
            if (jobs_.empty())
                return; // closed and drained
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job();
    }
}

void
Gateway::pushCompletion(Completion completion)
{
    {
        std::lock_guard<std::mutex> lock(completionsMutex_);
        completions_.push_back(std::move(completion));
    }
    wakeLoop();
}

// ---- Event loop ----

void
Gateway::eventLoop()
{
    std::vector<struct epoll_event> events(64);
    bool listenerOpen = true;
    for (;;) {
        const int n = ::epoll_wait(epollFd_, events.data(),
                                   static_cast<int>(events.size()),
                                   500);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("gateway: epoll_wait failed: ",
                 std::strerror(errno));
            break;
        }
        for (int i = 0; i < n; ++i) {
            const std::uint64_t tag = events[i].data.u64;
            if (tag == kListenerTag) {
                if (listenerOpen)
                    acceptReady();
                continue;
            }
            if (tag == kEventTag) {
                std::uint64_t drainCount = 0;
                while (::read(eventFd_, &drainCount,
                              sizeof drainCount) > 0) {
                }
                continue; // completions applied below
            }
            auto it = conns_.find(tag);
            if (it == conns_.end())
                continue;
            if (events[i].events & EPOLLOUT)
                onWritable(*it->second);
            it = conns_.find(tag); // onWritable may have closed it
            if (it == conns_.end())
                continue;
            if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP))
                onReadable(*it->second);
        }
        applyCompletions();
        reapIdle();
        if (draining_.load(std::memory_order_acquire)) {
            if (listenerOpen) {
                (void)::epoll_ctl(epollFd_, EPOLL_CTL_DEL,
                                  listener_.nativeHandle(), nullptr);
                listener_.close();
                listenerOpen = false;
            }
            std::vector<std::uint64_t> quiescent;
            for (const auto &[id, conn] : conns_)
                if (!conn->busy &&
                    conn->outOff == conn->outBuf.size())
                    quiescent.push_back(id);
            for (const std::uint64_t id : quiescent)
                closeConn(id);
            if (conns_.empty())
                break;
        }
    }
    {
        std::lock_guard<std::mutex> lock(jobsMutex_);
        jobsClosed_ = true;
    }
    jobsCv_.notify_all();
    running_.store(false, std::memory_order_release);
}

void
Gateway::acceptReady()
{
    for (;;) {
        auto accepted = listener_.acceptFor(0);
        if (!accepted)
            return;
        if (!accepted.value().has_value())
            return; // nothing pending
        util::TcpConnection sock = std::move(*accepted.value());
        connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
        if (draining_.load(std::memory_order_acquire) ||
            conns_.size() >= options_.maxConnections) {
            connectionsRejected_.fetch_add(1,
                                           std::memory_order_relaxed);
            const std::string body = errorBody(
                "unavailable",
                draining_.load(std::memory_order_acquire)
                    ? "gateway is draining"
                    : "connection limit reached; retry shortly");
            const std::string resp = buildHttpResponse(
                503, "application/json", body, false,
                {{"Retry-After", "1"}});
            (void)sock.writeAll(resp.data(), resp.size());
            continue; // sock closes on scope exit
        }
        if (!sock.setNonBlocking(true))
            continue;
        auto conn = std::make_unique<Conn>();
        conn->id = nextConnId_++;
        conn->sock = std::move(sock);
        conn->parser = HttpRequestParser(options_.http);
        conn->lastActivity = std::chrono::steady_clock::now();
        struct epoll_event ev;
        std::memset(&ev, 0, sizeof ev);
        ev.events = EPOLLIN;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD,
                        conn->sock.nativeHandle(), &ev) != 0)
            continue; // conn closes on scope exit
        conns_.emplace(conn->id, std::move(conn));
    }
}

void
Gateway::closeConn(std::uint64_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    (void)::epoll_ctl(epollFd_, EPOLL_CTL_DEL,
                      it->second->sock.nativeHandle(), nullptr);
    conns_.erase(it);
}

void
Gateway::setWantWrite(Conn &conn, bool want)
{
    if (conn.wantWrite == want)
        return;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof ev);
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.u64 = conn.id;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.sock.nativeHandle(),
                    &ev) == 0)
        conn.wantWrite = want;
}

void
Gateway::queueBytes(Conn &conn, const std::string &bytes)
{
    conn.outBuf += bytes;
    setWantWrite(conn, true);
}

void
Gateway::onWritable(Conn &conn)
{
    while (conn.outOff < conn.outBuf.size()) {
        auto chunk = conn.sock.tryWrite(conn.outBuf.data() + conn.outOff,
                                        conn.outBuf.size() - conn.outOff);
        if (!chunk) {
            closeConn(conn.id);
            return;
        }
        if (chunk.value().wouldBlock)
            return; // EPOLLOUT stays armed
        conn.outOff += chunk.value().bytes;
        bytesOut_.fetch_add(chunk.value().bytes,
                            std::memory_order_relaxed);
        conn.lastActivity = std::chrono::steady_clock::now();
    }
    conn.outBuf.clear();
    conn.outOff = 0;
    setWantWrite(conn, false);
    if (conn.closeAfterWrite)
        closeConn(conn.id);
}

void
Gateway::onReadable(Conn &conn)
{
    char buf[4096];
    for (;;) {
        auto chunk = conn.sock.tryRead(buf, sizeof buf);
        if (!chunk) {
            closeConn(conn.id); // transport error (incl. chaos)
            return;
        }
        if (chunk.value().wouldBlock)
            break;
        if (chunk.value().eof) {
            closeConn(conn.id);
            return;
        }
        bytesIn_.fetch_add(chunk.value().bytes,
                           std::memory_order_relaxed);
        conn.lastActivity = std::chrono::steady_clock::now();
        conn.pending.append(buf, chunk.value().bytes);
        if (conn.busy && conn.pending.size() > kMaxPendingBytes) {
            closeConn(conn.id); // pipelining past a busy request
            return;
        }
    }
    consumePending(conn);
}

void
Gateway::consumePending(Conn &conn)
{
    while (!conn.busy && !conn.closeAfterWrite) {
        if (conn.pending.empty())
            return;
        const std::size_t used =
            conn.parser.feed(conn.pending.data(), conn.pending.size());
        conn.pending.erase(0, used);
        if (conn.parser.failed()) {
            parseErrors_.fetch_add(1, std::memory_order_relaxed);
            const int status = conn.parser.errorStatus();
            respond(conn, Route::Other,
                    std::chrono::steady_clock::now(), status,
                    errorBody(httpErrorCode(status),
                              conn.parser.errorReason()),
                    false);
            return;
        }
        if (conn.parser.phase() == HttpRequestParser::Phase::Body &&
            conn.parser.request().expectContinue &&
            !conn.continueSent) {
            conn.continueSent = true;
            expectContinue_.fetch_add(1, std::memory_order_relaxed);
            queueBytes(conn, continueResponse());
        }
        if (!conn.parser.complete())
            return; // wait for more bytes
        dispatch(conn);
        conn.parser.reset();
        conn.continueSent = false;
        // loop: a pipelined next request may already be buffered
    }
}

void
Gateway::applyCompletions()
{
    std::deque<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completionsMutex_);
        batch.swap(completions_);
    }
    for (Completion &c : batch) {
        if (c.connId == 0)
            continue; // async: registry already updated
        auto it = conns_.find(c.connId);
        if (it == conns_.end())
            continue; // client went away; drop the bytes
        Conn &conn = *it->second;
        queueBytes(conn, c.bytes);
        if (c.endOfResponse) {
            conn.busy = false;
            if (c.closeAfter)
                conn.closeAfterWrite = true;
            conn.lastActivity = std::chrono::steady_clock::now();
            consumePending(conn); // resume pipelined requests
        }
    }
}

void
Gateway::reapIdle()
{
    if (options_.idleTimeoutMs <= 0)
        return;
    const auto now = std::chrono::steady_clock::now();
    const auto limit = std::chrono::milliseconds(options_.idleTimeoutMs);
    std::vector<std::uint64_t> idle;
    for (const auto &[id, conn] : conns_)
        if (!conn->busy && conn->outOff == conn->outBuf.size() &&
            now - conn->lastActivity > limit)
            idle.push_back(id);
    for (const std::uint64_t id : idle) {
        idleClosed_.fetch_add(1, std::memory_order_relaxed);
        closeConn(id);
    }
}

void
Gateway::recordResponse(int status)
{
    if (status >= 500)
        responses5xx_.fetch_add(1, std::memory_order_relaxed);
    else if (status >= 400)
        responses4xx_.fetch_add(1, std::memory_order_relaxed);
    else
        responses2xx_.fetch_add(1, std::memory_order_relaxed);
}

void
Gateway::respond(Conn &conn, Route route,
                 std::chrono::steady_clock::time_point started,
                 int status, const std::string &body, bool keep_alive,
                 const std::vector<std::pair<std::string, std::string>>
                     &extra_headers)
{
    recordResponse(status);
    latency_[static_cast<int>(route)].record(elapsedUs(started));
    queueBytes(conn, buildHttpResponse(status, "application/json",
                                       body, keep_alive,
                                       extra_headers));
    if (!keep_alive)
        conn.closeAfterWrite = true;
}

// ---- Routing ----

void
Gateway::dispatch(Conn &conn)
{
    const auto started = std::chrono::steady_clock::now();
    requests_.fetch_add(1, std::memory_order_relaxed);
    const HttpRequest &req = conn.parser.request();
    const std::string &method = req.method;
    const std::string &path = req.path;
    const bool keepAlive = req.keepAlive;

    if (path == "/v1/healthz") {
        if (method != "GET")
            return respond(conn, Route::Stats, started, 405,
                           errorBody("method_not_allowed",
                                     "use GET"),
                           keepAlive, {{"Allow", "GET"}});
        return respond(conn, Route::Stats, started, 200,
                       healthzJson(), keepAlive);
    }
    if (path == "/v1/stats") {
        if (method != "GET")
            return respond(conn, Route::Stats, started, 405,
                           errorBody("method_not_allowed",
                                     "use GET"),
                           keepAlive, {{"Allow", "GET"}});
        // The document includes per-worker serve.batch.* and
        // serve.setup_cache.* counters fetched over blocking STATS
        // RPCs, so the collection runs on a forwarder thread -- the
        // epoll loop must never wait on a worker socket.
        conn.busy = true;
        const std::uint64_t connId = conn.id;
        enqueueJob([this, connId, keepAlive, started] {
            collectWorkerServeStats();
            const std::string body = metricsJson();
            recordResponse(200);
            latency_[static_cast<int>(Route::Stats)].record(
                elapsedUs(started));
            Completion reply;
            reply.connId = connId;
            reply.bytes = buildHttpResponse(200, "application/json",
                                            body, keepAlive);
            reply.endOfResponse = true;
            reply.closeAfter = !keepAlive;
            pushCompletion(std::move(reply));
        });
        return;
    }
    if (path == "/v1/runs") {
        if (method == "POST")
            return handleRuns(conn, started);
        if (method == "GET")
            return handleRunList(conn, started);
        return respond(conn, Route::Other, started, 405,
                       errorBody("method_not_allowed",
                                 "use GET or POST"),
                       keepAlive, {{"Allow", "GET, POST"}});
    }
    if (path.compare(0, 9, "/v1/runs/") == 0) {
        const std::uint64_t id = parseRunIdPath(path);
        if (id == 0)
            return respond(conn, Route::Other, started, 404,
                           errorBody("not_found",
                                     "run ids are positive integers"),
                           keepAlive);
        if (method == "GET")
            return handleRunGet(conn, started, id);
        if (method == "DELETE")
            return handleCancel(conn, started, id);
        return respond(conn, Route::Other, started, 405,
                       errorBody("method_not_allowed",
                                 "use GET or DELETE"),
                       keepAlive, {{"Allow", "GET, DELETE"}});
    }
    if (path == "/v1/fleet") {
        if (method == "POST")
            return handleFleet(conn, started);
        return respond(conn, Route::Other, started, 405,
                       errorBody("method_not_allowed", "use POST"),
                       keepAlive, {{"Allow", "POST"}});
    }
    respond(conn, Route::Other, started, 404,
            errorBody("not_found", "no route for " + method + " " +
                                       path),
            keepAlive);
}

// ---- Request parsing ----

util::Result<Gateway::ParsedRun>
Gateway::parseRunRequest(const JsonValue &doc, bool allow_modes) const
{
    if (!doc.isObject())
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "request body must be a JSON object");
    ParsedRun out;
    serve::SubmitPayload payload;
    bool sawHorizon = false;
    bool sawDays = false;
    double days = 0.0;
    std::int64_t horizon = 0;
    std::uint32_t deadlineMs = 0;

    for (const auto &[key, value] : doc.members()) {
        if (key == "policy") {
            if (!value.isString())
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "'policy' must be a string");
            payload.policy = value.asString();
        } else if (key == "scenario") {
            if (!value.isString())
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "'scenario' must be a string of "
                                   "key=value lines");
            payload.scenarioText = value.asString();
        } else if (key == "horizon_minutes") {
            if (!value.isNumber() ||
                value.asNumber() != std::floor(value.asNumber()) ||
                value.asNumber() < 1.0 || value.asNumber() > 9.0e15)
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "'horizon_minutes' must be a "
                                   "positive integer");
            horizon = static_cast<std::int64_t>(value.asNumber());
            sawHorizon = true;
        } else if (key == "days") {
            if (!value.isNumber() || value.asNumber() <= 0.0 ||
                value.asNumber() > 1.0e7)
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "'days' must be a positive number");
            days = value.asNumber();
            sawDays = true;
        } else if (key == "param") {
            if (!value.isNumber())
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "'param' must be a number");
            payload.param = value.asNumber();
            payload.paramSet = true;
        } else if (key == "priority") {
            if (!value.isString() ||
                (value.asString() != "interactive" &&
                 value.asString() != "batch"))
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "'priority' must be \"interactive\""
                                   " or \"batch\"");
            payload.priority = value.asString() == "batch"
                                   ? serve::Priority::Batch
                                   : serve::Priority::Interactive;
        } else if (key == "client_id") {
            if (!value.isString())
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "'client_id' must be a string");
            payload.clientId = value.asString();
        } else if (key == "deadline_ms") {
            if (!value.isNumber() ||
                value.asNumber() != std::floor(value.asNumber()) ||
                value.asNumber() < 0.0 ||
                value.asNumber() > 4294967295.0)
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "'deadline_ms' must be a "
                                   "non-negative integer");
            deadlineMs =
                static_cast<std::uint32_t>(value.asNumber());
        } else if (key == "stream" && allow_modes) {
            if (!value.isBool())
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "'stream' must be a boolean");
            out.stream = value.asBool();
        } else if (key == "async" && allow_modes) {
            if (!value.isBool())
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "'async' must be a boolean");
            out.async = value.asBool();
        } else {
            return ECOLO_ERROR(util::ErrorCode::ValidationError,
                               "unknown field '", key, "'");
        }
    }
    if (sawHorizon == sawDays)
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "exactly one of 'horizon_minutes' and "
                           "'days' is required");
    if (sawDays) {
        const double minutes = days * 1440.0;
        if (minutes != std::floor(minutes))
            return ECOLO_ERROR(util::ErrorCode::ValidationError,
                               "'days' must resolve to whole minutes");
        horizon = static_cast<std::int64_t>(minutes);
    }
    if (out.stream && out.async)
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "'stream' and 'async' are mutually "
                           "exclusive");
    payload.horizonMinutes = horizon;
    if (payload.policy.empty())
        payload.policy = "standby";

    // The server's own validation path: same checks, same defaults,
    // and -- crucially -- the same content-addressed cache key the
    // chosen worker will compute and cache under.
    auto prepared =
        serve::prepareSubmitPayload(payload,
                                    options_.maxHorizonMinutes);
    if (!prepared)
        return prepared.error();
    out.keyHash = prepared.value().key.hash;

    out.spec.clientId = payload.clientId;
    out.spec.priority = payload.priority;
    out.spec.policy = payload.policy;
    out.spec.param = payload.param;
    out.spec.paramSet = payload.paramSet;
    out.spec.horizonMinutes = payload.horizonMinutes;
    out.spec.scenarioText = payload.scenarioText;
    out.spec.deadlineMs = deadlineMs;
    return out;
}

// ---- Run registry ----

std::uint64_t
Gateway::registerRun(const ParsedRun &run)
{
    const std::uint64_t id =
        nextRunId_.fetch_add(1, std::memory_order_relaxed);
    RunRecord record;
    record.id = id;
    record.policy = run.spec.policy;
    record.horizonMinutes = run.spec.horizonMinutes;
    std::lock_guard<std::mutex> lock(runsMutex_);
    runs_.emplace(id, std::move(record));
    runOrder_.push_back(id);
    while (runs_.size() > options_.maxRetainedRuns &&
           !runOrder_.empty()) {
        const std::uint64_t oldest = runOrder_.front();
        auto it = runs_.find(oldest);
        if (it != runs_.end() &&
            (it->second.state == RunState::Queued ||
             it->second.state == RunState::Running))
            break; // never evict live work
        if (it != runs_.end())
            runs_.erase(it);
        runOrder_.pop_front();
    }
    return id;
}

void
Gateway::finishRun(std::uint64_t run_id, int http_status,
                   RunState state, const std::string &envelope)
{
    std::lock_guard<std::mutex> lock(runsMutex_);
    auto it = runs_.find(run_id);
    if (it == runs_.end())
        return; // evicted meanwhile
    it->second.state = state;
    it->second.httpStatus = http_status;
    it->second.envelope = envelope;
}

// ---- Handlers ----

void
Gateway::handleRuns(Conn &conn,
                    std::chrono::steady_clock::time_point started)
{
    const bool keepAlive = conn.parser.request().keepAlive;
    auto doc = JsonValue::parse(conn.parser.request().body);
    if (!doc)
        return respond(conn, Route::Runs, started, 400,
                       errorBody("parse_error", doc.error().message),
                       keepAlive);
    auto parsed = parseRunRequest(doc.value(), true);
    if (!parsed) {
        const char *code = parsed.error().code ==
                                   util::ErrorCode::ParseError
                               ? "parse_error"
                               : "validation_error";
        return respond(conn, Route::Runs, started, 400,
                       errorBody(code, parsed.error().message),
                       keepAlive);
    }
    ParsedRun run = parsed.take();
    const std::uint64_t runId = registerRun(run);
    runsSubmitted_.fetch_add(1, std::memory_order_relaxed);

    if (run.async) {
        runsAsync_.fetch_add(1, std::memory_order_relaxed);
        respond(conn, Route::Runs, started, 202,
                "{\"id\":" + std::to_string(runId) +
                    ",\"status\":\"queued\"}",
                keepAlive);
        enqueueJob([this, runId, spec = run.spec,
                    keyHash = run.keyHash, started] {
            (void)forwardRun(runId, spec, keyHash, 0);
            latency_[static_cast<int>(Route::Runs)].record(
                elapsedUs(started));
        });
        return;
    }

    conn.busy = true;
    const std::uint64_t connId = conn.id;
    if (run.stream) {
        runsStreaming_.fetch_add(1, std::memory_order_relaxed);
        recordResponse(200);
        queueBytes(conn, buildChunkedHead(200, "application/x-ndjson",
                                          keepAlive));
        enqueueJob([this, runId, spec = run.spec,
                    keyHash = run.keyHash, connId, keepAlive,
                    started] {
            ForwardHttp done = forwardRun(runId, spec, keyHash, connId);
            latency_[static_cast<int>(Route::Runs)].record(
                elapsedUs(started));
            Completion tail;
            tail.connId = connId;
            tail.bytes = encodeChunk(done.body + "\n") + finalChunk();
            tail.endOfResponse = true;
            tail.closeAfter = !keepAlive;
            pushCompletion(std::move(tail));
        });
        return;
    }

    enqueueJob([this, runId, spec = run.spec, keyHash = run.keyHash,
                connId, keepAlive, started] {
        ForwardHttp done = forwardRun(runId, spec, keyHash, 0);
        recordResponse(done.status);
        latency_[static_cast<int>(Route::Runs)].record(
            elapsedUs(started));
        std::vector<std::pair<std::string, std::string>> extra;
        if (done.status == 429)
            extra.emplace_back(
                "Retry-After",
                std::to_string((done.retryAfterMs + 999) / 1000));
        Completion reply;
        reply.connId = connId;
        reply.bytes = buildHttpResponse(done.status,
                                        "application/json", done.body,
                                        keepAlive, extra);
        reply.endOfResponse = true;
        reply.closeAfter = !keepAlive;
        pushCompletion(std::move(reply));
    });
}

void
Gateway::handleFleet(Conn &conn,
                     std::chrono::steady_clock::time_point started)
{
    const bool keepAlive = conn.parser.request().keepAlive;
    auto doc = JsonValue::parse(conn.parser.request().body);
    if (!doc)
        return respond(conn, Route::Runs, started, 400,
                       errorBody("parse_error", doc.error().message),
                       keepAlive);
    if (!doc.value().isObject())
        return respond(conn, Route::Runs, started, 400,
                       errorBody("validation_error",
                                 "fleet body must be a JSON object"),
                       keepAlive);
    const JsonValue *runsField = nullptr;
    for (const auto &[key, value] : doc.value().members()) {
        if (key == "runs") {
            runsField = &value;
        } else {
            return respond(conn, Route::Runs, started, 400,
                           errorBody("validation_error",
                                     "unknown field '" + key + "'"),
                           keepAlive);
        }
    }
    if (runsField == nullptr || !runsField->isArray() ||
        runsField->items().empty())
        return respond(conn, Route::Runs, started, 400,
                       errorBody("validation_error",
                                 "'runs' must be a non-empty array"),
                       keepAlive);
    if (runsField->items().size() > options_.maxFleetRuns)
        return respond(conn, Route::Runs, started, 400,
                       errorBody("validation_error",
                                 "at most " +
                                     std::to_string(
                                         options_.maxFleetRuns) +
                                     " runs per fleet call"),
                       keepAlive);

    std::vector<ParsedRun> parsedRuns;
    parsedRuns.reserve(runsField->items().size());
    for (std::size_t i = 0; i < runsField->items().size(); ++i) {
        auto parsed = parseRunRequest(runsField->items()[i], false);
        if (!parsed)
            return respond(conn, Route::Runs, started, 400,
                           errorBody("validation_error",
                                     "runs[" + std::to_string(i) +
                                         "]: " +
                                         parsed.error().message),
                           keepAlive);
        parsedRuns.push_back(parsed.take());
    }

    // Scatter: every entry is its own forwarder job sharded by its own
    // key; gather composes the reply when the last one lands.
    struct FleetGather
    {
        std::mutex mutex;
        std::size_t remaining = 0;
        std::vector<std::string> envelopes;
        std::vector<int> statuses;
    };
    auto gather = std::make_shared<FleetGather>();
    gather->remaining = parsedRuns.size();
    gather->envelopes.resize(parsedRuns.size());
    gather->statuses.assign(parsedRuns.size(), 0);

    conn.busy = true;
    const std::uint64_t connId = conn.id;
    for (std::size_t i = 0; i < parsedRuns.size(); ++i) {
        const std::uint64_t runId = registerRun(parsedRuns[i]);
        runsSubmitted_.fetch_add(1, std::memory_order_relaxed);
        enqueueJob([this, gather, i, runId,
                    spec = parsedRuns[i].spec,
                    keyHash = parsedRuns[i].keyHash, connId,
                    keepAlive, started] {
            ForwardHttp done = forwardRun(runId, spec, keyHash, 0);
            bool last = false;
            {
                std::lock_guard<std::mutex> lock(gather->mutex);
                gather->envelopes[i] = std::move(done.body);
                gather->statuses[i] = done.status;
                last = --gather->remaining == 0;
            }
            if (!last)
                return;
            std::size_t completed = 0;
            std::string body = "{\"count\":" +
                               std::to_string(
                                   gather->envelopes.size()) +
                               ",\"runs\":[";
            for (std::size_t j = 0; j < gather->envelopes.size();
                 ++j) {
                if (j > 0)
                    body += ',';
                body += gather->envelopes[j];
                if (gather->statuses[j] == 200)
                    ++completed;
            }
            body += "],\"completed\":" + std::to_string(completed) +
                    "}";
            recordResponse(200);
            latency_[static_cast<int>(Route::Runs)].record(
                elapsedUs(started));
            Completion reply;
            reply.connId = connId;
            reply.bytes = buildHttpResponse(
                200, "application/json", body, keepAlive, {});
            reply.endOfResponse = true;
            reply.closeAfter = !keepAlive;
            pushCompletion(std::move(reply));
        });
    }
}

void
Gateway::handleCancel(Conn &conn,
                      std::chrono::steady_clock::time_point started,
                      std::uint64_t run_id)
{
    const bool keepAlive = conn.parser.request().keepAlive;
    std::size_t worker = SIZE_MAX;
    std::uint64_t remoteId = 0;
    {
        std::lock_guard<std::mutex> lock(runsMutex_);
        auto it = runs_.find(run_id);
        if (it == runs_.end())
            return respond(conn, Route::Runs, started, 404,
                           errorBody("unknown_request",
                                     "run " + std::to_string(run_id) +
                                         " is not in the registry"),
                           keepAlive);
        RunRecord &record = it->second;
        if (record.state != RunState::Queued &&
            record.state != RunState::Running)
            return respond(
                conn, Route::Runs, started, 200,
                "{\"id\":" + std::to_string(run_id) +
                    ",\"status\":\"" + toString(record.state) +
                    "\",\"cancelled\":false}",
                keepAlive);
        record.cancelRequested->store(true,
                                      std::memory_order_release);
        worker = record.worker;
        remoteId = record.remoteId;
    }
    if (worker == SIZE_MAX || remoteId == 0) {
        // Not yet accepted by a worker; the forwarder checks the flag
        // before submitting.
        return respond(conn, Route::Runs, started, 202,
                       "{\"id\":" + std::to_string(run_id) +
                           ",\"status\":\"queued\","
                           "\"cancel_requested\":true}",
                       keepAlive);
    }
    conn.busy = true;
    const std::uint64_t connId = conn.id;
    enqueueJob([this, connId, worker, remoteId, run_id, keepAlive,
                started] {
        auto found = pool_.cancel(worker, remoteId);
        int status;
        std::string body;
        if (!found) {
            status = 502;
            body = errorBody("bad_gateway", found.error().message);
        } else {
            status = 200;
            body = "{\"id\":" + std::to_string(run_id) +
                   ",\"cancel_requested\":true,\"found\":" +
                   (found.value() ? "true" : "false") + "}";
        }
        recordResponse(status);
        latency_[static_cast<int>(Route::Runs)].record(
            elapsedUs(started));
        Completion reply;
        reply.connId = connId;
        reply.bytes = buildHttpResponse(status, "application/json",
                                        body, keepAlive, {});
        reply.endOfResponse = true;
        reply.closeAfter = !keepAlive;
        pushCompletion(std::move(reply));
    });
}

void
Gateway::handleRunGet(Conn &conn,
                      std::chrono::steady_clock::time_point started,
                      std::uint64_t run_id)
{
    const bool keepAlive = conn.parser.request().keepAlive;
    std::lock_guard<std::mutex> lock(runsMutex_);
    auto it = runs_.find(run_id);
    if (it == runs_.end())
        return respond(conn, Route::Other, started, 404,
                       errorBody("unknown_request",
                                 "run " + std::to_string(run_id) +
                                     " is not in the registry"),
                       keepAlive);
    const RunRecord &record = it->second;
    if (!record.envelope.empty())
        return respond(conn, Route::Other, started, 200,
                       record.envelope, keepAlive);
    respond(conn, Route::Other, started, 200,
            "{\"id\":" + std::to_string(run_id) + ",\"status\":\"" +
                toString(record.state) + "\",\"policy\":" +
                jsonQuote(record.policy) + ",\"horizon_minutes\":" +
                std::to_string(record.horizonMinutes) + "}",
            keepAlive);
}

void
Gateway::handleRunList(Conn &conn,
                       std::chrono::steady_clock::time_point started)
{
    const bool keepAlive = conn.parser.request().keepAlive;
    std::string body = "{\"runs\":[";
    {
        std::lock_guard<std::mutex> lock(runsMutex_);
        bool first = true;
        for (const std::uint64_t id : runOrder_) {
            auto it = runs_.find(id);
            if (it == runs_.end())
                continue;
            if (!first)
                body += ',';
            first = false;
            body += "{\"id\":" + std::to_string(id) +
                    ",\"status\":\"" + toString(it->second.state) +
                    "\"}";
        }
    }
    body += "]}";
    respond(conn, Route::Other, started, 200, body, keepAlive);
}

std::string
Gateway::healthzJson() const
{
    return std::string("{\"status\":\"") +
           (draining_.load(std::memory_order_acquire) ? "draining"
                                                      : "ok") +
           "\",\"workers\":" + std::to_string(pool_.size()) +
           ",\"healthy\":" + std::to_string(pool_.healthyCount()) +
           "}";
}

// ---- Forwarding ----

Gateway::ForwardHttp
Gateway::forwardRun(std::uint64_t run_id,
                    const serve::RequestSpec &spec,
                    std::uint64_t key_hash, std::uint64_t stream_conn)
{
    std::shared_ptr<std::atomic<bool>> cancelFlag;
    {
        std::lock_guard<std::mutex> lock(runsMutex_);
        auto it = runs_.find(run_id);
        if (it != runs_.end()) {
            it->second.state = RunState::Running;
            cancelFlag = it->second.cancelRequested;
        }
    }
    const std::string idField = "{\"id\":" + std::to_string(run_id);
    if (cancelFlag &&
        cancelFlag->load(std::memory_order_acquire)) {
        const std::string envelope =
            idField + ",\"status\":\"cancelled\",\"minutes_done\":0}";
        finishRun(run_id, 200, RunState::Cancelled, envelope);
        return {200, envelope, 0};
    }

    WorkerPool::AcceptedCallback onAccepted =
        [this, run_id, stream_conn, &idField](
            std::size_t worker, std::uint64_t remote_id,
            const serve::AcceptedPayload &payload) {
            {
                std::lock_guard<std::mutex> lock(runsMutex_);
                auto it = runs_.find(run_id);
                if (it != runs_.end()) {
                    it->second.worker = worker;
                    it->second.remoteId = remote_id;
                    it->second.cacheHit = payload.cacheHit;
                }
            }
            if (stream_conn != 0) {
                Completion event;
                event.connId = stream_conn;
                event.bytes = encodeChunk(
                    idField + ",\"event\":\"accepted\"," +
                    "\"cache_hit\":" +
                    (payload.cacheHit ? "true" : "false") +
                    ",\"worker\":" +
                    jsonQuote(pool_.address(worker).label()) +
                    ",\"worker_request_id\":" +
                    std::to_string(remote_id) + "}\n");
                pushCompletion(std::move(event));
            }
        };
    serve::ServeClient::StatusCallback onStatus;
    if (stream_conn != 0) {
        onStatus = [this, stream_conn,
                    &idField](const serve::StatusPayload &status) {
            Completion event;
            event.connId = stream_conn;
            event.bytes = encodeChunk(
                idField + ",\"event\":\"status\",\"minutes_done\":" +
                std::to_string(status.minutesDone) +
                ",\"horizon_minutes\":" +
                std::to_string(status.horizonMinutes) + "}\n");
            pushCompletion(std::move(event));
        };
    }

    auto forwarded = pool_.submit(spec, key_hash, onAccepted, onStatus);
    if (!forwarded) {
        const std::string envelope =
            idField + ",\"status\":\"unreachable\",\"error\":" +
            "{\"code\":\"bad_gateway\",\"message\":" +
            jsonQuote(forwarded.error().message) + "}}";
        runsFailed_.fetch_add(1, std::memory_order_relaxed);
        finishRun(run_id, 502, RunState::Unreachable, envelope);
        return {502, envelope, 0};
    }
    WorkerPool::ForwardOutcome outcome = forwarded.take();
    {
        std::lock_guard<std::mutex> lock(runsMutex_);
        auto it = runs_.find(run_id);
        if (it != runs_.end()) {
            it->second.worker = outcome.worker;
            it->second.failovers = outcome.failovers;
            it->second.attempts = outcome.attempts;
            it->second.cacheHit = outcome.outcome.cacheHit;
        }
    }
    const std::string workerLabel =
        pool_.address(outcome.worker).label();
    const std::string common =
        ",\"worker\":" + jsonQuote(workerLabel) +
        ",\"worker_request_id\":" +
        std::to_string(outcome.outcome.requestId) + ",\"attempts\":" +
        std::to_string(outcome.attempts) + ",\"failovers\":" +
        std::to_string(outcome.failovers);

    ForwardHttp result;
    RunState state;
    std::string envelope;
    switch (outcome.outcome.status) {
    case serve::OutcomeStatus::Completed:
        state = RunState::Completed;
        result.status = 200;
        envelope = idField + ",\"status\":\"completed\"" + common +
                   ",\"cache_hit\":" +
                   (outcome.outcome.cacheHit ? "true" : "false") +
                   ",\"report\":" +
                   jsonQuote(outcome.outcome.report) + "}";
        runsCompleted_.fetch_add(1, std::memory_order_relaxed);
        break;
    case serve::OutcomeStatus::Cancelled:
        state = RunState::Cancelled;
        result.status = 200;
        envelope = idField + ",\"status\":\"cancelled\"" + common +
                   ",\"minutes_done\":" +
                   std::to_string(outcome.outcome.minutesDone) + "}";
        break;
    case serve::OutcomeStatus::Drained:
        state = RunState::Drained;
        result.status = 503;
        envelope = idField + ",\"status\":\"drained\"" + common +
                   ",\"minutes_done\":" +
                   std::to_string(outcome.outcome.minutesDone) +
                   ",\"checkpoint\":" +
                   jsonQuote(outcome.outcome.checkpointPath) + "}";
        runsFailed_.fetch_add(1, std::memory_order_relaxed);
        break;
    case serve::OutcomeStatus::RetryLater:
        state = RunState::RetryLater;
        result.status = 429;
        result.retryAfterMs = outcome.outcome.retryAfterMs;
        envelope = idField + ",\"status\":\"retry-later\"" + common +
                   ",\"retry_after_ms\":" +
                   std::to_string(outcome.outcome.retryAfterMs) + "}";
        runsFailed_.fetch_add(1, std::memory_order_relaxed);
        break;
    case serve::OutcomeStatus::Error:
    default:
        state = RunState::Error;
        result.status = rpcErrorHttpStatus(outcome.outcome.errorCode);
        envelope = idField + ",\"status\":\"error\"" + common +
                   ",\"error\":{\"code\":\"" +
                   rpcErrorCodeName(outcome.outcome.errorCode) +
                   "\",\"message\":" +
                   jsonQuote(outcome.outcome.errorMessage) + "}}";
        runsFailed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    finishRun(run_id, result.status, state, envelope);
    result.body = std::move(envelope);
    return result;
}

// ---- Stats ----

Gateway::HttpStats
Gateway::httpStats() const
{
    HttpStats stats;
    stats.connectionsAccepted =
        connectionsAccepted_.load(std::memory_order_relaxed);
    stats.connectionsRejected =
        connectionsRejected_.load(std::memory_order_relaxed);
    stats.connectionsActive = conns_.size();
    stats.requests = requests_.load(std::memory_order_relaxed);
    stats.responses2xx =
        responses2xx_.load(std::memory_order_relaxed);
    stats.responses4xx =
        responses4xx_.load(std::memory_order_relaxed);
    stats.responses5xx =
        responses5xx_.load(std::memory_order_relaxed);
    stats.parseErrors = parseErrors_.load(std::memory_order_relaxed);
    stats.expectContinue =
        expectContinue_.load(std::memory_order_relaxed);
    stats.bytesIn = bytesIn_.load(std::memory_order_relaxed);
    stats.bytesOut = bytesOut_.load(std::memory_order_relaxed);
    stats.idleClosed = idleClosed_.load(std::memory_order_relaxed);
    return stats;
}

void
Gateway::collectWorkerServeStats()
{
    auto &reg = telemetry::registry();
    static const char *const kKeys[] = {
        "serve.batch.batches",
        "serve.batch.batched_requests",
        "serve.batch.scalar_fallbacks",
        "serve.batch.max_occupancy",
        "serve.batch.occupancy.mean",
        "serve.batch.window_delay.p99_us",
        "serve.setup_cache.hits",
        "serve.setup_cache.misses",
    };
    double clusterBatches = 0.0;
    double clusterBatched = 0.0;
    double clusterSetupHits = 0.0;
    double clusterSetupMisses = 0.0;
    for (std::size_t w = 0; w < pool_.size(); ++w) {
        auto doc = pool_.stats(w);
        if (!doc)
            continue; // gateway.worker.N.healthy already says why
        auto parsed = JsonValue::parse(doc.value());
        if (!parsed) {
            ecolo::warn("gateway: worker ", w,
                        " stats unparseable: ",
                        parsed.error().message);
            continue;
        }
        const JsonValue *stats = parsed.value().member("stats");
        if (!stats)
            continue;
        const std::string prefix =
            "gateway.worker." + std::to_string(w) + ".";
        for (const char *key : kKeys) {
            const JsonValue *stat = stats->member(key);
            const JsonValue *value =
                stat ? stat->member("value") : nullptr;
            if (!value || !value->isNumber())
                continue;
            const double v = value->asNumber();
            reg.scalar(prefix + key).set(v);
            if (std::strcmp(key, "serve.batch.batches") == 0)
                clusterBatches += v;
            else if (std::strcmp(key,
                                 "serve.batch.batched_requests") == 0)
                clusterBatched += v;
            else if (std::strcmp(key, "serve.setup_cache.hits") == 0)
                clusterSetupHits += v;
            else if (std::strcmp(key, "serve.setup_cache.misses") == 0)
                clusterSetupMisses += v;
        }
    }
    reg.scalar("gateway.cluster.batch.batches").set(clusterBatches);
    reg.scalar("gateway.cluster.batch.batched_requests")
        .set(clusterBatched);
    reg.scalar("gateway.cluster.setup_cache.hits")
        .set(clusterSetupHits);
    reg.scalar("gateway.cluster.setup_cache.misses")
        .set(clusterSetupMisses);
}

std::string
Gateway::metricsJson() const
{
    auto &reg = telemetry::registry();
    const auto set = [&reg](const std::string &name, double value) {
        reg.scalar(name).set(value);
    };
    const HttpStats http = httpStats();
    set("gateway.connections.accepted",
        static_cast<double>(http.connectionsAccepted));
    set("gateway.connections.rejected",
        static_cast<double>(http.connectionsRejected));
    set("gateway.connections.active",
        static_cast<double>(http.connectionsActive));
    set("gateway.connections.idle_closed",
        static_cast<double>(http.idleClosed));
    set("gateway.http.requests", static_cast<double>(http.requests));
    set("gateway.http.responses_2xx",
        static_cast<double>(http.responses2xx));
    set("gateway.http.responses_4xx",
        static_cast<double>(http.responses4xx));
    set("gateway.http.responses_5xx",
        static_cast<double>(http.responses5xx));
    set("gateway.http.parse_errors",
        static_cast<double>(http.parseErrors));
    set("gateway.http.expect_continue",
        static_cast<double>(http.expectContinue));
    set("gateway.http.bytes_in", static_cast<double>(http.bytesIn));
    set("gateway.http.bytes_out", static_cast<double>(http.bytesOut));
    set("gateway.runs.submitted",
        static_cast<double>(
            runsSubmitted_.load(std::memory_order_relaxed)));
    set("gateway.runs.completed",
        static_cast<double>(
            runsCompleted_.load(std::memory_order_relaxed)));
    set("gateway.runs.failed",
        static_cast<double>(
            runsFailed_.load(std::memory_order_relaxed)));
    set("gateway.runs.streaming",
        static_cast<double>(
            runsStreaming_.load(std::memory_order_relaxed)));
    set("gateway.runs.async",
        static_cast<double>(
            runsAsync_.load(std::memory_order_relaxed)));
    set("gateway.workers.total", static_cast<double>(pool_.size()));
    set("gateway.workers.healthy",
        static_cast<double>(pool_.healthyCount()));

    static const char *routeNames[3] = {"runs", "stats", "other"};
    for (int r = 0; r < 3; ++r) {
        const auto snap = latency_[r].snapshot();
        const std::string prefix =
            std::string("gateway.latency.") + routeNames[r] + ".";
        set(prefix + "count", static_cast<double>(snap.count));
        set(prefix + "mean_us", snap.mean);
        set(prefix + "jitter_us", snap.jitter);
        set(prefix + "p50_us", snap.p50);
        set(prefix + "p95_us", snap.p95);
        set(prefix + "p99_us", snap.p99);
    }
    for (std::size_t w = 0; w < pool_.size(); ++w) {
        const WorkerPool::WorkerCounters c = pool_.counters(w);
        const std::string prefix =
            "gateway.worker." + std::to_string(w) + ".";
        set(prefix + "forwarded", static_cast<double>(c.forwarded));
        set(prefix + "answered", static_cast<double>(c.answered));
        set(prefix + "cache_hits", static_cast<double>(c.cacheHits));
        set(prefix + "retry_later",
            static_cast<double>(c.retryLater));
        set(prefix + "transport_errors",
            static_cast<double>(c.transportErrors));
        set(prefix + "failovers_from",
            static_cast<double>(c.failoversFrom));
        set(prefix + "probes", static_cast<double>(c.probes));
        set(prefix + "probe_failures",
            static_cast<double>(c.probeFailures));
        set(prefix + "healthy", c.healthy ? 1.0 : 0.0);
    }

    std::ostringstream os;
    reg.dumpJson(os);
    return os.str();
}

} // namespace ecolo::gateway
