#include "gateway/http.hh"

#include <algorithm>
#include <cctype>

namespace ecolo::gateway {

namespace {

/** RFC 7230 token characters (header names, methods). */
bool
isTchar(unsigned char c)
{
    if (std::isalnum(c))
        return true;
    switch (c) {
    case '!':
    case '#':
    case '$':
    case '%':
    case '&':
    case '\'':
    case '*':
    case '+':
    case '-':
    case '.':
    case '^':
    case '_':
    case '`':
    case '|':
    case '~':
        return true;
    default:
        return false;
    }
}

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trimOws(const std::string &s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && (s[begin] == ' ' || s[begin] == '\t'))
        ++begin;
    while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t'))
        --end;
    return s.substr(begin, end - begin);
}

/** True when the comma-separated header value contains `token`. */
bool
hasToken(const std::string &value, const std::string &token)
{
    std::size_t pos = 0;
    while (pos <= value.size()) {
        const std::size_t comma = value.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? value.size() : comma;
        if (toLower(trimOws(value.substr(pos, end - pos))) == token)
            return true;
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return false;
}

/**
 * Strict non-negative decimal parse for Content-Length; rejects signs,
 * blanks, and anything that would overflow the cap comparison.
 */
bool
parseContentLength(const std::string &text, std::size_t &out)
{
    if (text.empty() || text.size() > 18)
        return false;
    std::size_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    out = value;
    return true;
}

} // namespace

const std::string *
HttpRequest::header(const std::string &lower_name) const
{
    for (const auto &[name, value] : headers)
        if (name == lower_name)
            return &value;
    return nullptr;
}

std::string
HttpRequest::queryParam(const std::string &name) const
{
    std::size_t pos = 0;
    while (pos <= query.size()) {
        const std::size_t amp = query.find('&', pos);
        const std::size_t end =
            amp == std::string::npos ? query.size() : amp;
        const std::string pair = query.substr(pos, end - pos);
        const std::size_t eq = pair.find('=');
        const std::string key =
            eq == std::string::npos ? pair : pair.substr(0, eq);
        if (key == name)
            return eq == std::string::npos ? "" : pair.substr(eq + 1);
        if (amp == std::string::npos)
            break;
        pos = amp + 1;
    }
    return "";
}

bool
HttpRequest::hasQueryParam(const std::string &name) const
{
    std::size_t pos = 0;
    while (pos <= query.size()) {
        const std::size_t amp = query.find('&', pos);
        const std::size_t end =
            amp == std::string::npos ? query.size() : amp;
        const std::string pair = query.substr(pos, end - pos);
        const std::size_t eq = pair.find('=');
        const std::string key =
            eq == std::string::npos ? pair : pair.substr(0, eq);
        if (key == name)
            return true;
        if (amp == std::string::npos)
            break;
        pos = amp + 1;
    }
    return false;
}

// ---- HttpRequestParser ----

void
HttpRequestParser::fail(int status, std::string reason)
{
    phase_ = Phase::Error;
    errorStatus_ = status;
    errorReason_ = std::move(reason);
}

void
HttpRequestParser::reset()
{
    phase_ = Phase::RequestLine;
    line_.clear();
    headerBytes_ = 0;
    contentLength_ = 0;
    errorStatus_ = 0;
    errorReason_.clear();
    request_ = HttpRequest{};
}

std::size_t
HttpRequestParser::feed(const char *data, std::size_t size)
{
    std::size_t consumed = 0;
    while (consumed < size && phase_ != Phase::Complete &&
           phase_ != Phase::Error) {
        if (phase_ == Phase::Body) {
            const std::size_t need =
                contentLength_ - request_.body.size();
            const std::size_t take =
                std::min(need, size - consumed);
            request_.body.append(data + consumed, take);
            consumed += take;
            if (request_.body.size() == contentLength_)
                phase_ = Phase::Complete;
            continue;
        }
        const char c = data[consumed++];
        if (c != '\n') {
            line_.push_back(c);
            if (phase_ == Phase::RequestLine &&
                line_.size() > limits_.maxRequestLineBytes) {
                fail(414, "request line exceeds " +
                              std::to_string(
                                  limits_.maxRequestLineBytes) +
                              " bytes");
            } else if (phase_ == Phase::Headers &&
                       headerBytes_ + line_.size() >
                           limits_.maxHeaderBytes) {
                fail(431, "headers exceed " +
                              std::to_string(limits_.maxHeaderBytes) +
                              " bytes");
            }
            continue;
        }
        // One line is complete; tolerate bare LF by making CR optional.
        if (!line_.empty() && line_.back() == '\r')
            line_.pop_back();
        std::string line;
        line.swap(line_);
        if (phase_ == Phase::RequestLine) {
            if (line.empty())
                continue; // ignore leading blank lines (robustness)
            processRequestLine(line);
        } else {
            headerBytes_ += line.size() + 2;
            processHeaderLine(line);
        }
    }
    return consumed;
}

void
HttpRequestParser::processRequestLine(const std::string &line)
{
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos)
        return fail(400, "malformed request line");
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos)
        return fail(400, "malformed request line");

    request_.method = line.substr(0, sp1);
    request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);

    if (request_.method.empty())
        return fail(400, "empty method");
    for (const char mc : request_.method)
        if (!isTchar(static_cast<unsigned char>(mc)))
            return fail(400, "invalid method token");

    if (version.size() != 8 || version.compare(0, 5, "HTTP/") != 0 ||
        !std::isdigit(static_cast<unsigned char>(version[5])) ||
        version[6] != '.' ||
        !std::isdigit(static_cast<unsigned char>(version[7])))
        return fail(400, "malformed HTTP version");
    request_.versionMajor = version[5] - '0';
    request_.versionMinor = version[7] - '0';
    if (request_.versionMajor != 1)
        return fail(505, "only HTTP/1.x is supported");

    if (request_.target.empty() || request_.target[0] != '/')
        return fail(400, "request target must be origin-form");
    for (const char tc : request_.target)
        if (static_cast<unsigned char>(tc) <= 0x20 ||
            static_cast<unsigned char>(tc) >= 0x7F)
            return fail(400, "invalid byte in request target");
    const std::size_t q = request_.target.find('?');
    request_.path = request_.target.substr(0, q);
    request_.query = q == std::string::npos
                         ? std::string()
                         : request_.target.substr(q + 1);

    phase_ = Phase::Headers;
}

void
HttpRequestParser::processHeaderLine(const std::string &line)
{
    if (line.empty())
        return finishHeaders();
    if (line[0] == ' ' || line[0] == '\t')
        return fail(400, "obsolete header folding is not supported");
    if (request_.headers.size() >= limits_.maxHeaderCount)
        return fail(431, "more than " +
                             std::to_string(limits_.maxHeaderCount) +
                             " headers");
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0)
        return fail(400, "malformed header line");
    const std::string name = line.substr(0, colon);
    for (const char nc : name)
        if (!isTchar(static_cast<unsigned char>(nc)))
            return fail(400, "invalid header name");
    request_.headers.emplace_back(toLower(name),
                                  trimOws(line.substr(colon + 1)));
}

void
HttpRequestParser::finishHeaders()
{
    if (request_.header("transfer-encoding") != nullptr)
        return fail(501, "transfer-encoding request bodies are not "
                         "supported; use content-length");

    bool sawLength = false;
    std::string lengthText;
    for (const auto &[name, value] : request_.headers) {
        if (name != "content-length")
            continue;
        if (sawLength && value != lengthText)
            return fail(400, "conflicting content-length headers");
        sawLength = true;
        lengthText = value;
    }
    if (sawLength) {
        if (!parseContentLength(lengthText, contentLength_))
            return fail(400, "malformed content-length");
        if (contentLength_ > limits_.maxBodyBytes)
            return fail(413, "body exceeds " +
                                 std::to_string(limits_.maxBodyBytes) +
                                 " bytes");
    }

    if (const std::string *expect = request_.header("expect")) {
        if (toLower(trimOws(*expect)) != "100-continue")
            return fail(417, "unsupported expectation");
        request_.expectContinue = true;
    }

    request_.keepAlive = request_.versionMinor >= 1;
    if (const std::string *conn = request_.header("connection")) {
        if (hasToken(*conn, "close"))
            request_.keepAlive = false;
        else if (hasToken(*conn, "keep-alive"))
            request_.keepAlive = true;
    }

    if (contentLength_ > 0) {
        request_.body.reserve(contentLength_);
        phase_ = Phase::Body;
    } else {
        phase_ = Phase::Complete;
    }
}

// ---- Response building ----

const char *
httpStatusReason(int status)
{
    switch (status) {
    case 100:
        return "Continue";
    case 200:
        return "OK";
    case 202:
        return "Accepted";
    case 204:
        return "No Content";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 409:
        return "Conflict";
    case 413:
        return "Payload Too Large";
    case 414:
        return "URI Too Long";
    case 417:
        return "Expectation Failed";
    case 429:
        return "Too Many Requests";
    case 431:
        return "Request Header Fields Too Large";
    case 500:
        return "Internal Server Error";
    case 501:
        return "Not Implemented";
    case 502:
        return "Bad Gateway";
    case 503:
        return "Service Unavailable";
    case 504:
        return "Gateway Timeout";
    case 505:
        return "HTTP Version Not Supported";
    default:
        return "Unknown";
    }
}

std::string
buildHttpResponse(int status, const std::string &content_type,
                  const std::string &body, bool keep_alive,
                  const std::vector<std::pair<std::string, std::string>>
                      &extra_headers)
{
    std::string out;
    out.reserve(body.size() + 160);
    out += "HTTP/1.1 ";
    out += std::to_string(status);
    out += ' ';
    out += httpStatusReason(status);
    out += "\r\nServer: edgetherm-gateway\r\n";
    if (!content_type.empty()) {
        out += "Content-Type: ";
        out += content_type;
        out += "\r\n";
    }
    out += "Content-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: ";
    out += keep_alive ? "keep-alive" : "close";
    out += "\r\n";
    for (const auto &[name, value] : extra_headers) {
        out += name;
        out += ": ";
        out += value;
        out += "\r\n";
    }
    out += "\r\n";
    out += body;
    return out;
}

std::string
buildChunkedHead(int status, const std::string &content_type,
                 bool keep_alive)
{
    std::string out;
    out += "HTTP/1.1 ";
    out += std::to_string(status);
    out += ' ';
    out += httpStatusReason(status);
    out += "\r\nServer: edgetherm-gateway\r\nContent-Type: ";
    out += content_type;
    out += "\r\nTransfer-Encoding: chunked\r\nConnection: ";
    out += keep_alive ? "keep-alive" : "close";
    out += "\r\n\r\n";
    return out;
}

std::string
encodeChunk(const std::string &data)
{
    if (data.empty())
        return {}; // an empty chunk would terminate the stream
    static const char *hex = "0123456789abcdef";
    std::string size;
    std::size_t n = data.size();
    while (n > 0) {
        size.insert(size.begin(), hex[n & 0xF]);
        n >>= 4;
    }
    return size + "\r\n" + data + "\r\n";
}

std::string
finalChunk()
{
    return "0\r\n\r\n";
}

std::string
continueResponse()
{
    return "HTTP/1.1 100 Continue\r\n\r\n";
}

// ---- HttpResponseParser ----

const std::string *
HttpResponse::header(const std::string &lower_name) const
{
    for (const auto &[name, value] : headers)
        if (name == lower_name)
            return &value;
    return nullptr;
}

void
HttpResponseParser::fail(std::string reason)
{
    phase_ = Phase::Error;
    errorReason_ = std::move(reason);
}

void
HttpResponseParser::reset()
{
    phase_ = Phase::StatusLine;
    line_.clear();
    contentLength_ = 0;
    chunkRemaining_ = 0;
    errorReason_.clear();
    response_ = HttpResponse{};
}

std::size_t
HttpResponseParser::feed(const char *data, std::size_t size)
{
    std::size_t consumed = 0;
    while (consumed < size && phase_ != Phase::Complete &&
           phase_ != Phase::Error) {
        if (phase_ == Phase::FixedBody) {
            const std::size_t need =
                contentLength_ - response_.body.size();
            const std::size_t take = std::min(need, size - consumed);
            response_.body.append(data + consumed, take);
            consumed += take;
            if (response_.body.size() == contentLength_)
                phase_ = Phase::Complete;
            continue;
        }
        if (phase_ == Phase::ChunkData) {
            const std::size_t take =
                std::min(chunkRemaining_, size - consumed);
            response_.body.append(data + consumed, take);
            consumed += take;
            chunkRemaining_ -= take;
            if (chunkRemaining_ == 0)
                phase_ = Phase::ChunkDataEnd;
            continue;
        }
        const char c = data[consumed++];
        if (c != '\n') {
            line_.push_back(c);
            if (line_.size() > 65536)
                fail("response line exceeds 64 KiB");
            continue;
        }
        if (!line_.empty() && line_.back() == '\r')
            line_.pop_back();
        std::string line;
        line.swap(line_);
        switch (phase_) {
        case Phase::StatusLine:
            processStatusLine(line);
            break;
        case Phase::Headers:
            processHeaderLine(line);
            break;
        case Phase::ChunkSize: {
            const std::size_t semi = line.find(';');
            const std::string hexpart =
                trimOws(semi == std::string::npos
                            ? line
                            : line.substr(0, semi));
            if (hexpart.empty() || hexpart.size() > 8)
                return fail("malformed chunk size"), consumed;
            std::size_t value = 0;
            for (const char hc : hexpart) {
                value <<= 4;
                if (hc >= '0' && hc <= '9')
                    value |= static_cast<std::size_t>(hc - '0');
                else if (hc >= 'a' && hc <= 'f')
                    value |= static_cast<std::size_t>(hc - 'a' + 10);
                else if (hc >= 'A' && hc <= 'F')
                    value |= static_cast<std::size_t>(hc - 'A' + 10);
                else
                    return fail("malformed chunk size"), consumed;
            }
            chunkRemaining_ = value;
            phase_ = value == 0 ? Phase::Trailers : Phase::ChunkData;
            break;
        }
        case Phase::ChunkDataEnd:
            if (!line.empty())
                return fail("missing CRLF after chunk data"), consumed;
            phase_ = Phase::ChunkSize;
            break;
        case Phase::Trailers:
            if (line.empty())
                phase_ = Phase::Complete;
            break;
        default:
            break;
        }
    }
    return consumed;
}

void
HttpResponseParser::processStatusLine(const std::string &line)
{
    if (line.size() < 12 || line.compare(0, 5, "HTTP/") != 0 ||
        line[8] != ' ')
        return fail("malformed status line");
    int status = 0;
    for (int i = 9; i < 12; ++i) {
        const char c = line[static_cast<std::size_t>(i)];
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return fail("malformed status code");
        status = status * 10 + (c - '0');
    }
    response_.status = status;
    phase_ = Phase::Headers;
}

void
HttpResponseParser::processHeaderLine(const std::string &line)
{
    if (line.empty())
        return finishHeaders();
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0)
        return fail("malformed response header");
    response_.headers.emplace_back(toLower(line.substr(0, colon)),
                                   trimOws(line.substr(colon + 1)));
}

void
HttpResponseParser::finishHeaders()
{
    if (const std::string *te =
            response_.header("transfer-encoding");
        te != nullptr && hasToken(*te, "chunked")) {
        response_.chunked = true;
        phase_ = Phase::ChunkSize;
        return;
    }
    if (const std::string *cl = response_.header("content-length")) {
        if (!parseContentLength(*cl, contentLength_))
            return fail("malformed content-length");
        phase_ = contentLength_ > 0 ? Phase::FixedBody
                                    : Phase::Complete;
        return;
    }
    // 100 Continue interim responses carry neither; they are complete
    // at the blank line. Anything else without a length is treated as
    // complete too (the gateway always sends a length or chunks).
    phase_ = Phase::Complete;
}

} // namespace ecolo::gateway
