/**
 * @file
 * Incremental HTTP/1.1 for the gateway: a request-parser state machine
 * fed arbitrary byte slices (the epoll loop hands it whatever recv
 * produced -- torn lines, pipelined requests, one byte at a time), plus
 * response builders including chunked transfer encoding for streaming
 * in-progress campaign results, and a client-side response parser for
 * the tests and the bench harness.
 *
 * The request parser is total and bounded: every malformed or oversized
 * input lands in a terminal Error phase with a concrete HTTP status
 * (400/413/414/431/501/505) and a reason, never a hang, a crash, or an
 * unbounded buffer. Limits are explicit (request-line bytes, header
 * bytes, header count, body bytes) so the fuzz corpus can pin each
 * rejection class. Bare-LF line endings are tolerated on input (robust
 * parsing of sloppy clients); output is always strict CRLF.
 *
 * Keep-alive follows the spec defaults -- HTTP/1.1 persists unless
 * "Connection: close", HTTP/1.0 closes unless "Connection: keep-alive"
 * -- and `Expect: 100-continue` is surfaced to the caller so the event
 * loop can emit the interim response instead of deadlocking against a
 * curl that politely waits before sending its body. Request bodies are
 * Content-Length only; Transfer-Encoding on a *request* is answered 501
 * (the gateway streams responses, it does not accept streamed uploads).
 */

#ifndef ECOLO_GATEWAY_HTTP_HH
#define ECOLO_GATEWAY_HTTP_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ecolo::gateway {

/** One fully parsed request. Header names are lower-cased. */
struct HttpRequest
{
    std::string method;
    std::string target; //!< raw request-target ("/v1/runs?stream=1")
    std::string path;   //!< target up to '?'
    std::string query;  //!< target after '?' (no '?'; may be empty)
    int versionMajor = 1;
    int versionMinor = 1;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    bool keepAlive = true;
    bool expectContinue = false;

    /** First header value by lower-case name; nullptr when absent. */
    const std::string *header(const std::string &lower_name) const;
    /** Value of `name` in the query string ("" when absent/bare). */
    std::string queryParam(const std::string &name) const;
    /** True when the query contains `name` (bare or with a value). */
    bool hasQueryParam(const std::string &name) const;
};

/**
 * Feed-driven request parser. feed() consumes as much of the input as
 * the current request needs and stops at a request boundary, so the
 * caller can detect pipelined bytes (consumed < size on Complete) and
 * replay them into the next request after reset().
 */
class HttpRequestParser
{
  public:
    struct Limits
    {
        std::size_t maxRequestLineBytes = 8192;
        std::size_t maxHeaderBytes = 32768; //!< all header lines together
        std::size_t maxHeaderCount = 100;
        std::size_t maxBodyBytes = 1u << 20;
    };

    enum class Phase : std::uint8_t
    {
        RequestLine,
        Headers,
        Body,
        Complete,
        Error,
    };

    HttpRequestParser() = default;
    explicit HttpRequestParser(Limits limits) : limits_(limits) {}

    /**
     * Consume up to `size` bytes; returns how many were used. Stops
     * early only on Complete (request boundary) or Error (the rest of
     * the connection's input is garbage by definition).
     */
    std::size_t feed(const char *data, std::size_t size);

    Phase phase() const { return phase_; }
    bool complete() const { return phase_ == Phase::Complete; }
    bool failed() const { return phase_ == Phase::Error; }

    /** The HTTP status a failed parse should be answered with. */
    int errorStatus() const { return errorStatus_; }
    const std::string &errorReason() const { return errorReason_; }

    /** @pre complete() (also readable mid-body for expectContinue). */
    const HttpRequest &request() const { return request_; }
    HttpRequest &request() { return request_; }

    /** Forget the current request; limits persist (keep-alive reuse). */
    void reset();

  private:
    void fail(int status, std::string reason);
    void processRequestLine(const std::string &line);
    void processHeaderLine(const std::string &line);
    void finishHeaders();

    Limits limits_;
    Phase phase_ = Phase::RequestLine;
    std::string line_;
    std::size_t headerBytes_ = 0;
    std::size_t contentLength_ = 0;
    int errorStatus_ = 0;
    std::string errorReason_;
    HttpRequest request_;
};

/** The canonical reason phrase for the statuses the gateway emits. */
const char *httpStatusReason(int status);

/** One complete fixed-length response (status line through body). */
std::string
buildHttpResponse(int status, const std::string &content_type,
                  const std::string &body, bool keep_alive,
                  const std::vector<std::pair<std::string, std::string>>
                      &extra_headers = {});

/** Status line + headers for a chunked streaming response. */
std::string
buildChunkedHead(int status, const std::string &content_type,
                 bool keep_alive);

/** `data` as one transfer chunk; empty data yields no bytes. */
std::string encodeChunk(const std::string &data);

/** The terminating zero-length chunk. */
std::string finalChunk();

/** The interim response for `Expect: 100-continue`. */
std::string continueResponse();

/** A parsed response (for tests/bench acting as the HTTP client). */
struct HttpResponse
{
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body; //!< chunked transfer already decoded
    bool chunked = false;

    const std::string *header(const std::string &lower_name) const;
};

/** Feed-driven response parser; Content-Length and chunked bodies. */
class HttpResponseParser
{
  public:
    std::size_t feed(const char *data, std::size_t size);
    bool complete() const { return phase_ == Phase::Complete; }
    bool failed() const { return phase_ == Phase::Error; }
    const std::string &errorReason() const { return errorReason_; }
    const HttpResponse &response() const { return response_; }
    void reset();

  private:
    enum class Phase : std::uint8_t
    {
        StatusLine,
        Headers,
        FixedBody,
        ChunkSize,
        ChunkData,
        ChunkDataEnd,
        Trailers,
        Complete,
        Error,
    };

    void fail(std::string reason);
    void processStatusLine(const std::string &line);
    void processHeaderLine(const std::string &line);
    void finishHeaders();

    Phase phase_ = Phase::StatusLine;
    std::string line_;
    std::size_t contentLength_ = 0;
    std::size_t chunkRemaining_ = 0;
    std::string errorReason_;
    HttpResponse response_;
};

} // namespace ecolo::gateway

#endif // ECOLO_GATEWAY_HTTP_HH
