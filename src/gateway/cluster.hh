/**
 * @file
 * The sharded worker pool behind the gateway: N edgetherm-serve
 * processes addressed as host:port, consistent hashing from the
 * content-addressed cache key to a preferred worker, and typed failover
 * down the preference list when a worker's transport dies.
 *
 * Placement is rendezvous (highest-random-weight) hashing: every worker
 * is scored by mixing fnv1a64(label) with the key hash through the
 * SplitMix64 finalizer, and the descending score order
 * *is* both the shard assignment (first entry) and the failover order
 * (the rest). Adding or removing one worker therefore remaps only the
 * keys that scored highest on it -- the property that keeps warm worker
 * caches warm through membership churn -- and every gateway computes
 * the same order with no coordination.
 *
 * Health is observational: a worker is marked unhealthy the moment a
 * forward to it fails at the transport layer, which re-ranks it to the
 * back of every subsequent preference order (rendezvous order preserved
 * within the healthy and unhealthy groups). A background probe thread
 * re-checks unhealthy workers with a STATS round-trip and restores them
 * on success, so a restarted worker rejoins without operator action.
 * All of it is counted per worker and surfaced through the gateway's
 * stats document.
 */

#ifndef ECOLO_GATEWAY_CLUSTER_HH
#define ECOLO_GATEWAY_CLUSTER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"
#include "util/result.hh"

namespace ecolo::gateway {

/** One worker endpoint. */
struct WorkerAddress
{
    std::string host;
    std::uint16_t port = 0;

    std::string label() const
    { return host + ":" + std::to_string(port); }
};

/**
 * Parse "host:port,host:port,..." (the --workers syntax). IPv6
 * literals use brackets: "[::1]:7471". Empty entries, missing or
 * out-of-range ports, and an empty list are ValidationErrors.
 */
util::Result<std::vector<WorkerAddress>>
parseWorkerList(const std::string &text);

class WorkerPool
{
  public:
    struct Options
    {
        /** Per-worker submit retry (transport + RETRY_AFTER). */
        serve::RetryPolicy retry;
        /** Receive timeout on worker conversations; <= 0 = none. */
        int receiveTimeoutMs = 30000;
        /** Unhealthy-worker re-probe cadence; <= 0 disables probing. */
        int probeIntervalMs = 500;
    };

    WorkerPool(std::vector<WorkerAddress> addresses, Options options);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Launch the health-probe thread (no-op when disabled). */
    void start();
    /** Stop and join the probe thread; idempotent. */
    void stop();

    std::size_t size() const { return workers_.size(); }
    const WorkerAddress &address(std::size_t worker) const
    { return workers_[worker].address; }
    bool healthy(std::size_t worker) const
    {
        return workers_[worker].healthy.load(
            std::memory_order_acquire);
    }
    std::size_t healthyCount() const;

    /**
     * Worker indices in preference order for `key_hash`: rendezvous
     * score descending, healthy workers before unhealthy ones.
     */
    std::vector<std::size_t> rankForKey(std::uint64_t key_hash) const;

    /** The raw rendezvous score (exposed for the property tests). */
    static std::uint64_t rendezvousScore(const WorkerAddress &address,
                                         std::uint64_t key_hash);

    /** `on_accepted` with the answering worker's index attached. */
    using AcceptedCallback = std::function<void(
        std::size_t worker, std::uint64_t remote_id,
        const serve::AcceptedPayload &)>;

    struct ForwardOutcome
    {
        serve::SubmitOutcome outcome;
        std::size_t worker = 0;    //!< index that answered
        std::size_t failovers = 0; //!< workers skipped on dead transport
        std::size_t attempts = 0;  //!< submit attempts across workers
    };

    /**
     * Forward one run to the cluster: try workers in rankForKey order,
     * submitWithRetry per worker, fail over to the next replica when a
     * worker's transport is exhausted (marking it unhealthy). The
     * Result is an error only when *every* worker is unreachable; a
     * worker that answers -- even with backpressure or a typed error --
     * ends the walk, because the shard owner's answer is authoritative.
     */
    util::Result<ForwardOutcome>
    submit(const serve::RequestSpec &spec, std::uint64_t key_hash,
           const AcceptedCallback &on_accepted = nullptr,
           const serve::ServeClient::StatusCallback &on_status =
               nullptr);

    /** Cancel a run previously accepted by `worker`. */
    util::Result<bool> cancel(std::size_t worker,
                              std::uint64_t remote_id);

    /** Fetch one worker's metrics document. */
    util::Result<std::string> stats(std::size_t worker);

    /** Monotonic per-worker counters for the stats document. */
    struct WorkerCounters
    {
        std::uint64_t forwarded = 0;   //!< submits attempted here
        std::uint64_t answered = 0;    //!< conversations that resolved
        std::uint64_t cacheHits = 0;
        std::uint64_t retryLater = 0;  //!< terminal backpressure
        std::uint64_t transportErrors = 0;
        std::uint64_t failoversFrom = 0; //!< walks that skipped past it
        std::uint64_t probes = 0;
        std::uint64_t probeFailures = 0;
        bool healthy = true;
    };
    WorkerCounters counters(std::size_t worker) const;

    /** Force the health bit (tests and the probe loop). */
    void setHealthy(std::size_t worker, bool healthy);

  private:
    struct Worker
    {
        WorkerAddress address;
        std::unique_ptr<serve::ServeClient> client;
        std::atomic<bool> healthy{true};
        std::atomic<std::uint64_t> forwarded{0};
        std::atomic<std::uint64_t> answered{0};
        std::atomic<std::uint64_t> cacheHits{0};
        std::atomic<std::uint64_t> retryLater{0};
        std::atomic<std::uint64_t> transportErrors{0};
        std::atomic<std::uint64_t> failoversFrom{0};
        std::atomic<std::uint64_t> probes{0};
        std::atomic<std::uint64_t> probeFailures{0};
    };

    void probeLoop();

    const Options options_;
    std::deque<Worker> workers_; //!< deque: Worker holds atomics

    std::mutex probeMutex_;
    std::condition_variable probeCv_;
    bool stopping_ = false;
    std::thread probeThread_;
};

} // namespace ecolo::gateway

#endif // ECOLO_GATEWAY_CLUSTER_HH
