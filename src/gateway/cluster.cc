#include "gateway/cluster.hh"

#include <algorithm>
#include <chrono>

#include "serve/result_cache.hh" // fnv1a64
#include "util/logging.hh"

namespace ecolo::gateway {

util::Result<std::vector<WorkerAddress>>
parseWorkerList(const std::string &text)
{
    std::vector<WorkerAddress> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        std::string entry = text.substr(pos, end - pos);
        // trim blanks around each entry
        while (!entry.empty() && entry.front() == ' ')
            entry.erase(entry.begin());
        while (!entry.empty() && entry.back() == ' ')
            entry.pop_back();
        if (entry.empty())
            return ECOLO_ERROR(util::ErrorCode::ValidationError,
                               "empty worker entry in '", text, "'");

        WorkerAddress addr;
        std::size_t colon;
        if (entry[0] == '[') {
            // [v6-literal]:port
            const std::size_t close = entry.find(']');
            if (close == std::string::npos || close + 1 >= entry.size() ||
                entry[close + 1] != ':')
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "malformed IPv6 worker '", entry,
                                   "' (expected [addr]:port)");
            addr.host = entry.substr(1, close - 1);
            colon = close + 1;
        } else {
            colon = entry.rfind(':');
            if (colon == std::string::npos || colon == 0)
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "worker '", entry,
                                   "' is not host:port");
            addr.host = entry.substr(0, colon);
        }
        const std::string port_text = entry.substr(colon + 1);
        if (port_text.empty() || port_text.size() > 5)
            return ECOLO_ERROR(util::ErrorCode::ValidationError,
                               "bad port in worker '", entry, "'");
        std::uint32_t port = 0;
        for (const char c : port_text) {
            if (c < '0' || c > '9')
                return ECOLO_ERROR(util::ErrorCode::ValidationError,
                                   "bad port in worker '", entry, "'");
            port = port * 10 + static_cast<std::uint32_t>(c - '0');
        }
        if (port == 0 || port > 65535)
            return ECOLO_ERROR(util::ErrorCode::ValidationError,
                               "port out of range in worker '", entry,
                               "'");
        addr.port = static_cast<std::uint16_t>(port);
        out.push_back(std::move(addr));

        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (out.empty())
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "worker list is empty");
    return out;
}

WorkerPool::WorkerPool(std::vector<WorkerAddress> addresses,
                       Options options)
    : options_(options)
{
    for (auto &addr : addresses) {
        Worker &w = workers_.emplace_back();
        w.client = std::make_unique<serve::ServeClient>(addr.host,
                                                        addr.port);
        if (options_.receiveTimeoutMs > 0)
            w.client->setReceiveTimeoutMs(options_.receiveTimeoutMs);
        w.address = std::move(addr);
    }
}

WorkerPool::~WorkerPool() { stop(); }

void
WorkerPool::start()
{
    if (options_.probeIntervalMs <= 0 || probeThread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(probeMutex_);
        stopping_ = false;
    }
    probeThread_ = std::thread([this] { probeLoop(); });
}

void
WorkerPool::stop()
{
    {
        std::lock_guard<std::mutex> lock(probeMutex_);
        stopping_ = true;
    }
    probeCv_.notify_all();
    if (probeThread_.joinable())
        probeThread_.join();
}

std::size_t
WorkerPool::healthyCount() const
{
    std::size_t n = 0;
    for (const Worker &w : workers_)
        if (w.healthy.load(std::memory_order_acquire))
            ++n;
    return n;
}

std::uint64_t
WorkerPool::rendezvousScore(const WorkerAddress &address,
                            std::uint64_t key_hash)
{
    // Highest-random-weight: score the (worker, key) pair. FNV alone
    // is not enough here -- worker labels share a long common prefix
    // ("127.0.0.1:747x"), and FNV's last-byte step leaves scores for
    // different workers offset by a near-constant, which skews the
    // argmax badly. The SplitMix64 finalizer on top decorrelates the
    // (worker, key) pairs properly.
    std::uint64_t x = serve::fnv1a64(address.label()) ^
                      (key_hash + 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

std::vector<std::size_t>
WorkerPool::rankForKey(std::uint64_t key_hash) const
{
    std::vector<std::size_t> order(workers_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::vector<std::uint64_t> score(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i)
        score[i] = rendezvousScore(workers_[i].address, key_hash);
    std::sort(order.begin(), order.end(),
              [&score](std::size_t a, std::size_t b) {
                  if (score[a] != score[b])
                      return score[a] > score[b];
                  return a < b;
              });
    // Healthy-first, preserving rendezvous order inside each group:
    // the preferred *healthy* replica is tried before any dead one,
    // and a revived worker snaps back to its original rank.
    std::stable_partition(order.begin(), order.end(),
                          [this](std::size_t i) {
                              return workers_[i].healthy.load(
                                  std::memory_order_acquire);
                          });
    return order;
}

util::Result<WorkerPool::ForwardOutcome>
WorkerPool::submit(const serve::RequestSpec &spec,
                   std::uint64_t key_hash,
                   const AcceptedCallback &on_accepted,
                   const serve::ServeClient::StatusCallback &on_status)
{
    const std::vector<std::size_t> order = rankForKey(key_hash);
    ForwardOutcome result;
    util::Error last =
        ECOLO_ERROR(util::ErrorCode::IoError, "no workers configured");
    for (const std::size_t idx : order) {
        Worker &w = workers_[idx];
        w.forwarded.fetch_add(1, std::memory_order_relaxed);
        std::size_t attempts = 0;
        serve::ServeClient::AcceptedCallback wrapped;
        if (on_accepted) {
            wrapped = [&on_accepted, idx](
                          std::uint64_t remote_id,
                          const serve::AcceptedPayload &payload) {
                on_accepted(idx, remote_id, payload);
            };
        }
        auto outcome = w.client->submitWithRetry(
            spec, options_.retry, &attempts, wrapped, on_status);
        result.attempts += attempts;
        if (outcome) {
            w.answered.fetch_add(1, std::memory_order_relaxed);
            if (outcome.value().cacheHit)
                w.cacheHits.fetch_add(1, std::memory_order_relaxed);
            if (outcome.value().status ==
                serve::OutcomeStatus::RetryLater)
                w.retryLater.fetch_add(1, std::memory_order_relaxed);
            w.healthy.store(true, std::memory_order_release);
            result.outcome = outcome.take();
            result.worker = idx;
            return result;
        }
        // Transport exhausted on this worker: mark it out and walk to
        // the next replica in rendezvous order.
        w.transportErrors.fetch_add(1, std::memory_order_relaxed);
        w.failoversFrom.fetch_add(1, std::memory_order_relaxed);
        w.healthy.store(false, std::memory_order_release);
        ++result.failovers;
        last = outcome.error();
        debugLog("gateway: worker ", w.address.label(),
                 " unreachable (", last.message, "), failing over");
    }
    return ECOLO_ERROR(util::ErrorCode::IoError, "all ",
                       workers_.size(),
                       " workers unreachable; last error: ",
                       last.message);
}

util::Result<bool>
WorkerPool::cancel(std::size_t worker, std::uint64_t remote_id)
{
    return workers_[worker].client->cancel(remote_id);
}

util::Result<std::string>
WorkerPool::stats(std::size_t worker)
{
    return workers_[worker].client->stats();
}

WorkerPool::WorkerCounters
WorkerPool::counters(std::size_t worker) const
{
    const Worker &w = workers_[worker];
    WorkerCounters c;
    c.forwarded = w.forwarded.load(std::memory_order_relaxed);
    c.answered = w.answered.load(std::memory_order_relaxed);
    c.cacheHits = w.cacheHits.load(std::memory_order_relaxed);
    c.retryLater = w.retryLater.load(std::memory_order_relaxed);
    c.transportErrors =
        w.transportErrors.load(std::memory_order_relaxed);
    c.failoversFrom = w.failoversFrom.load(std::memory_order_relaxed);
    c.probes = w.probes.load(std::memory_order_relaxed);
    c.probeFailures = w.probeFailures.load(std::memory_order_relaxed);
    c.healthy = w.healthy.load(std::memory_order_acquire);
    return c;
}

void
WorkerPool::setHealthy(std::size_t worker, bool healthy)
{
    workers_[worker].healthy.store(healthy,
                                   std::memory_order_release);
}

void
WorkerPool::probeLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(probeMutex_);
            probeCv_.wait_for(
                lock,
                std::chrono::milliseconds(options_.probeIntervalMs),
                [this] { return stopping_; });
            if (stopping_)
                return;
        }
        for (Worker &w : workers_) {
            if (w.healthy.load(std::memory_order_acquire))
                continue;
            w.probes.fetch_add(1, std::memory_order_relaxed);
            if (w.client->stats()) {
                w.healthy.store(true, std::memory_order_release);
                inform("gateway: worker ", w.address.label(),
                       " is healthy again");
            } else {
                w.probeFailures.fetch_add(1,
                                          std::memory_order_relaxed);
            }
        }
    }
}

} // namespace ecolo::gateway
