/**
 * @file
 * Strict JSON for the HTTP gateway: a small immutable value tree, a
 * total Result-typed parser, and quoting helpers for response writers.
 *
 * The parser accepts exactly RFC 8259 JSON -- no comments, no trailing
 * commas, no bare NaN/Infinity, no trailing garbage -- and is bounded:
 * nesting beyond `max_depth` is rejected (a 10k-bracket body must cost
 * a 400, not a stack overflow), and every failure carries the byte
 * offset so a client can find its typo. Object member order is
 * preserved; duplicate keys are rejected outright rather than silently
 * last-wins, because a request that says "param" twice is a bug on the
 * caller's side that quiet acceptance would hide.
 *
 * Writing stays string-based (jsonQuote + ostringstream) on purpose:
 * every response body the gateway emits is assembled from a handful of
 * known-shape fields, and a builder API would be more code than the
 * responses themselves.
 */

#ifndef ECOLO_GATEWAY_JSON_HH
#define ECOLO_GATEWAY_JSON_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.hh"

namespace ecolo::gateway {

/** One parsed JSON value; a tree of these owns all its storage. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @pre isBool() */
    bool asBool() const { return bool_; }
    /** @pre isNumber() */
    double asNumber() const { return number_; }
    /** @pre isString() */
    const std::string &asString() const { return string_; }
    /** @pre isArray() */
    const std::vector<JsonValue> &items() const { return items_; }
    /** @pre isObject(); insertion order preserved. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    { return members_; }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *member(const std::string &key) const;

    /**
     * Parse one complete JSON document. Trailing non-whitespace bytes,
     * duplicate object keys, and nesting beyond `max_depth` are
     * ParseErrors; the message always carries a byte offset.
     */
    static util::Result<JsonValue> parse(const std::string &text,
                                         std::size_t max_depth = 64);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

const char *toString(JsonValue::Kind kind);

/** `s` as a quoted JSON string literal (quotes included). */
std::string jsonQuote(const std::string &s);

/**
 * Render a double the way the gateway's JSON bodies need it: integers
 * without a trailing ".0" mess, everything else with enough digits to
 * round-trip.
 */
std::string jsonNumber(double v);

} // namespace ecolo::gateway

#endif // ECOLO_GATEWAY_JSON_HH
