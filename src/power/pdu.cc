#include "power/pdu.hh"

#include "util/logging.hh"

namespace ecolo::power {

Kilowatts
PowerMeter::read(Kilowatts true_power, Rng &rng) const
{
    if (relativeNoise_ <= 0.0)
        return true_power;
    const double noisy =
        true_power.value() * (1.0 + rng.normal(0.0, relativeNoise_));
    return Kilowatts(noisy < 0.0 ? 0.0 : noisy);
}

std::size_t
Pdu::addCircuit(std::string tenant_name, Kilowatts subscription,
                double meter_noise)
{
    ECOLO_ASSERT(subscription.value() > 0.0,
                 "non-positive subscription for '", tenant_name, "'");
    circuits_.push_back(Circuit{std::move(tenant_name), subscription,
                                PowerMeter(meter_noise), Kilowatts(0.0)});
    return circuits_.size() - 1;
}

const std::string &
Pdu::circuitName(std::size_t i) const
{
    return circuits_.at(i).name;
}

Kilowatts
Pdu::circuitSubscription(std::size_t i) const
{
    return circuits_.at(i).subscription;
}

void
Pdu::setCircuitDraw(std::size_t i, Kilowatts grid_power)
{
    ECOLO_ASSERT(grid_power.value() >= -1e-9,
                 "negative grid draw on circuit ", i);
    circuits_.at(i).currentDraw = energized_ ? grid_power : Kilowatts(0.0);
}

Kilowatts
Pdu::circuitMeteredPower(std::size_t i) const
{
    return circuits_.at(i).meter.read(circuits_.at(i).currentDraw);
}

Kilowatts
Pdu::totalMeteredPower() const
{
    Kilowatts total(0.0);
    for (std::size_t i = 0; i < circuits_.size(); ++i)
        total += circuitMeteredPower(i);
    return total;
}

bool
Pdu::circuitOverSubscription(std::size_t i, double tolerance) const
{
    const Circuit &c = circuits_.at(i);
    return c.currentDraw.value() > c.subscription.value() + tolerance;
}

bool
Pdu::overCapacity(double tolerance) const
{
    return totalMeteredPower().value() > capacity_.value() + tolerance;
}

} // namespace ecolo::power
