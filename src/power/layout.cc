#include "power/layout.hh"

#include "util/logging.hh"

namespace ecolo::power {

DataCenterLayout::DataCenterLayout(Params params) : params_(params)
{
    ECOLO_ASSERT(params_.numRacks > 0 && params_.serversPerRack > 0,
                 "layout needs at least one rack and one server");
    ECOLO_ASSERT(params_.containerLength > 0.0 &&
                 params_.containerWidth > 0.0 &&
                 params_.containerHeight > 0.0,
                 "container dimensions must be positive");
}

RackSlot
DataCenterLayout::rackSlotOf(std::size_t server_index) const
{
    ECOLO_ASSERT(server_index < numServers(),
                 "server index out of range: ", server_index);
    return RackSlot{server_index / params_.serversPerRack,
                    server_index % params_.serversPerRack};
}

std::size_t
DataCenterLayout::indexOf(RackSlot rs) const
{
    ECOLO_ASSERT(rs.rack < params_.numRacks &&
                 rs.slot < params_.serversPerRack,
                 "rack/slot out of range: ", rs.rack, "/", rs.slot);
    return rs.rack * params_.serversPerRack + rs.slot;
}

Position
DataCenterLayout::inletPositionOf(std::size_t server_index) const
{
    const RackSlot rs = rackSlotOf(server_index);
    // Racks stand in a row along the container's length, past the CRAC.
    const double rack_x0 = params_.crakX + 1.0;
    Position pos;
    pos.x = rack_x0 + static_cast<double>(rs.rack) * params_.rackSpacing;
    pos.y = params_.containerWidth * 0.3; // cold-aisle face
    const double slot_pitch =
        params_.rackHeight / static_cast<double>(params_.serversPerRack);
    pos.z = (static_cast<double>(rs.slot) + 0.5) * slot_pitch;
    return pos;
}

Position
DataCenterLayout::crakPosition() const
{
    return Position{params_.crakX, params_.containerWidth * 0.5,
                    params_.containerHeight * 0.5};
}

double
DataCenterLayout::airVolume() const
{
    // Racks and containment occupy roughly a quarter of the enclosure.
    return params_.containerLength * params_.containerWidth *
           params_.containerHeight * 0.75;
}

} // namespace ecolo::power
