#include "power/tenant.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::power {

Tenant::Tenant(std::string name, Kilowatts subscribed_capacity,
               std::size_t num_servers, ServerSpec server_spec)
    : name_(std::move(name)), subscribed_(subscribed_capacity)
{
    ECOLO_ASSERT(num_servers > 0, "tenant '", name_, "' has no servers");
    servers_.reserve(num_servers);
    for (std::size_t i = 0; i < num_servers; ++i)
        servers_.emplace_back(server_spec);
}

void
Tenant::setTrace(trace::UtilizationTrace trace)
{
    ECOLO_ASSERT(!trace.empty(), "empty trace for tenant '", name_, "'");
    trace_ = std::move(trace);
}

void
Tenant::applyTraceAt(MinuteIndex t)
{
    ECOLO_ASSERT(hasTrace(), "tenant '", name_, "' has no trace attached");
    setUtilization(trace_.at(t));
}

void
Tenant::setUtilization(double utilization)
{
    for (Server &s : servers_)
        s.setUtilization(utilization);
}

Kilowatts
Tenant::demandPower() const
{
    Kilowatts total(0.0);
    for (const Server &s : servers_)
        total += s.demandPower();
    return total;
}

Kilowatts
Tenant::actualPower() const
{
    Kilowatts total(0.0);
    for (const Server &s : servers_)
        total += s.actualPower();
    return total;
}

void
Tenant::setPerServerCap(Kilowatts cap)
{
    for (Server &s : servers_)
        s.setPowerCap(cap);
}

void
Tenant::clearCaps()
{
    for (Server &s : servers_)
        s.clearPowerCap();
}

void
Tenant::setPoweredOn(bool on)
{
    for (Server &s : servers_)
        s.setPoweredOn(on);
}

double
Tenant::servedFraction() const
{
    if (servers_.empty())
        return 1.0;
    double sum = 0.0;
    for (const Server &s : servers_)
        sum += s.servedFraction();
    return sum / static_cast<double>(servers_.size());
}

double
Tenant::utilization() const
{
    if (servers_.empty())
        return 0.0;
    double sum = 0.0;
    for (const Server &s : servers_)
        sum += s.utilization();
    return sum / static_cast<double>(servers_.size());
}

double
computeMeanPowerScaleFactor(const std::vector<Tenant *> &tenants,
                            Kilowatts target_mean_power)
{
    ECOLO_ASSERT(!tenants.empty(), "no tenants to scale");
    for (Tenant *t : tenants)
        ECOLO_ASSERT(t != nullptr && t->hasTrace(),
                     "scaleTenantsToMeanPower needs tenants with traces");

    // All tenants share one trace length (they are generated together).
    const std::size_t horizon = tenants.front()->traceRef().size();
    for (Tenant *t : tenants)
        ECOLO_ASSERT(t->traceRef().size() == horizon,
                     "tenant trace lengths differ");

    // Mean power is a monotone function of the common scale factor; solve
    // for it by bisection. The achieved mean saturates at all-peak power,
    // so clamp the target to what is actually reachable.
    auto mean_power_for = [&](double factor) {
        double total_kw = 0.0;
        for (const Tenant *t : tenants) {
            const auto &samples = t->traceRef().samples();
            const ServerSpec &spec = t->server(0).spec();
            const double n = static_cast<double>(t->numServers());
            double tenant_kw = 0.0;
            for (double u : samples) {
                const double scaled = std::clamp(u * factor, 0.0, 1.0);
                tenant_kw += spec.powerAt(scaled).value() * n;
            }
            total_kw += tenant_kw / static_cast<double>(samples.size());
        }
        return total_kw;
    };

    const double target = target_mean_power.value();
    double lo = 0.0, hi = 1.0;
    // Grow hi until the target is bracketed or saturation is reached.
    while (mean_power_for(hi) < target && hi < 64.0)
        hi *= 2.0;
    if (mean_power_for(hi) < target) {
        warn("target mean power ", target,
             " kW unreachable; saturating traces at full utilization");
    }
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (mean_power_for(mid) < target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

void
applyTraceScale(const std::vector<Tenant *> &tenants, double factor)
{
    for (Tenant *t : tenants) {
        trace::UtilizationTrace scaled = t->traceRef();
        scaled.scale(factor);
        t->setTrace(std::move(scaled));
    }
}

void
scaleTenantsToMeanPower(std::vector<Tenant *> tenants,
                        Kilowatts target_mean_power)
{
    applyTraceScale(tenants,
                    computeMeanPowerScaleFactor(tenants, target_mean_power));
}

} // namespace ecolo::power
