/**
 * @file
 * A colocation tenant: a named owner of a group of servers with a subscribed
 * power capacity and a workload trace driving its servers' utilization.
 */

#ifndef ECOLO_POWER_TENANT_HH
#define ECOLO_POWER_TENANT_HH

#include <string>
#include <vector>

#include "power/server.hh"
#include "trace/utilization_trace.hh"
#include "util/sim_time.hh"
#include "util/units.hh"

namespace ecolo::power {

/** A tenant and its servers. */
class Tenant
{
  public:
    Tenant(std::string name, Kilowatts subscribed_capacity,
           std::size_t num_servers, ServerSpec server_spec);

    const std::string &name() const { return name_; }
    Kilowatts subscribedCapacity() const { return subscribed_; }

    std::size_t numServers() const { return servers_.size(); }
    Server &server(std::size_t i) { return servers_.at(i); }
    const Server &server(std::size_t i) const { return servers_.at(i); }
    std::vector<Server> &servers() { return servers_; }
    const std::vector<Server> &servers() const { return servers_; }

    /** Attach the workload trace that drives this tenant's utilization. */
    void setTrace(trace::UtilizationTrace trace);
    const trace::UtilizationTrace &traceRef() const { return trace_; }
    bool hasTrace() const { return !trace_.empty(); }

    /** Set every server's utilization from the trace at minute t. */
    void applyTraceAt(MinuteIndex t);

    /** Uniform utilization across all servers (manual control). */
    void setUtilization(double utilization);

    /** Aggregate power the offered load wants (uncapped). */
    Kilowatts demandPower() const;

    /** Aggregate power actually drawn (capped / powered-off aware). */
    Kilowatts actualPower() const;

    /** Apply / clear a per-server power cap on every server. */
    void setPerServerCap(Kilowatts cap);
    void clearCaps();

    /** Power every server on/off (outage handling). */
    void setPoweredOn(bool on);

    /** Mean served fraction across servers (latency-model input). */
    double servedFraction() const;

    /** Mean utilization currently applied across servers. */
    double utilization() const;

  private:
    std::string name_;
    Kilowatts subscribed_;
    std::vector<Server> servers_;
    trace::UtilizationTrace trace_;
};

/**
 * Scale each tenant's trace with a single common factor such that the
 * tenants' combined *mean power* hits target_mean_power. This is how the
 * paper sets "75% average utilization" of the 8 kW capacity.
 */
void scaleTenantsToMeanPower(std::vector<Tenant *> tenants,
                             Kilowatts target_mean_power);

/**
 * The solve half of scaleTenantsToMeanPower: the common factor whose
 * clamped application (UtilizationTrace::scale clamps to [0, 1], the
 * same clamp the solver models) yields the target mean power. Split
 * out so campaign drivers can solve once per distinct trace set and
 * reuse the factor -- the bisection over year-long traces dominates
 * per-simulation setup cost.
 */
double computeMeanPowerScaleFactor(const std::vector<Tenant *> &tenants,
                                   Kilowatts target_mean_power);

/** The apply half: scale every tenant's trace by `factor` in place. */
void applyTraceScale(const std::vector<Tenant *> &tenants, double factor);

} // namespace ecolo::power

#endif // ECOLO_POWER_TENANT_HH
