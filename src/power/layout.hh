/**
 * @file
 * Physical layout of the containerized edge colocation.
 *
 * Matches the paper's Vertiv SmartMod-style container: two racks of twenty
 * servers each inside a hot/cold-aisle contained enclosure with a CRAC unit
 * at one end. The layout provides server coordinates for the CFD-lite solver
 * and the rack/slot indexing the rest of the system uses.
 */

#ifndef ECOLO_POWER_LAYOUT_HH
#define ECOLO_POWER_LAYOUT_HH

#include <cstddef>
#include <vector>

#include "util/units.hh"

namespace ecolo::power {

/** Position of a server within the container, in meters. */
struct Position
{
    double x = 0.0; //!< along the container's length
    double y = 0.0; //!< across the container's width
    double z = 0.0; //!< height
};

/** Rack/slot address of a server. */
struct RackSlot
{
    std::size_t rack = 0;
    std::size_t slot = 0;
};

/** Container geometry plus rack/server placement. */
class DataCenterLayout
{
  public:
    struct Params
    {
        std::size_t numRacks = 2;
        std::size_t serversPerRack = 20;
        double containerLength = 6.1;  //!< m (20 ft container)
        double containerWidth = 2.4;   //!< m
        double containerHeight = 2.6;  //!< m
        double rackHeight = 2.0;       //!< m of usable rack space
        double rackSpacing = 1.2;      //!< m between rack columns
        double crakX = 0.5;            //!< m, CRAC position along length
    };

    DataCenterLayout() : DataCenterLayout(Params{}) {}
    explicit DataCenterLayout(Params params);

    std::size_t numRacks() const { return params_.numRacks; }
    std::size_t serversPerRack() const { return params_.serversPerRack; }
    std::size_t numServers() const
    { return params_.numRacks * params_.serversPerRack; }

    /** Rack/slot of the server with the given global index. */
    RackSlot rackSlotOf(std::size_t server_index) const;

    /** Global index of the server at the given rack/slot. */
    std::size_t indexOf(RackSlot rs) const;

    /** Physical position of a server's air inlet. */
    Position inletPositionOf(std::size_t server_index) const;

    /** Physical position of the CRAC supply vent. */
    Position crakPosition() const;

    const Params &params() const { return params_; }

    /** Container air volume in cubic meters (for the lumped room model). */
    double airVolume() const;

  private:
    Params params_;
};

} // namespace ecolo::power

#endif // ECOLO_POWER_LAYOUT_HH
