/**
 * @file
 * The operator-side power distribution and metering chain.
 *
 * A Pdu distributes UPS-protected power to tenants; the operator hangs one
 * PowerMeter per tenant off the PDU to enforce subscriptions and uses the
 * aggregate reading as a *proxy for cooling load* -- the practice whose
 * blind spot (battery-supplied power is invisible to the meter) enables the
 * paper's behind-the-meter thermal attack.
 */

#ifndef ECOLO_POWER_PDU_HH
#define ECOLO_POWER_PDU_HH

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "util/units.hh"

namespace ecolo::power {

/**
 * A revenue-grade power meter with optional zero-mean gaussian reading
 * noise (relative, e.g. 0.005 = 0.5% of reading).
 */
class PowerMeter
{
  public:
    explicit PowerMeter(double relative_noise = 0.0)
        : relativeNoise_(relative_noise) {}

    /** Measure a true grid draw; noise uses the supplied rng. */
    Kilowatts read(Kilowatts true_power, Rng &rng) const;

    /** Noise-free reading for deterministic contexts. */
    Kilowatts read(Kilowatts true_power) const { return true_power; }

    double relativeNoise() const { return relativeNoise_; }

  private:
    double relativeNoise_;
};

/**
 * A PDU feeding multiple metered tenant circuits. Tracks per-circuit
 * subscriptions and reports capacity violations.
 */
class Pdu
{
  public:
    explicit Pdu(Kilowatts capacity) : capacity_(capacity) {}

    Kilowatts capacity() const { return capacity_; }

    /** Register a tenant circuit with its subscription; returns its index. */
    std::size_t addCircuit(std::string tenant_name, Kilowatts subscription,
                           double meter_noise = 0.0);

    std::size_t numCircuits() const { return circuits_.size(); }
    const std::string &circuitName(std::size_t i) const;
    Kilowatts circuitSubscription(std::size_t i) const;

    /** Record the grid draw on circuit i for the current slot. */
    void setCircuitDraw(std::size_t i, Kilowatts grid_power);

    /** Metered power of circuit i for the current slot (noise-free). */
    Kilowatts circuitMeteredPower(std::size_t i) const;

    /** Sum of all circuit meters for the current slot. */
    Kilowatts totalMeteredPower() const;

    /** True if circuit i currently exceeds its subscription. */
    bool circuitOverSubscription(std::size_t i,
                                 double tolerance = 1e-9) const;

    /** True if the PDU as a whole exceeds its capacity. */
    bool overCapacity(double tolerance = 1e-9) const;

    /** Power the PDU off/on (automatic shutdown at 45 C -> outage). */
    void setEnergized(bool on) { energized_ = on; }
    bool energized() const { return energized_; }

  private:
    struct Circuit
    {
        std::string name;
        Kilowatts subscription;
        PowerMeter meter;
        Kilowatts currentDraw;
    };

    Kilowatts capacity_;
    std::vector<Circuit> circuits_;
    bool energized_ = true;
};

} // namespace ecolo::power

#endif // ECOLO_POWER_PDU_HH
