/**
 * @file
 * Server power model.
 *
 * Following the linear utilization->power models validated against real
 * systems (Fan et al., ISCA'07) that the paper also builds on, a server draws
 * idlePower at zero utilization and peakPower at full utilization, linearly
 * in between. Servers can be power-capped (the operator's thermal-emergency
 * response throttles CPUs, bounding power) and powered off (outage).
 */

#ifndef ECOLO_POWER_SERVER_HH
#define ECOLO_POWER_SERVER_HH

#include <optional>

#include "util/units.hh"

namespace ecolo::power {

/** Static electrical characteristics of one server model. */
struct ServerSpec
{
    Kilowatts idlePower{0.06};
    Kilowatts peakPower{0.20};

    /** Power drawn at the given utilization in [0, 1]. */
    Kilowatts powerAt(double utilization) const;

    /** Utilization that would draw the given power (inverse model). */
    double utilizationFor(Kilowatts power) const;
};

/**
 * One server's dynamic state: offered utilization, an optional power cap,
 * and an on/off state. The served fraction quantifies how much of the
 * offered load the (possibly capped) server can actually process, which is
 * what the latency model consumes.
 */
class Server
{
  public:
    explicit Server(ServerSpec spec) : spec_(spec) {}

    const ServerSpec &spec() const { return spec_; }

    /** Offered load as a fraction of the server's full compute capacity. */
    void setUtilization(double utilization);
    double utilization() const { return utilization_; }

    /** Limit power draw (thermal-emergency capping). */
    void setPowerCap(Kilowatts cap) { cap_ = cap; }
    void clearPowerCap() { cap_.reset(); }
    std::optional<Kilowatts> powerCap() const { return cap_; }

    void setPoweredOn(bool on) { poweredOn_ = on; }
    bool poweredOn() const { return poweredOn_; }

    /** Power the offered load would draw if uncapped. */
    Kilowatts demandPower() const;

    /** Power actually drawn: min(demand, cap), or zero when off. */
    Kilowatts actualPower() const;

    /**
     * Fraction of the offered load the server can serve given its cap, in
     * (0, 1]. Compute capacity is assumed proportional to dynamic power
     * (power above idle), matching DVFS-style throttling. 1 when uncapped
     * or idle; 0 when powered off with pending load.
     */
    double servedFraction() const;

  private:
    ServerSpec spec_;
    double utilization_ = 0.0;
    std::optional<Kilowatts> cap_;
    bool poweredOn_ = true;
};

} // namespace ecolo::power

#endif // ECOLO_POWER_SERVER_HH
