#include "power/server.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ecolo::power {

Kilowatts
ServerSpec::powerAt(double utilization) const
{
    ECOLO_ASSERT(idlePower <= peakPower, "idle power above peak power");
    const double u = std::clamp(utilization, 0.0, 1.0);
    return idlePower + (peakPower - idlePower) * u;
}

double
ServerSpec::utilizationFor(Kilowatts p) const
{
    const Kilowatts dynamic_range = peakPower - idlePower;
    if (dynamic_range.value() <= 0.0)
        return 0.0;
    return std::clamp((p - idlePower) / dynamic_range, 0.0, 1.0);
}

void
Server::setUtilization(double utilization)
{
    ECOLO_ASSERT(utilization >= 0.0 && utilization <= 1.0 + 1e-9,
                 "utilization out of [0,1]: ", utilization);
    utilization_ = std::clamp(utilization, 0.0, 1.0);
}

Kilowatts
Server::demandPower() const
{
    if (!poweredOn_)
        return Kilowatts(0.0);
    return spec_.powerAt(utilization_);
}

Kilowatts
Server::actualPower() const
{
    if (!poweredOn_)
        return Kilowatts(0.0);
    Kilowatts p = demandPower();
    if (cap_)
        p = std::min(p, *cap_);
    return p;
}

double
Server::servedFraction() const
{
    if (!poweredOn_)
        return utilization_ > 0.0 ? 0.0 : 1.0;
    if (!cap_ || demandPower() <= *cap_)
        return 1.0;
    // Dynamic (above-idle) power is proportional to delivered compute.
    const Kilowatts demanded_dynamic = demandPower() - spec_.idlePower;
    const Kilowatts capped_dynamic =
        std::max(Kilowatts(0.0), *cap_ - spec_.idlePower);
    if (demanded_dynamic.value() <= 0.0)
        return 1.0;
    return std::clamp(capped_dynamic / demanded_dynamic, 0.0, 1.0);
}

} // namespace ecolo::power
