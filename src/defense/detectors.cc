#include "defense/detectors.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::defense {

ThermalResidualDetector::ThermalResidualDetector(
    Params params, thermal::CoolingParams expected_model)
    : params_(params), expected_(expected_model)
{
}

bool
ThermalResidualDetector::observeMinute(Kilowatts metered_total,
                                       Celsius observed_supply, Rng &rng)
{
    // What the room should do if the metered power were the whole story.
    expected_.step(metered_total, minutes(1));
    const double expected_supply = expected_.supplyTemperature().value();
    const double measured =
        observed_supply.value() + rng.normal(0.0, params_.sensorNoise);
    const double residual = measured - expected_supply;

    cusum_ = std::max(0.0, cusum_ + residual - params_.slack);
    ++minutesObserved_;
    if (!alarmed_ && cusum_ > params_.threshold) {
        alarmed_ = true;
        alarmLatency_ = minutesObserved_;
    }
    return alarmed_;
}

void
ThermalResidualDetector::reset()
{
    cusum_ = 0.0;
    alarmed_ = false;
    minutesObserved_ = 0;
    alarmLatency_ = -1;
    expected_.reset();
}

AirflowAudit::AirflowAudit(Params params, std::size_t num_servers)
    : params_(params), ewma_(num_servers, 0.0)
{
    ECOLO_ASSERT(num_servers > 0, "audit needs at least one server");
}

void
AirflowAudit::observeMinute(const std::vector<Kilowatts> &true_heat,
                            const std::vector<Kilowatts> &metered_power,
                            Rng &rng)
{
    ECOLO_ASSERT(true_heat.size() == ewma_.size() &&
                 metered_power.size() == ewma_.size(),
                 "audit observation size mismatch");
    for (std::size_t s = 0; s < ewma_.size(); ++s) {
        const double measured_heat =
            true_heat[s].value() *
            (1.0 + rng.normal(0.0, params_.measurementNoise));
        double excess = measured_heat - metered_power[s].value();
        if (excess < params_.excessThresholdKw)
            excess = 0.0;
        ewma_[s] = (1.0 - params_.ewmaAlpha) * ewma_[s] +
                   params_.ewmaAlpha * excess;
    }
}

std::vector<std::size_t>
AirflowAudit::flaggedServers() const
{
    std::vector<std::size_t> flagged;
    for (std::size_t s = 0; s < ewma_.size(); ++s)
        if (ewma_[s] > params_.flagThresholdKw)
            flagged.push_back(s);
    return flagged;
}

double
AirflowAudit::excessEwma(std::size_t server) const
{
    return ewma_.at(server);
}

void
AirflowAudit::reset()
{
    std::fill(ewma_.begin(), ewma_.end(), 0.0);
}

SlaMonitor::SlaMonitor(Params params)
    : params_(params), window_(params.windowMinutes, false)
{
    ECOLO_ASSERT(params_.windowMinutes > 0, "empty SLA window");
    ECOLO_ASSERT(params_.slaBudget > 0.0 && params_.slaBudget < 1.0,
                 "SLA budget out of (0,1)");
}

bool
SlaMonitor::observeMinute(Celsius inlet)
{
    const bool violation = inlet > params_.slaTemperature;
    if (filled_ == window_.size()) {
        if (window_[head_])
            --violationsInWindow_;
    } else {
        ++filled_;
    }
    window_[head_] = violation;
    if (violation)
        ++violationsInWindow_;
    head_ = (head_ + 1) % window_.size();

    ++minutesObserved_;
    const double rate = windowViolationRate();
    // Require at least a day of data before alarming to avoid cold-start
    // false positives.
    if (!alarmed_ && filled_ >= 24 * 60 &&
        rate > params_.slaBudget * params_.alarmFactor) {
        alarmed_ = true;
        alarmLatency_ = minutesObserved_;
    }
    return alarmed_;
}

double
SlaMonitor::windowViolationRate() const
{
    if (filled_ == 0)
        return 0.0;
    return static_cast<double>(violationsInWindow_) /
           static_cast<double>(filled_);
}

void
SlaMonitor::reset()
{
    std::fill(window_.begin(), window_.end(), false);
    head_ = 0;
    filled_ = 0;
    violationsInWindow_ = 0;
    alarmed_ = false;
    minutesObserved_ = 0;
    alarmLatency_ = -1;
}

ThermalCameraAudit::ThermalCameraAudit(Params params,
                                       std::size_t num_servers)
    : params_(params), ewma_(num_servers, 0.0)
{
    ECOLO_ASSERT(num_servers > 0, "audit needs at least one server");
    ECOLO_ASSERT(params_.serverAirflowWPerK > 0.0,
                 "server airflow must be positive");
}

void
ThermalCameraAudit::observeMinute(const std::vector<Celsius> &outlet_temps,
                                  const std::vector<Celsius> &inlet_temps,
                                  const std::vector<Kilowatts> &metered_power,
                                  Rng &rng)
{
    ECOLO_ASSERT(outlet_temps.size() == ewma_.size() &&
                 inlet_temps.size() == ewma_.size() &&
                 metered_power.size() == ewma_.size(),
                 "camera observation size mismatch");
    for (std::size_t s = 0; s < ewma_.size(); ++s) {
        // Outlet the metered power would explain.
        const double expected_rise = metered_power[s].value() * 1000.0 /
                                     params_.serverAirflowWPerK;
        const double seen_rise =
            (outlet_temps[s] - inlet_temps[s]).value() +
            rng.normal(0.0, params_.readingNoise);
        double excess = seen_rise - expected_rise;
        if (excess < params_.excessThresholdC)
            excess = 0.0;
        ewma_[s] = (1.0 - params_.ewmaAlpha) * ewma_[s] +
                   params_.ewmaAlpha * excess;
    }
}

std::vector<std::size_t>
ThermalCameraAudit::flaggedServers() const
{
    std::vector<std::size_t> flagged;
    for (std::size_t s = 0; s < ewma_.size(); ++s)
        if (ewma_[s] > params_.flagThresholdC)
            flagged.push_back(s);
    return flagged;
}

double
ThermalCameraAudit::excessEwma(std::size_t server) const
{
    return ewma_.at(server);
}

void
ThermalCameraAudit::reset()
{
    std::fill(ewma_.begin(), ewma_.end(), 0.0);
}

double
MoveInInspection::detectionProbability() const
{
    const double e = std::clamp(effort, 0.0, 1.0);
    // Saturating curve: modest effort already catches most integrated
    // batteries (they are visible in the PSU bay), diminishing returns
    // after that.
    return 1.0 - std::exp(-3.0 * e);
}

bool
MoveInInspection::catchesBattery(Rng &rng) const
{
    return rng.bernoulli(detectionProbability());
}

} // namespace ecolo::defense
