#include "defense/suite.hh"

#include <sstream>

#include "util/logging.hh"

namespace ecolo::defense {

DefenseSuite::DefenseSuite(Params params,
                           const core::SimulationConfig &config)
    : attackerServers_(config.attackerNumServers),
      residual_(params.residual, config.cooling),
      audit_(params.airflow, config.numServers()),
      sla_(params.sla),
      rng_(params.seed),
      everFlagged_(config.numServers(), false)
{
}

void
DefenseSuite::attach(core::Simulation &sim)
{
    sim.setMinuteCallback([this, &sim](const core::MinuteRecord &record) {
        observeMinute(sim, record);
    });
}

void
DefenseSuite::observeMinute(const core::Simulation &sim,
                            const core::MinuteRecord &record)
{
    residual_.observeMinute(record.meteredTotal, record.supply, rng_);
    sla_.observeMinute(record.maxInlet);
    audit_.observeMinute(sim.lastServerHeat(), sim.lastServerMetered(),
                         rng_);
    for (std::size_t s : audit_.flaggedServers())
        everFlagged_.at(s) = true;
}

DefenseReport
DefenseSuite::report() const
{
    DefenseReport report;
    report.residualAlarmed = residual_.alarmed();
    report.residualLatencyMinutes = residual_.alarmLatencyMinutes();
    report.slaAlarmed = sla_.alarmed();
    report.slaLatencyMinutes = sla_.alarmLatencyMinutes();

    bool any_benign_flagged = false;
    for (std::size_t s = 0; s < everFlagged_.size(); ++s) {
        if (everFlagged_[s]) {
            report.flaggedServers.push_back(s);
            if (s >= attackerServers_)
                any_benign_flagged = true;
        }
    }
    report.pinpointExact =
        !report.flaggedServers.empty() && !any_benign_flagged;

    std::ostringstream verdict;
    if (!report.residualAlarmed && !report.slaAlarmed &&
        report.flaggedServers.empty()) {
        verdict << "No behind-the-meter activity detected.";
    } else {
        verdict << "Thermal attack indicators:";
        if (report.residualAlarmed) {
            verdict << " residual alarm after "
                    << report.residualLatencyMinutes << " min;";
        }
        if (report.slaAlarmed) {
            verdict << " SLA statistics alarm after "
                    << report.slaLatencyMinutes << " min;";
        }
        if (!report.flaggedServers.empty()) {
            verdict << " airflow audit flagged "
                    << report.flaggedServers.size() << " server(s)"
                    << (report.pinpointExact
                            ? " (all attacker-owned -- evict)"
                            : " (includes benign servers -- inspect)");
        }
    }
    report.verdict = verdict.str();
    return report;
}

} // namespace ecolo::defense
