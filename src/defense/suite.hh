/**
 * @file
 * DefenseSuite: the operator's full Section-VII monitoring stack bundled
 * into one object that attaches to a running Simulation.
 *
 * Wires the thermal-residual CUSUM detector, the per-server airflow
 * audit, and the SLA statistics monitor to the engine's per-minute
 * records, and produces a consolidated incident report (what alarmed,
 * when, and which servers were pinpointed).
 */

#ifndef ECOLO_DEFENSE_SUITE_HH
#define ECOLO_DEFENSE_SUITE_HH

#include <string>
#include <vector>

#include "core/engine.hh"
#include "defense/detectors.hh"

namespace ecolo::defense {

/** Consolidated outcome of a monitored run. */
struct DefenseReport
{
    bool residualAlarmed = false;
    long residualLatencyMinutes = -1;
    bool slaAlarmed = false;
    long slaLatencyMinutes = -1;
    /** Servers the airflow audit ever flagged. */
    std::vector<std::size_t> flaggedServers;
    /** True if every flagged server belongs to the attacker. */
    bool pinpointExact = false;
    /** Human-readable one-paragraph verdict. */
    std::string verdict;
};

/** The bundled monitoring stack. */
class DefenseSuite
{
  public:
    struct Params
    {
        ThermalResidualDetector::Params residual{};
        AirflowAudit::Params airflow{};
        SlaMonitor::Params sla{};
        std::uint64_t seed = 97;
    };

    /**
     * Build a suite sized for the given configuration. The suite's room
     * replica uses the same cooling parameters the site advertises.
     */
    DefenseSuite(Params params, const core::SimulationConfig &config);

    /**
     * Install the suite's observer on a simulation. Replaces any existing
     * minute callback; to combine with your own observer, call
     * observeMinute from it manually instead.
     */
    void attach(core::Simulation &sim);

    /** Feed one minute manually (for custom callback arrangements). */
    void observeMinute(const core::Simulation &sim,
                       const core::MinuteRecord &record);

    /** Consolidated report for everything observed so far. */
    DefenseReport report() const;

    const ThermalResidualDetector &residualDetector() const
    { return residual_; }
    const AirflowAudit &airflowAudit() const { return audit_; }
    const SlaMonitor &slaMonitor() const { return sla_; }

  private:
    std::size_t attackerServers_;
    ThermalResidualDetector residual_;
    AirflowAudit audit_;
    SlaMonitor sla_;
    Rng rng_;
    std::vector<bool> everFlagged_;
};

} // namespace ecolo::defense

#endif // ECOLO_DEFENSE_SUITE_HH
