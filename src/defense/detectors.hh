/**
 * @file
 * Operator-side defenses (Section VII of the paper).
 *
 * Detection:
 *  - ThermalResidualDetector: cross-checks what the thermal environment
 *    *should* look like given the metered power against what the sensors
 *    report; behind-the-meter heat creates a persistent positive residual
 *    that a CUSUM statistic accumulates into an alarm.
 *  - AirflowAudit: per-server outlet airflow + temperature metering
 *    estimates each server's true heat output; a server whose heat
 *    persistently exceeds its metered power is pinpointed as the attacker.
 *  - SlaMonitor: tracks the long-term temperature SLA (e.g., inlet below
 *    the set point 99% of the time); an attacker hiding behind the
 *    occasional-emergency statistics is exposed when the violation rate
 *    becomes statistically inconsistent with the no-attack baseline.
 *
 * Prevention:
 *  - MoveInInspection: probabilistic model of catching built-in batteries
 *    during tenant onboarding.
 *  - Jamming and extra cooling capacity are knobs on the side-channel and
 *    cooling subsystems respectively; see SideChannelParams::jammingNoiseVolts
 *    and CoolingParams::capacity.
 */

#ifndef ECOLO_DEFENSE_DETECTORS_HH
#define ECOLO_DEFENSE_DETECTORS_HH

#include <cstddef>
#include <vector>

#include "thermal/cooling.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace ecolo::defense {

/** CUSUM detector on the metered-power-vs-temperature residual. */
class ThermalResidualDetector
{
  public:
    struct Params
    {
        /** Residual slack absorbed before accumulating (deg C). */
        double slack = 0.3;
        /** CUSUM alarm threshold (deg C-minutes of excess residual). */
        double threshold = 3.0;
        /** Sensor noise on the observed supply temperature (deg C rms). */
        double sensorNoise = 0.15;
    };

    /**
     * @param params detector tuning
     * @param expected_model a replica of the room model the operator runs
     *        on *metered* power (same CoolingParams as the real room)
     */
    ThermalResidualDetector(Params params,
                            thermal::CoolingParams expected_model);

    /**
     * Feed one minute of observations.
     * @param metered_total total metered power this minute
     * @param observed_supply true supply temperature (sensor noise added
     *        internally)
     * @return true if the alarm is raised this minute
     */
    bool observeMinute(Kilowatts metered_total, Celsius observed_supply,
                       Rng &rng);

    bool alarmed() const { return alarmed_; }
    double cusum() const { return cusum_; }
    /** Minutes from first observation to the alarm; -1 if never. */
    long alarmLatencyMinutes() const { return alarmLatency_; }

    void reset();

  private:
    Params params_;
    thermal::CoolingSystem expected_;
    double cusum_ = 0.0;
    bool alarmed_ = false;
    long minutesObserved_ = 0;
    long alarmLatency_ = -1;
};

/** Per-server heat audit via outlet airflow metering. */
class AirflowAudit
{
  public:
    struct Params
    {
        /** Relative error of the airflow-based heat measurement. */
        double measurementNoise = 0.05;
        /** Excess heat (kW) over metered power that raises suspicion. */
        double excessThresholdKw = 0.05;
        /** EWMA smoothing factor for per-server excess. */
        double ewmaAlpha = 0.2;
        /** EWMA level at which a server is flagged (kW). */
        double flagThresholdKw = 0.1;
    };

    AirflowAudit(Params params, std::size_t num_servers);

    /**
     * Feed one minute of per-server true heat and metered power.
     * Measurement noise is applied internally.
     */
    void observeMinute(const std::vector<Kilowatts> &true_heat,
                       const std::vector<Kilowatts> &metered_power,
                       Rng &rng);

    /** Servers currently flagged as emitting behind-the-meter heat. */
    std::vector<std::size_t> flaggedServers() const;

    double excessEwma(std::size_t server) const;

    void reset();

  private:
    Params params_;
    std::vector<double> ewma_;
};

/** Long-term temperature-SLA statistics monitor. */
class SlaMonitor
{
  public:
    struct Params
    {
        Celsius slaTemperature{27.5};  //!< "conditioned below" level
        double slaBudget = 0.01;       //!< allowed violation fraction
        std::size_t windowMinutes = 7 * 24 * 60; //!< sliding window
        /** Alarm when the windowed violation rate exceeds budget * this. */
        double alarmFactor = 2.0;
    };

    explicit SlaMonitor(Params params);

    /** Feed one minute's (max) inlet temperature; returns alarm state. */
    bool observeMinute(Celsius inlet);

    double windowViolationRate() const;
    bool alarmed() const { return alarmed_; }
    long alarmLatencyMinutes() const { return alarmLatency_; }

    void reset();

  private:
    Params params_;
    std::vector<bool> window_;
    std::size_t head_ = 0;
    std::size_t filled_ = 0;
    std::size_t violationsInWindow_ = 0;
    bool alarmed_ = false;
    long minutesObserved_ = 0;
    long alarmLatency_ = -1;
};

/**
 * Thermal-camera (or microphone-array) audit: Section VII's alternative
 * to airflow meters for pinpointing the attacker. A camera reads each
 * server's *outlet* temperature; a server whose outlet runs persistently
 * hotter than its metered power explains is flagged. Less direct than
 * the airflow audit (outlet temperature also depends on fan speed, which
 * we model as measurement noise), but needs no per-server flow sensors.
 */
class ThermalCameraAudit
{
  public:
    struct Params
    {
        /** Per-server fan airflow in watts per kelvin (m_dot * c_p). */
        double serverAirflowWPerK = 15.0;
        /** Camera + fan-speed uncertainty on outlet readings (deg C). */
        double readingNoise = 1.5;
        /** Outlet excess over expectation that raises suspicion (deg C). */
        double excessThresholdC = 3.0;
        /** EWMA smoothing factor. */
        double ewmaAlpha = 0.2;
        /** EWMA level at which a server is flagged (deg C). */
        double flagThresholdC = 5.0;
    };

    ThermalCameraAudit(Params params, std::size_t num_servers);

    /**
     * Feed one minute of observations.
     * @param outlet_temps what the camera sees per server
     * @param inlet_temps per-server inlet temperatures (known from the
     *        conditioned supply)
     * @param metered_power per-server metered power
     */
    void observeMinute(const std::vector<Celsius> &outlet_temps,
                       const std::vector<Celsius> &inlet_temps,
                       const std::vector<Kilowatts> &metered_power,
                       Rng &rng);

    /** Servers currently flagged as running hotter than they meter. */
    std::vector<std::size_t> flaggedServers() const;

    double excessEwma(std::size_t server) const;

    void reset();

  private:
    Params params_;
    std::vector<double> ewma_;
};

/** Move-in inspection policy: chance of catching built-in batteries. */
struct MoveInInspection
{
    /** Inspection thoroughness in [0, 1] (0 = none, 1 = exhaustive). */
    double effort = 0.5;
    /** Detection probability saturates with effort. */
    double detectionProbability() const;
    /** Roll the dice for one tenant's move-in. */
    bool catchesBattery(Rng &rng) const;
};

} // namespace ecolo::defense

#endif // ECOLO_DEFENSE_DETECTORS_HH
