/**
 * @file
 * Utilization and power time series at one-minute resolution.
 *
 * Tenant workloads are represented as utilization traces (fraction of the
 * tenant's compute capacity in use, in [0, 1]); the power subsystem maps
 * utilization to electrical power through a server power model. Keeping the
 * two separated mirrors the paper's methodology (request-level logs ->
 * utilization -> validated server power models -> power trace).
 */

#ifndef ECOLO_TRACE_UTILIZATION_TRACE_HH
#define ECOLO_TRACE_UTILIZATION_TRACE_HH

#include <cstddef>
#include <vector>

#include "util/sim_time.hh"
#include "util/units.hh"

namespace ecolo::trace {

/** Per-minute utilization series in [0, 1]. */
class UtilizationTrace
{
  public:
    UtilizationTrace() = default;
    explicit UtilizationTrace(std::vector<double> samples);

    /** Number of minutes covered. */
    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /**
     * Utilization at minute t. Indices beyond the end wrap around, so a
     * one-year trace can drive arbitrarily long simulations.
     */
    double at(MinuteIndex t) const;

    double &operator[](std::size_t i) { return samples_[i]; }
    double operator[](std::size_t i) const { return samples_[i]; }

    double mean() const;
    double peak() const;

    /** Multiply every sample by factor, clamping to [0, 1]. */
    void scale(double factor);

    /** Clamp all samples into [lo, hi]. */
    void clampAll(double lo, double hi);

    const std::vector<double> &samples() const { return samples_; }
    std::vector<double> &samples() { return samples_; }

  private:
    std::vector<double> samples_;
};

/** Per-minute power series in kilowatts (e.g., a tenant's metered power). */
class PowerTrace
{
  public:
    PowerTrace() = default;
    explicit PowerTrace(std::vector<Kilowatts> samples);

    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Power at minute t; wraps beyond the end like UtilizationTrace. */
    Kilowatts at(MinuteIndex t) const;

    Kilowatts &operator[](std::size_t i) { return samples_[i]; }
    Kilowatts operator[](std::size_t i) const { return samples_[i]; }

    Kilowatts mean() const;
    Kilowatts peak() const;

    /** Element-wise sum; traces must have equal length. */
    PowerTrace &operator+=(const PowerTrace &other);

    const std::vector<Kilowatts> &samples() const { return samples_; }

  private:
    std::vector<Kilowatts> samples_;
};

} // namespace ecolo::trace

#endif // ECOLO_TRACE_UTILIZATION_TRACE_HH
