/**
 * @file
 * Plain CSV serialization for traces so experiments can be checkpointed and
 * externally generated traces (one value per line, optional header) can be
 * fed into the simulator.
 */

#ifndef ECOLO_TRACE_TRACE_IO_HH
#define ECOLO_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/utilization_trace.hh"
#include "util/result.hh"

namespace ecolo::trace {

/** Write one utilization sample per line ("minute,utilization" rows). */
void writeCsv(std::ostream &os, const UtilizationTrace &trace);

/**
 * Read a utilization trace written by writeCsv (or any "index,value" /
 * bare-value CSV). Fails with a ParseError naming the source, the line
 * number, and the offending text. @param source_name appears in
 * diagnostics (file path, or "<stream>").
 */
util::Result<UtilizationTrace>
tryReadCsv(std::istream &is, const std::string &source_name = "<stream>");

/** File wrapper; IoError when the file cannot be opened. */
util::Result<UtilizationTrace> tryLoadTrace(const std::string &path);

/**
 * Legacy wrappers around the try* readers; ECOLO_FATAL on malformed
 * input or unreadable files.
 */
UtilizationTrace readCsv(std::istream &is);

/** Convenience file wrappers. */
void saveTrace(const std::string &path, const UtilizationTrace &trace);
UtilizationTrace loadTrace(const std::string &path);

} // namespace ecolo::trace

#endif // ECOLO_TRACE_TRACE_IO_HH
