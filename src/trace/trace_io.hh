/**
 * @file
 * Plain CSV serialization for traces so experiments can be checkpointed and
 * externally generated traces (one value per line, optional header) can be
 * fed into the simulator.
 */

#ifndef ECOLO_TRACE_TRACE_IO_HH
#define ECOLO_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/utilization_trace.hh"

namespace ecolo::trace {

/** Write one utilization sample per line ("minute,utilization" rows). */
void writeCsv(std::ostream &os, const UtilizationTrace &trace);

/**
 * Read a utilization trace written by writeCsv (or any "index,value" /
 * bare-value CSV). Throws via ECOLO_FATAL on malformed input.
 */
UtilizationTrace readCsv(std::istream &is);

/** Convenience file wrappers. */
void saveTrace(const std::string &path, const UtilizationTrace &trace);
UtilizationTrace loadTrace(const std::string &path);

} // namespace ecolo::trace

#endif // ECOLO_TRACE_TRACE_IO_HH
