#include "trace/utilization_trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ecolo::trace {

UtilizationTrace::UtilizationTrace(std::vector<double> samples)
    : samples_(std::move(samples))
{
    for (double s : samples_)
        ECOLO_ASSERT(s >= 0.0 && s <= 1.0 + 1e-9,
                     "utilization sample out of [0,1]: ", s);
}

double
UtilizationTrace::at(MinuteIndex t) const
{
    ECOLO_ASSERT(!samples_.empty(), "empty utilization trace");
    const auto n = static_cast<MinuteIndex>(samples_.size());
    MinuteIndex i = t % n;
    if (i < 0)
        i += n;
    return samples_[static_cast<std::size_t>(i)];
}

double
UtilizationTrace::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
UtilizationTrace::peak() const
{
    double best = 0.0;
    for (double s : samples_)
        best = std::max(best, s);
    return best;
}

void
UtilizationTrace::scale(double factor)
{
    for (double &s : samples_)
        s = std::clamp(s * factor, 0.0, 1.0);
}

void
UtilizationTrace::clampAll(double lo, double hi)
{
    for (double &s : samples_)
        s = std::clamp(s, lo, hi);
}

PowerTrace::PowerTrace(std::vector<Kilowatts> samples)
    : samples_(std::move(samples))
{
}

Kilowatts
PowerTrace::at(MinuteIndex t) const
{
    ECOLO_ASSERT(!samples_.empty(), "empty power trace");
    const auto n = static_cast<MinuteIndex>(samples_.size());
    MinuteIndex i = t % n;
    if (i < 0)
        i += n;
    return samples_[static_cast<std::size_t>(i)];
}

Kilowatts
PowerTrace::mean() const
{
    if (samples_.empty())
        return Kilowatts(0.0);
    Kilowatts sum(0.0);
    for (Kilowatts s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

Kilowatts
PowerTrace::peak() const
{
    Kilowatts best(0.0);
    for (Kilowatts s : samples_)
        best = std::max(best, s);
    return best;
}

PowerTrace &
PowerTrace::operator+=(const PowerTrace &other)
{
    ECOLO_ASSERT(size() == other.size(),
                 "summing traces of different lengths: ", size(), " vs ",
                 other.size());
    for (std::size_t i = 0; i < samples_.size(); ++i)
        samples_[i] += other.samples_[i];
    return *this;
}

} // namespace ecolo::trace
