#include "trace/generators.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/sim_time.hh"

namespace ecolo::trace {

namespace {

/**
 * Smooth daily shape: cosine bump centered on peak_hour with a 24-hour
 * period, in [0, 1] (0 at the antipodal hour, 1 at the peak).
 */
double
dailyShape(double hour, double peak_hour)
{
    const double phase = (hour - peak_hour) / 24.0 * 2.0 * M_PI;
    return 0.5 * (1.0 + std::cos(phase));
}

/** Poisson burst process: additive utilization bursts over the horizon. */
void
addBursts(std::vector<double> &samples, Rng &rng, double bursts_per_day,
          double magnitude_mean, double duration_mean)
{
    if (bursts_per_day <= 0.0)
        return;
    const double rate_per_minute =
        bursts_per_day / static_cast<double>(kMinutesPerDay);
    double t = rng.exponential(rate_per_minute);
    while (t < static_cast<double>(samples.size())) {
        const auto start = static_cast<std::size_t>(t);
        const double magnitude =
            rng.exponential(1.0 / std::max(magnitude_mean, 1e-9));
        const double duration =
            std::max(1.0, rng.exponential(1.0 / std::max(duration_mean,
                                                         1e-9)));
        const auto end = std::min(samples.size(),
                                  start + static_cast<std::size_t>(duration));
        for (std::size_t i = start; i < end; ++i) {
            // Triangular ramp up/down makes bursts look like real surges
            // rather than square pulses.
            const double pos = static_cast<double>(i - start) /
                               std::max(1.0, duration - 1.0);
            const double envelope = 1.0 - std::abs(2.0 * pos - 1.0);
            samples[i] += magnitude * (0.5 + 0.5 * envelope);
        }
        t += rng.exponential(rate_per_minute);
    }
}

} // namespace

UtilizationTrace
DiurnalTraceGenerator::generate(std::size_t num_minutes, Rng &rng) const
{
    ECOLO_ASSERT(num_minutes > 0, "cannot generate an empty trace");
    const Params &p = params_;
    std::vector<double> samples(num_minutes);

    double noise = 0.0;
    const double noise_innovation =
        p.noiseSigma * std::sqrt(std::max(0.0, 1.0 - p.noisePhi * p.noisePhi));
    for (std::size_t i = 0; i < num_minutes; ++i) {
        const auto t = static_cast<MinuteIndex>(i);
        const double hour = hourOfDay(t);
        double level = p.baseUtilization;
        level += p.diurnalAmplitude * dailyShape(hour, p.peakHour);
        level += p.secondaryAmplitude * dailyShape(hour, p.secondaryPeakHour);
        if (isWeekend(t))
            level *= p.weekendFactor;
        noise = p.noisePhi * noise + rng.normal(0.0, noise_innovation);
        samples[i] = level + noise;
    }

    addBursts(samples, rng, p.burstsPerDay, p.burstMagnitude,
              p.burstDurationMinutes);

    for (double &s : samples)
        s = std::clamp(s, 0.0, 1.0);
    return UtilizationTrace(std::move(samples));
}

UtilizationTrace
GoogleStyleTraceGenerator::generate(std::size_t num_minutes, Rng &rng) const
{
    ECOLO_ASSERT(num_minutes > 0, "cannot generate an empty trace");
    ECOLO_ASSERT(!params_.plateauLevels.empty(),
                 "need at least one plateau level");
    const Params &p = params_;
    std::vector<double> samples(num_minutes);

    std::size_t level_idx = rng.uniformInt(p.plateauLevels.size());
    double dwell_left = rng.exponential(1.0 / p.meanDwellMinutes);
    double plateau = p.plateauLevels[level_idx];
    double current = plateau;
    double noise = 0.0;
    const double noise_innovation =
        p.noiseSigma * std::sqrt(std::max(0.0, 1.0 - p.noisePhi * p.noisePhi));

    for (std::size_t i = 0; i < num_minutes; ++i) {
        if (dwell_left <= 0.0) {
            // Hop to a *different* plateau to create visible level shifts.
            std::size_t next = rng.uniformInt(p.plateauLevels.size());
            if (p.plateauLevels.size() > 1 && next == level_idx)
                next = (next + 1) % p.plateauLevels.size();
            level_idx = next;
            plateau = p.plateauLevels[level_idx];
            dwell_left = rng.exponential(1.0 / p.meanDwellMinutes);
        }
        dwell_left -= 1.0;

        // Exponential smoothing toward the plateau gives ~10-minute ramps
        // instead of instantaneous jumps.
        current += (plateau - current) * 0.15;

        const auto t = static_cast<MinuteIndex>(i);
        const double diurnal =
            p.diurnalAmplitude * (dailyShape(hourOfDay(t), p.peakHour) - 0.5);
        noise = p.noisePhi * noise + rng.normal(0.0, noise_innovation);
        samples[i] = current + diurnal + noise;
    }

    addBursts(samples, rng, p.burstsPerDay, p.burstMagnitude,
              p.burstDurationMinutes);

    for (double &s : samples)
        s = std::clamp(s, 0.0, 1.0);
    return UtilizationTrace(std::move(samples));
}

UtilizationTrace
RequestTraceGenerator::generate(std::size_t num_minutes, Rng &rng) const
{
    ECOLO_ASSERT(num_minutes > 0, "cannot generate an empty trace");
    ECOLO_ASSERT(params_.clusterCapacityRps > 0.0,
                 "cluster capacity must be positive");
    const Params &p = params_;
    std::vector<double> samples(num_minutes);

    // Flash-crowd schedule (start minute -> boost envelope).
    std::vector<std::pair<std::size_t, std::size_t>> crowds;
    if (p.flashCrowdsPerDay > 0.0) {
        const double rate = p.flashCrowdsPerDay /
                            static_cast<double>(kMinutesPerDay);
        double t = rng.exponential(rate);
        while (t < static_cast<double>(num_minutes)) {
            const auto start = static_cast<std::size_t>(t);
            crowds.emplace_back(
                start, std::min(num_minutes,
                                start + static_cast<std::size_t>(
                                            p.flashCrowdMinutes)));
            t += rng.exponential(rate);
        }
    }

    std::size_t crowd_idx = 0;
    for (std::size_t i = 0; i < num_minutes; ++i) {
        const auto t = static_cast<MinuteIndex>(i);
        // Diurnal request rate.
        const double shape = dailyShape(hourOfDay(t), p.peakHour);
        double rate = p.peakRequestsPerSecond *
                      (p.baseFraction + (1.0 - p.baseFraction) * shape);
        if (isWeekend(t))
            rate *= p.weekendFactor;
        // Flash crowds multiply the offered rate.
        while (crowd_idx < crowds.size() && i >= crowds[crowd_idx].second)
            ++crowd_idx;
        if (crowd_idx < crowds.size() && i >= crowds[crowd_idx].first)
            rate *= 1.0 + p.flashCrowdBoost;
        // Poisson shot noise: the minute's arrivals around rate*60.
        const double mean_arrivals = rate * 60.0;
        const double arrivals =
            static_cast<double>(rng.poisson(mean_arrivals));
        const double utilization =
            arrivals / (p.clusterCapacityRps * 60.0);
        samples[i] = std::clamp(utilization, 0.0, 1.0);
    }
    return UtilizationTrace(std::move(samples));
}

UtilizationTrace
ConstantTraceGenerator::generate(std::size_t num_minutes, Rng &rng) const
{
    (void)rng;
    ECOLO_ASSERT(num_minutes > 0, "cannot generate an empty trace");
    return UtilizationTrace(
        std::vector<double>(num_minutes, std::clamp(level_, 0.0, 1.0)));
}

UtilizationTrace
scaleToMeanUtilization(UtilizationTrace trace, double target_mean)
{
    ECOLO_ASSERT(target_mean > 0.0 && target_mean <= 1.0,
                 "target mean out of (0,1]: ", target_mean);
    ECOLO_ASSERT(!trace.empty(), "cannot scale an empty trace");
    ECOLO_ASSERT(trace.mean() > 0.0, "cannot scale an all-zero trace");

    // Multiplicative scaling followed by clamping shifts the achieved mean;
    // a few fixed-point refinements converge for any realistic trace.
    std::vector<double> base = trace.samples();
    double factor = target_mean / trace.mean();
    for (int iter = 0; iter < 20; ++iter) {
        double sum = 0.0;
        for (double s : base)
            sum += std::clamp(s * factor, 0.0, 1.0);
        const double mean = sum / static_cast<double>(base.size());
        if (std::abs(mean - target_mean) < 1e-4 * target_mean)
            break;
        factor *= target_mean / std::max(mean, 1e-12);
    }
    std::vector<double> scaled(base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        scaled[i] = std::clamp(base[i] * factor, 0.0, 1.0);
    return UtilizationTrace(std::move(scaled));
}

} // namespace ecolo::trace
