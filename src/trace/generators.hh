/**
 * @file
 * Synthetic year-long workload generators.
 *
 * The paper drives its evaluation with power traces synthesized from
 * Facebook/Baidu request-level logs (default trace, Fig. 6(b)) and from a
 * Google cluster trace (alternate trace, Fig. 13(a)). Those logs are
 * proprietary, so we reproduce their published structure instead:
 *
 *  - DiurnalTraceGenerator: strong day/night swing with an afternoon peak,
 *    an evening shoulder, weekday/weekend modulation, AR(1) short-term
 *    noise, and Poisson load bursts -- the Facebook/Baidu web-serving shape.
 *  - GoogleStyleTraceGenerator: plateau-dominated semi-Markov level shifts
 *    with a weaker diurnal component and heavier bursts -- the batch-plus-
 *    services cluster shape.
 *
 * Both emit per-minute *utilization* in [0, 1]; the power subsystem turns
 * utilization into kilowatts via a server power model.
 */

#ifndef ECOLO_TRACE_GENERATORS_HH
#define ECOLO_TRACE_GENERATORS_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "trace/utilization_trace.hh"
#include "util/rng.hh"

namespace ecolo::trace {

/** Interface for per-minute utilization generators. */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Produce a trace covering the given number of minutes. */
    virtual UtilizationTrace generate(std::size_t num_minutes,
                                      Rng &rng) const = 0;
};

/** Web-serving style diurnal generator (default/Facebook/Baidu-like). */
class DiurnalTraceGenerator : public TraceGenerator
{
  public:
    struct Params
    {
        double baseUtilization = 0.25;   //!< overnight floor
        double diurnalAmplitude = 0.55;  //!< day/night swing
        double peakHour = 14.0;          //!< afternoon peak (local time)
        double secondaryAmplitude = 0.08;//!< evening shoulder strength
        double secondaryPeakHour = 20.5; //!< evening shoulder time
        double weekendFactor = 0.85;     //!< weekend demand multiplier
        double noiseSigma = 0.025;       //!< AR(1) innovation stddev
        double noisePhi = 0.90;          //!< AR(1) coefficient
        double burstsPerDay = 4.0;       //!< Poisson burst arrival rate
        double burstMagnitude = 0.12;    //!< mean extra utilization per burst
        double burstDurationMinutes = 25.0; //!< mean burst length
    };

    DiurnalTraceGenerator() = default;
    explicit DiurnalTraceGenerator(Params params) : params_(params) {}

    UtilizationTrace generate(std::size_t num_minutes,
                              Rng &rng) const override;

    const Params &params() const { return params_; }

  private:
    Params params_;
};

/** Plateau/burst style generator (alternate/Google-cluster-like). */
class GoogleStyleTraceGenerator : public TraceGenerator
{
  public:
    struct Params
    {
        /** Candidate plateau utilization levels the trace hops between. */
        std::vector<double> plateauLevels{0.35, 0.55, 0.75, 0.95};
        double meanDwellMinutes = 180.0; //!< mean time at one plateau
        double diurnalAmplitude = 0.10;  //!< weak day/night component
        double peakHour = 15.0;
        double noiseSigma = 0.030;
        double noisePhi = 0.85;
        double burstsPerDay = 8.0;
        double burstMagnitude = 0.15;
        double burstDurationMinutes = 15.0;
    };

    GoogleStyleTraceGenerator() = default;
    explicit GoogleStyleTraceGenerator(Params params)
        : params_(std::move(params)) {}

    UtilizationTrace generate(std::size_t num_minutes,
                              Rng &rng) const override;

    const Params &params() const { return params_; }

  private:
    Params params_;
};

/**
 * Request-level generator: the paper's actual pipeline ("generate a
 * year-long synthetic power trace from request-level log using server
 * power models"). A diurnal Poisson request process drives an M/M/k-style
 * service cluster; utilization is offered load over service capacity.
 * Compared to DiurnalTraceGenerator the short-term structure is request
 * shot noise rather than AR(1) noise.
 */
class RequestTraceGenerator : public TraceGenerator
{
  public:
    struct Params
    {
        double peakRequestsPerSecond = 900.0; //!< diurnal peak
        double baseFraction = 0.35;     //!< overnight rate / peak rate
        double peakHour = 14.0;
        double weekendFactor = 0.85;
        /** Aggregate service capacity in requests/second at 100% util. */
        double clusterCapacityRps = 1000.0;
        /** Flash-crowd events per day (rate spikes). */
        double flashCrowdsPerDay = 1.0;
        double flashCrowdBoost = 0.35;  //!< fractional rate increase
        double flashCrowdMinutes = 30.0;
    };

    RequestTraceGenerator() = default;
    explicit RequestTraceGenerator(Params params) : params_(params) {}

    UtilizationTrace generate(std::size_t num_minutes,
                              Rng &rng) const override;

    const Params &params() const { return params_; }

  private:
    Params params_;
};

/** Constant-utilization generator (tests and controlled experiments). */
class ConstantTraceGenerator : public TraceGenerator
{
  public:
    explicit ConstantTraceGenerator(double level) : level_(level) {}

    UtilizationTrace generate(std::size_t num_minutes,
                              Rng &rng) const override;

  private:
    double level_;
};

/**
 * Rescale a utilization trace so its mean matches target_mean while staying
 * in [0, 1]. Clamping perturbs the mean, so the scale factor is refined
 * iteratively; the result is within ~0.1% of the target for realistic
 * traces.
 */
UtilizationTrace scaleToMeanUtilization(UtilizationTrace trace,
                                        double target_mean);

} // namespace ecolo::trace

#endif // ECOLO_TRACE_GENERATORS_HH
