#include "trace/trace_io.hh"

#include <algorithm>
#include <iomanip>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace ecolo::trace {

void
writeCsv(std::ostream &os, const UtilizationTrace &trace)
{
    os << std::setprecision(12);
    os << "minute,utilization\n";
    for (std::size_t i = 0; i < trace.size(); ++i)
        os << i << "," << trace[i] << "\n";
}

UtilizationTrace
readCsv(std::istream &is)
{
    std::vector<double> samples;
    std::string line;
    bool first = true;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        // Tolerate a header row on the first line.
        if (first && line.find_first_not_of(
                "0123456789.,-+eE \t") != std::string::npos) {
            first = false;
            continue;
        }
        first = false;
        const auto comma = line.rfind(',');
        const std::string value_str =
            comma == std::string::npos ? line : line.substr(comma + 1);
        try {
            const double v = std::stod(value_str);
            samples.push_back(std::clamp(v, 0.0, 1.0));
        } catch (const std::exception &) {
            ECOLO_FATAL("malformed trace line: '", line, "'");
        }
    }
    if (samples.empty())
        ECOLO_FATAL("trace file contained no samples");
    return UtilizationTrace(std::move(samples));
}

void
saveTrace(const std::string &path, const UtilizationTrace &trace)
{
    std::ofstream out(path);
    if (!out)
        ECOLO_FATAL("cannot open trace file for writing: ", path);
    writeCsv(out, trace);
}

UtilizationTrace
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ECOLO_FATAL("cannot open trace file: ", path);
    return readCsv(in);
}

} // namespace ecolo::trace
