#include "trace/trace_io.hh"

#include <algorithm>
#include <iomanip>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace ecolo::trace {

void
writeCsv(std::ostream &os, const UtilizationTrace &trace)
{
    os << std::setprecision(12);
    os << "minute,utilization\n";
    for (std::size_t i = 0; i < trace.size(); ++i)
        os << i << "," << trace[i] << "\n";
}

util::Result<UtilizationTrace>
tryReadCsv(std::istream &is, const std::string &source_name)
{
    std::vector<double> samples;
    std::string line;
    bool first = true;
    int line_number = 0;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty())
            continue;
        // Tolerate a header row on the first line.
        if (first && line.find_first_not_of(
                "0123456789.,-+eE \t") != std::string::npos) {
            first = false;
            continue;
        }
        first = false;
        const auto comma = line.rfind(',');
        const std::string value_str =
            comma == std::string::npos ? line : line.substr(comma + 1);
        try {
            const double v = std::stod(value_str);
            samples.push_back(std::clamp(v, 0.0, 1.0));
        } catch (const std::exception &) {
            return ECOLO_ERROR(util::ErrorCode::ParseError,
                               "malformed trace line: '", line, "' (",
                               source_name, ":", line_number, ")");
        }
    }
    if (samples.empty()) {
        return ECOLO_ERROR(util::ErrorCode::ParseError,
                           "trace file contained no samples: ",
                           source_name);
    }
    return UtilizationTrace(std::move(samples));
}

util::Result<UtilizationTrace>
tryLoadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "cannot open trace file: ", path);
    }
    return tryReadCsv(in, path);
}

UtilizationTrace
readCsv(std::istream &is)
{
    auto result = tryReadCsv(is);
    if (!result.ok())
        ECOLO_FATAL(result.error().message);
    return result.take();
}

void
saveTrace(const std::string &path, const UtilizationTrace &trace)
{
    std::ofstream out(path);
    if (!out)
        ECOLO_FATAL("cannot open trace file for writing: ", path);
    writeCsv(out, trace);
}

UtilizationTrace
loadTrace(const std::string &path)
{
    auto result = tryLoadTrace(path);
    if (!result.ok())
        ECOLO_FATAL(result.error().message);
    return result.take();
}

} // namespace ecolo::trace
