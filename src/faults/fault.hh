/**
 * @file
 * Fault taxonomy for the edge colocation.
 *
 * The paper's threat model concerns *attacker-induced* overheating, but a
 * colocation's emergency protocol also has to ride through mundane
 * component failures: CRAC compressors derate, sensors drop out or go
 * insane, batteries fade, servers die, and workload telemetry has gaps.
 * A FaultEvent is one such incident with a deterministic start minute,
 * duration, and magnitude; ActiveFaults is the per-slot aggregate the
 * engine consumes (overlapping events compose: factors multiply, flags
 * OR, counts take the maximum).
 */

#ifndef ECOLO_FAULTS_FAULT_HH
#define ECOLO_FAULTS_FAULT_HH

#include <cstddef>
#include <string>

#include "util/result.hh"
#include "util/sim_time.hh"

namespace ecolo::faults {

/** Every injectable fault class, grouped by the subsystem it degrades. */
enum class FaultKind
{
    // ---- thermal/cooling ----
    /** CRAC loses removal capacity (compressor stage failure, refrigerant
     * loss). magnitude = fraction of capacity lost, in [0, 1). */
    CracCapacityLoss,
    /** CRAC fan/airflow derating: the room recovers more slowly and loses
     * some capacity. magnitude = fraction of fan effectiveness lost. */
    CracFanDerate,

    // ---- sidechannel ----
    /** The attacker's DAQ produces no readings (dropout). */
    SideChannelDropout,
    /** Readings freeze at the value seen when the fault began. */
    SideChannelStuck,
    /** Readings come back as NaN (ADC fault, driver corruption). */
    SideChannelNan,

    // ---- battery ----
    /** Cell aging: usable capacity shrinks. magnitude = fraction lost. */
    BatteryFade,
    /** Battery-management-system cutout: no charging, no discharging. */
    BmsCutout,

    // ---- servers ----
    /** Hard failure of `count` benign servers (highest global indices
     * first): no heat, no metered power, no served load. */
    ServerFailure,

    // ---- trace ----
    /** Workload-trace gap: tenant utilization telemetry is missing, so
     * tenants hold the last sample seen before the gap. */
    TraceGap,
};

/** Number of distinct fault kinds (randomized campaigns cycle them). */
inline constexpr std::size_t kNumFaultKinds = 9;

const char *toString(FaultKind kind);

/** Parse a scenario-file fault name ("crac_capacity_loss", ...). */
util::Result<FaultKind> parseFaultKind(const std::string &name);

/** One timed incident. */
struct FaultEvent
{
    FaultKind kind = FaultKind::CracCapacityLoss;
    MinuteIndex start = 0;           //!< first affected minute
    MinuteIndex duration = 0;        //!< minutes; <= 0 means "forever"
    double magnitude = 0.0;          //!< kind-specific severity in [0, 1]
    std::size_t count = 0;           //!< servers affected (ServerFailure)

    bool activeAt(MinuteIndex t) const
    {
        return t >= start && (duration <= 0 || t < start + duration);
    }

    /** Structured validation (range checks per kind). */
    util::Result<void> validated() const;
};

/** Per-slot aggregate of every active fault, as the engine applies it. */
struct ActiveFaults
{
    // thermal/cooling
    double coolingCapacityFactor = 1.0; //!< multiplies effective capacity
    double coolingRecoveryFactor = 1.0; //!< multiplies pull-down rate

    // sidechannel
    bool sideChannelDropout = false;
    bool sideChannelStuck = false;
    bool sideChannelNan = false;

    // battery
    double batteryCapacityFactor = 1.0;
    bool bmsCutout = false;

    // servers
    std::size_t failedServers = 0;

    // trace
    bool traceGap = false;
    MinuteIndex traceGapStart = 0; //!< minute the earliest active gap began

    /** True when any fault is in force this slot. */
    bool any() const;
};

} // namespace ecolo::faults

#endif // ECOLO_FAULTS_FAULT_HH
