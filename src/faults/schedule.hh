/**
 * @file
 * FaultSchedule: a deterministic, seed-reproducible timeline of
 * FaultEvents.
 *
 * Two ways to build one: declaratively from scenario-file keys
 * (`fault.N.*`, see below), or synthetically via randomized(), which draws
 * a campaign of incidents from an explicitly seeded Rng so two runs with
 * the same parameters inject byte-identical fault timelines — the
 * reproducible failure scenarios DataCenterGym-style experiment substrates
 * need.
 *
 * Scenario keys (N = 0, 1, ... consecutive):
 *
 *   fault.N.type             crac_capacity_loss | crac_fan_derate |
 *                            sidechannel_dropout | sidechannel_stuck |
 *                            sidechannel_nan | battery_fade | bms_cutout |
 *                            server_failure | trace_gap
 *   fault.N.startMinute      first affected minute (or fault.N.startDay)
 *   fault.N.durationMinutes  length; omit or <= 0 for "until the end"
 *   fault.N.magnitude        lost fraction in [0, 1) where applicable
 *   fault.N.servers          failed-server count (server_failure only)
 *
 *   fault.random.events          number of random incidents to draw
 *   fault.random.seed            RNG seed (default: 1)
 *   fault.random.horizonDays     window the incidents land in (default 365)
 *   fault.random.meanDurationMinutes  mean incident length (default 360)
 *   fault.random.maxMagnitude    severity cap in [0, 1) (default 0.5)
 */

#ifndef ECOLO_FAULTS_SCHEDULE_HH
#define ECOLO_FAULTS_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "faults/fault.hh"
#include "util/keyvalue.hh"
#include "util/result.hh"
#include "util/rng.hh"

namespace ecolo::faults {

/** Knobs of a randomized fault campaign. */
struct RandomCampaignParams
{
    std::size_t numEvents = 0;
    std::uint64_t seed = 1;
    MinuteIndex horizonMinutes = kMinutesPerYear;
    double meanDurationMinutes = 360.0;
    double maxMagnitude = 0.5;
    /** Servers affected by drawn server_failure events. */
    std::size_t failureServers = 2;
};

/** Ordered, immutable-after-build fault timeline. */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /** Append one event (validated). */
    util::Result<void> add(FaultEvent event);

    /**
     * Build from the `fault.*` keys of a parsed scenario document.
     * Consumes only fault-prefixed keys, so it composes with
     * applyScenario's unknown-key check.
     */
    static util::Result<FaultSchedule>
    fromKeyValue(const KeyValueConfig &kv);

    /** Seed-reproducible random campaign (kinds drawn uniformly). */
    static FaultSchedule randomized(const RandomCampaignParams &params);

    /** Aggregate every event active at minute t. */
    ActiveFaults activeAt(MinuteIndex t) const;

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Earliest start minute, or -1 when empty (fast-path gating). */
    MinuteIndex firstStart() const;

  private:
    std::vector<FaultEvent> events_;
};

} // namespace ecolo::faults

#endif // ECOLO_FAULTS_SCHEDULE_HH
