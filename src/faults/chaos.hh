/**
 * @file
 * Network chaos: a deterministic, seed-reproducible schedule of socket
 * faults for the serve tier, the transport-level sibling of
 * FaultSchedule.
 *
 * A ChaosSchedule is a list of rules; a ChaosInjector turns it into a
 * util::SocketFaultInjector that every TcpConnection consults once per
 * low-level send/recv chunk. Rules fire either on a fixed op period
 * (`everyOps`) or by a seeded Bernoulli draw (`probability`); both are
 * deterministic in the per-direction op sequence, so a single-threaded
 * client sees byte-identical fault placement across runs with the same
 * seed. An empty schedule builds an injector-free setup: the socket
 * paths are byte-identical no-ops.
 *
 * Scenario keys (N = 0, 1, ... consecutive):
 *
 *   chaos.seed           master RNG seed (default 1)
 *   chaos.N.kind         delay | short_op | drop | reset | truncate
 *   chaos.N.op           read | write | both (default both)
 *   chaos.N.probability  per-op Bernoulli chance in [0, 1]
 *   chaos.N.everyOps     fire every K-th eligible op (XOR probability)
 *   chaos.N.afterOps     ops to leave untouched first (default 0)
 *   chaos.N.maxTriggers  total firing budget; 0 = unlimited (default)
 *   chaos.N.delayMs      sleep length, kind=delay only (1..60000)
 *   chaos.N.maxBytes     chunk clamp, kind=short_op/truncate (default 1)
 */

#ifndef ECOLO_FAULTS_CHAOS_HH
#define ECOLO_FAULTS_CHAOS_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/keyvalue.hh"
#include "util/result.hh"
#include "util/rng.hh"
#include "util/socket.hh"

namespace ecolo::faults {

/** Transport-level fault kinds (mirror SocketFaultDecision actions). */
enum class ChaosKind : std::uint8_t
{
    Delay = 0,    //!< sleep before the chunk (slow-loris / slow peer)
    ShortOp = 1,  //!< clamp the chunk (forces partial-I/O retry loops)
    Drop = 2,     //!< close the socket silently (peer sees EOF)
    Reset = 3,    //!< abortive close (peer sees ECONNRESET)
    Truncate = 4, //!< send a prefix of the chunk, then close
};

/** Which socket direction a rule applies to. */
enum class ChaosOp : std::uint8_t
{
    Read = 0,
    Write = 1,
    Both = 2,
};

util::Result<ChaosKind> parseChaosKind(const std::string &name);
util::Result<ChaosOp> parseChaosOp(const std::string &name);
const char *toString(ChaosKind kind);
const char *toString(ChaosOp op);

/** One chaos rule; exactly one of probability/everyOps selects firing. */
struct ChaosRule
{
    ChaosKind kind = ChaosKind::Delay;
    ChaosOp op = ChaosOp::Both;
    double probability = -1.0;    //!< < 0 when everyOps drives firing
    std::int64_t everyOps = 0;    //!< 0 when probability drives firing
    std::int64_t afterOps = 0;    //!< eligible only after this many ops
    std::int64_t maxTriggers = 0; //!< 0 = unlimited
    int delayMs = 0;
    std::size_t maxBytes = 1;

    /** Range/consistency check with a structured error. */
    util::Result<void> validated() const;
};

/** An ordered, validated set of chaos rules plus the master seed. */
class ChaosSchedule
{
  public:
    ChaosSchedule() = default;

    util::Result<void> add(ChaosRule rule);

    /**
     * Build from the `chaos.*` keys of a parsed document. Consumes only
     * chaos-prefixed keys, so it composes with scenario parsing.
     */
    static util::Result<ChaosSchedule>
    fromKeyValue(const KeyValueConfig &kv);

    bool empty() const { return rules_.empty(); }
    std::size_t size() const { return rules_.size(); }
    const std::vector<ChaosRule> &rules() const { return rules_; }
    std::uint64_t seed() const { return seed_; }
    void setSeed(std::uint64_t seed) { seed_ = seed; }

  private:
    std::vector<ChaosRule> rules_;
    std::uint64_t seed_ = 1;
};

/**
 * Parse a standalone chaos config file and reject unconsumed (typo'd)
 * keys. An absent or empty file yields an empty schedule.
 */
util::Result<ChaosSchedule> loadChaosScheduleFile(const std::string &path);

/**
 * The SocketFaultInjector driving a ChaosSchedule. Thread-safe; rules
 * are evaluated in declaration order and the first firing rule with
 * trigger budget decides the op (probability draws always advance, so
 * the per-rule random streams depend only on the op sequence).
 */
class ChaosInjector : public util::SocketFaultInjector
{
  public:
    explicit ChaosInjector(ChaosSchedule schedule);

    util::SocketFaultDecision onRead(std::size_t want) override;
    util::SocketFaultDecision onWrite(std::size_t want) override;

    struct Stats
    {
        std::uint64_t readOps = 0;
        std::uint64_t writeOps = 0;
        std::uint64_t delays = 0;
        std::uint64_t shortOps = 0;
        std::uint64_t drops = 0;
        std::uint64_t resets = 0;
        std::uint64_t truncates = 0;

        std::uint64_t
        injected() const
        {
            return delays + shortOps + drops + resets + truncates;
        }
    };

    Stats stats() const;
    const ChaosSchedule &schedule() const { return schedule_; }

  private:
    util::SocketFaultDecision decide(ChaosOp direction, std::size_t want);

    struct RuleState
    {
        Rng rng;
        std::uint64_t triggers = 0;
    };

    ChaosSchedule schedule_;
    mutable std::mutex mutex_;
    std::vector<RuleState> states_;
    std::uint64_t readOps_ = 0;
    std::uint64_t writeOps_ = 0;
    Stats stats_;
};

/**
 * Build an injector and install it process-wide (convenience for the
 * daemon/harness). An empty schedule installs nothing and returns null
 * -- the byte-identical no-op path.
 */
std::shared_ptr<ChaosInjector>
installGlobalChaosInjector(const ChaosSchedule &schedule);

} // namespace ecolo::faults

#endif // ECOLO_FAULTS_CHAOS_HH
