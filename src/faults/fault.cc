#include "faults/fault.hh"

namespace ecolo::faults {

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CracCapacityLoss:
        return "crac_capacity_loss";
      case FaultKind::CracFanDerate:
        return "crac_fan_derate";
      case FaultKind::SideChannelDropout:
        return "sidechannel_dropout";
      case FaultKind::SideChannelStuck:
        return "sidechannel_stuck";
      case FaultKind::SideChannelNan:
        return "sidechannel_nan";
      case FaultKind::BatteryFade:
        return "battery_fade";
      case FaultKind::BmsCutout:
        return "bms_cutout";
      case FaultKind::ServerFailure:
        return "server_failure";
      case FaultKind::TraceGap:
        return "trace_gap";
    }
    return "unknown";
}

util::Result<FaultKind>
parseFaultKind(const std::string &name)
{
    static constexpr FaultKind kAll[] = {
        FaultKind::CracCapacityLoss, FaultKind::CracFanDerate,
        FaultKind::SideChannelDropout, FaultKind::SideChannelStuck,
        FaultKind::SideChannelNan, FaultKind::BatteryFade,
        FaultKind::BmsCutout, FaultKind::ServerFailure,
        FaultKind::TraceGap,
    };
    static_assert(sizeof(kAll) / sizeof(kAll[0]) == kNumFaultKinds);
    for (FaultKind kind : kAll) {
        if (name == toString(kind))
            return kind;
    }
    return ECOLO_ERROR(util::ErrorCode::ParseError,
                       "unknown fault kind '", name,
                       "' (expected crac_capacity_loss|crac_fan_derate|"
                       "sidechannel_dropout|sidechannel_stuck|"
                       "sidechannel_nan|battery_fade|bms_cutout|"
                       "server_failure|trace_gap)");
}

util::Result<void>
FaultEvent::validated() const
{
    if (start < 0) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError, "fault '",
                           toString(kind), "' has a negative start minute: ",
                           start);
    }
    switch (kind) {
      case FaultKind::CracCapacityLoss:
      case FaultKind::CracFanDerate:
      case FaultKind::BatteryFade:
        if (magnitude < 0.0 || magnitude >= 1.0) {
            return ECOLO_ERROR(util::ErrorCode::ValidationError, "fault '",
                               toString(kind),
                               "' magnitude must be a lost fraction in "
                               "[0, 1), got ",
                               magnitude);
        }
        break;
      case FaultKind::ServerFailure:
        if (count == 0) {
            return ECOLO_ERROR(util::ErrorCode::ValidationError,
                               "server_failure fault needs a positive "
                               "'servers' count");
        }
        break;
      case FaultKind::SideChannelDropout:
      case FaultKind::SideChannelStuck:
      case FaultKind::SideChannelNan:
      case FaultKind::BmsCutout:
      case FaultKind::TraceGap:
        break;
    }
    return {};
}

bool
ActiveFaults::any() const
{
    return coolingCapacityFactor != 1.0 || coolingRecoveryFactor != 1.0 ||
           sideChannelDropout || sideChannelStuck || sideChannelNan ||
           batteryCapacityFactor != 1.0 || bmsCutout ||
           failedServers > 0 || traceGap;
}

} // namespace ecolo::faults
