#include "faults/chaos.hh"

#include <algorithm>
#include <fstream>
#include <string>
#include <utility>

namespace ecolo::faults {

util::Result<ChaosKind>
parseChaosKind(const std::string &name)
{
    if (name == "delay")
        return ChaosKind::Delay;
    if (name == "short_op")
        return ChaosKind::ShortOp;
    if (name == "drop")
        return ChaosKind::Drop;
    if (name == "reset")
        return ChaosKind::Reset;
    if (name == "truncate")
        return ChaosKind::Truncate;
    return ECOLO_ERROR(util::ErrorCode::ValidationError,
                       "unknown chaos kind '", name,
                       "' (want delay|short_op|drop|reset|truncate)");
}

util::Result<ChaosOp>
parseChaosOp(const std::string &name)
{
    if (name == "read")
        return ChaosOp::Read;
    if (name == "write")
        return ChaosOp::Write;
    if (name == "both")
        return ChaosOp::Both;
    return ECOLO_ERROR(util::ErrorCode::ValidationError,
                       "unknown chaos op '", name,
                       "' (want read|write|both)");
}

const char *
toString(ChaosKind kind)
{
    switch (kind) {
    case ChaosKind::Delay: return "delay";
    case ChaosKind::ShortOp: return "short_op";
    case ChaosKind::Drop: return "drop";
    case ChaosKind::Reset: return "reset";
    case ChaosKind::Truncate: return "truncate";
    }
    return "unknown";
}

const char *
toString(ChaosOp op)
{
    switch (op) {
    case ChaosOp::Read: return "read";
    case ChaosOp::Write: return "write";
    case ChaosOp::Both: return "both";
    }
    return "unknown";
}

util::Result<void>
ChaosRule::validated() const
{
    const bool has_prob = probability >= 0.0;
    const bool has_period = everyOps > 0;
    if (has_prob == has_period) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "chaos rule needs exactly one of probability "
                           "and everyOps");
    }
    if (has_prob && probability > 1.0) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "chaos probability must be in [0, 1], got ",
                           probability);
    }
    if (afterOps < 0) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "chaos afterOps must be >= 0, got ", afterOps);
    }
    if (maxTriggers < 0) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "chaos maxTriggers must be >= 0, got ",
                           maxTriggers);
    }
    if (kind == ChaosKind::Delay && (delayMs < 1 || delayMs > 60000)) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "chaos delayMs must be in [1, 60000], got ",
                           delayMs);
    }
    if (kind != ChaosKind::Delay && delayMs != 0) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "chaos delayMs only applies to kind=delay");
    }
    if (maxBytes < 1) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "chaos maxBytes must be >= 1");
    }
    return {};
}

util::Result<void>
ChaosSchedule::add(ChaosRule rule)
{
    ECOLO_TRY_VOID(rule.validated());
    rules_.push_back(rule);
    return {};
}

util::Result<ChaosSchedule>
ChaosSchedule::fromKeyValue(const KeyValueConfig &kv)
{
    ChaosSchedule schedule;

    auto seed = kv.tryGetInt("chaos.seed");
    if (!seed.ok())
        return seed.error();
    if (seed.value())
        schedule.seed_ = static_cast<std::uint64_t>(*seed.value());

    for (std::size_t n = 0;; ++n) {
        const std::string prefix = "chaos." + std::to_string(n) + ".";
        const auto kind_name = kv.getString(prefix + "kind");
        if (!kind_name)
            break;

        ChaosRule rule;
        auto kind = parseChaosKind(*kind_name);
        if (!kind.ok()) {
            return ECOLO_ERROR(kind.error().code,
                               kv.locate(prefix + "kind"), ": ",
                               kind.error().message);
        }
        rule.kind = kind.value();

        if (const auto op_name = kv.getString(prefix + "op")) {
            auto op = parseChaosOp(*op_name);
            if (!op.ok()) {
                return ECOLO_ERROR(op.error().code,
                                   kv.locate(prefix + "op"), ": ",
                                   op.error().message);
            }
            rule.op = op.value();
        }

        auto probability = kv.tryGetDouble(prefix + "probability");
        if (!probability.ok())
            return probability.error();
        if (probability.value())
            rule.probability = *probability.value();

        auto every_ops = kv.tryGetInt(prefix + "everyOps");
        if (!every_ops.ok())
            return every_ops.error();
        if (every_ops.value())
            rule.everyOps = *every_ops.value();

        auto after_ops = kv.tryGetInt(prefix + "afterOps");
        if (!after_ops.ok())
            return after_ops.error();
        if (after_ops.value())
            rule.afterOps = *after_ops.value();

        auto max_triggers = kv.tryGetInt(prefix + "maxTriggers");
        if (!max_triggers.ok())
            return max_triggers.error();
        if (max_triggers.value())
            rule.maxTriggers = *max_triggers.value();

        auto delay_ms = kv.tryGetInt(prefix + "delayMs");
        if (!delay_ms.ok())
            return delay_ms.error();
        if (delay_ms.value())
            rule.delayMs = static_cast<int>(*delay_ms.value());

        auto max_bytes = kv.tryGetInt(prefix + "maxBytes");
        if (!max_bytes.ok())
            return max_bytes.error();
        if (max_bytes.value()) {
            rule.maxBytes = static_cast<std::size_t>(
                std::max(0L, *max_bytes.value()));
        }

        if (auto added = schedule.add(rule); !added.ok()) {
            return ECOLO_ERROR(added.error().code, kv.sourceName(),
                               ": chaos rule ", n, ": ",
                               added.error().message);
        }
    }

    return schedule;
}

util::Result<ChaosSchedule>
loadChaosScheduleFile(const std::string &path)
{
    auto kv = KeyValueConfig::tryParseFile(path);
    if (!kv.ok())
        return kv.error();
    auto schedule = ChaosSchedule::fromKeyValue(kv.value());
    if (!schedule.ok())
        return schedule.error();
    const auto leftover = kv.value().unconsumedKeys();
    if (!leftover.empty()) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError, path,
                           ": unknown chaos key '", *leftover.begin(),
                           "' (", leftover.size(), " unconsumed)");
    }
    return schedule;
}

// ---- ChaosInjector ----

ChaosInjector::ChaosInjector(ChaosSchedule schedule)
    : schedule_(std::move(schedule))
{
    states_.reserve(schedule_.size());
    // Fork one independent stream per rule off the master seed so rule
    // order and count are part of the deterministic identity.
    Rng master(schedule_.seed() ^ 0xc4a05c4a05ULL);
    for (std::size_t i = 0; i < schedule_.size(); ++i)
        states_.push_back(RuleState{master.fork(), 0});
}

util::SocketFaultDecision
ChaosInjector::onRead(std::size_t want)
{
    return decide(ChaosOp::Read, want);
}

util::SocketFaultDecision
ChaosInjector::onWrite(std::size_t want)
{
    return decide(ChaosOp::Write, want);
}

util::SocketFaultDecision
ChaosInjector::decide(ChaosOp direction, std::size_t want)
{
    (void)want;
    using Action = util::SocketFaultDecision::Action;
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t op_index = direction == ChaosOp::Read
                                       ? ++readOps_
                                       : ++writeOps_;
    if (direction == ChaosOp::Read)
        stats_.readOps = readOps_;
    else
        stats_.writeOps = writeOps_;

    util::SocketFaultDecision decision;
    const std::vector<ChaosRule> &rules = schedule_.rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        const ChaosRule &rule = rules[i];
        if (rule.op != ChaosOp::Both && rule.op != direction)
            continue;
        const std::int64_t eligible =
            static_cast<std::int64_t>(op_index) - rule.afterOps;
        if (eligible < 1)
            continue;
        bool fires = false;
        if (rule.everyOps > 0) {
            fires = eligible % rule.everyOps == 0;
        } else {
            // Always draw so the stream position depends only on the op
            // sequence, not on which rule won earlier ops.
            fires = states_[i].rng.bernoulli(rule.probability);
        }
        if (!fires || decision.action != Action::None)
            continue;
        if (rule.maxTriggers > 0 &&
            states_[i].triggers >=
                static_cast<std::uint64_t>(rule.maxTriggers)) {
            continue;
        }
        ++states_[i].triggers;
        switch (rule.kind) {
        case ChaosKind::Delay:
            decision.action = Action::Delay;
            decision.delayMs = rule.delayMs;
            ++stats_.delays;
            break;
        case ChaosKind::ShortOp:
            decision.action = Action::ShortOp;
            decision.maxBytes = rule.maxBytes;
            ++stats_.shortOps;
            break;
        case ChaosKind::Drop:
            decision.action = Action::Drop;
            ++stats_.drops;
            break;
        case ChaosKind::Reset:
            decision.action = Action::Reset;
            ++stats_.resets;
            break;
        case ChaosKind::Truncate:
            decision.action = Action::Truncate;
            decision.maxBytes = rule.maxBytes;
            ++stats_.truncates;
            break;
        }
    }
    return decision;
}

ChaosInjector::Stats
ChaosInjector::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::shared_ptr<ChaosInjector>
installGlobalChaosInjector(const ChaosSchedule &schedule)
{
    if (schedule.empty())
        return nullptr;
    auto injector = std::make_shared<ChaosInjector>(schedule);
    util::setGlobalSocketFaultInjector(injector);
    return injector;
}

} // namespace ecolo::faults
