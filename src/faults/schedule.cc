#include "faults/schedule.hh"

#include <algorithm>
#include <string>

namespace ecolo::faults {

util::Result<void>
FaultSchedule::add(FaultEvent event)
{
    ECOLO_TRY_VOID(event.validated());
    events_.push_back(event);
    return {};
}

util::Result<FaultSchedule>
FaultSchedule::fromKeyValue(const KeyValueConfig &kv)
{
    FaultSchedule schedule;

    for (std::size_t n = 0;; ++n) {
        const std::string prefix = "fault." + std::to_string(n) + ".";
        const auto type_name = kv.getString(prefix + "type");
        if (!type_name)
            break;

        FaultEvent event;
        auto kind = parseFaultKind(*type_name);
        if (!kind.ok()) {
            return ECOLO_ERROR(kind.error().code, kv.locate(prefix + "type"),
                               ": ", kind.error().message);
        }
        event.kind = kind.value();

        auto start_minute = kv.tryGetInt(prefix + "startMinute");
        if (!start_minute.ok())
            return start_minute.error();
        auto start_day = kv.tryGetInt(prefix + "startDay");
        if (!start_day.ok())
            return start_day.error();
        if (start_minute.value() && start_day.value()) {
            return ECOLO_ERROR(util::ErrorCode::ValidationError,
                               kv.sourceName(), ": fault ", n,
                               " sets both startMinute and startDay");
        }
        if (start_minute.value())
            event.start = *start_minute.value();
        else if (start_day.value())
            event.start = *start_day.value() * kMinutesPerDay;

        auto duration = kv.tryGetInt(prefix + "durationMinutes");
        if (!duration.ok())
            return duration.error();
        if (duration.value())
            event.duration = *duration.value();

        auto magnitude = kv.tryGetDouble(prefix + "magnitude");
        if (!magnitude.ok())
            return magnitude.error();
        if (magnitude.value())
            event.magnitude = *magnitude.value();

        auto servers = kv.tryGetInt(prefix + "servers");
        if (!servers.ok())
            return servers.error();
        if (servers.value())
            event.count = static_cast<std::size_t>(
                std::max(0L, *servers.value()));

        if (auto added = schedule.add(event); !added.ok()) {
            return ECOLO_ERROR(added.error().code, kv.sourceName(),
                               ": fault ", n, ": ", added.error().message);
        }
    }

    auto random_events = kv.tryGetInt("fault.random.events");
    if (!random_events.ok())
        return random_events.error();
    if (random_events.value() && *random_events.value() > 0) {
        RandomCampaignParams params;
        params.numEvents =
            static_cast<std::size_t>(*random_events.value());
        if (const auto v = kv.getInt("fault.random.seed"))
            params.seed = static_cast<std::uint64_t>(*v);
        if (const auto v = kv.getDouble("fault.random.horizonDays"))
            params.horizonMinutes = static_cast<MinuteIndex>(
                *v * static_cast<double>(kMinutesPerDay));
        if (const auto v =
                kv.getDouble("fault.random.meanDurationMinutes"))
            params.meanDurationMinutes = *v;
        if (const auto v = kv.getDouble("fault.random.maxMagnitude"))
            params.maxMagnitude = *v;
        if (params.maxMagnitude < 0.0 || params.maxMagnitude >= 1.0) {
            return ECOLO_ERROR(util::ErrorCode::ValidationError,
                               kv.sourceName(),
                               ": fault.random.maxMagnitude must be in "
                               "[0, 1), got ",
                               params.maxMagnitude);
        }
        const FaultSchedule random = randomized(params);
        for (const FaultEvent &event : random.events())
            ECOLO_TRY_VOID(schedule.add(event));
    }

    return schedule;
}

FaultSchedule
FaultSchedule::randomized(const RandomCampaignParams &params)
{
    FaultSchedule schedule;
    Rng rng(params.seed ^ 0x0fa017beefULL);
    for (std::size_t i = 0; i < params.numEvents; ++i) {
        FaultEvent event;
        static constexpr FaultKind kKinds[] = {
            FaultKind::CracCapacityLoss, FaultKind::CracFanDerate,
            FaultKind::SideChannelDropout, FaultKind::SideChannelStuck,
            FaultKind::SideChannelNan, FaultKind::BatteryFade,
            FaultKind::BmsCutout, FaultKind::ServerFailure,
            FaultKind::TraceGap,
        };
        event.kind = kKinds[rng.uniformInt(kNumFaultKinds)];
        event.start = static_cast<MinuteIndex>(rng.uniformInt(
            static_cast<std::uint64_t>(
                std::max<MinuteIndex>(1, params.horizonMinutes))));
        event.duration = std::max<MinuteIndex>(
            10, static_cast<MinuteIndex>(
                    rng.exponential(1.0 / params.meanDurationMinutes)));
        event.magnitude = rng.uniform(0.0, params.maxMagnitude);
        event.count = params.failureServers;
        // Drawn events are in-range by construction; add cannot fail.
        (void)schedule.add(event);
    }
    return schedule;
}

ActiveFaults
FaultSchedule::activeAt(MinuteIndex t) const
{
    ActiveFaults active;
    for (const FaultEvent &event : events_) {
        if (!event.activeAt(t))
            continue;
        switch (event.kind) {
          case FaultKind::CracCapacityLoss:
            active.coolingCapacityFactor *= 1.0 - event.magnitude;
            break;
          case FaultKind::CracFanDerate:
            active.coolingRecoveryFactor *= 1.0 - event.magnitude;
            // A derated fan also strands some coil capacity: roughly half
            // the lost airflow fraction stops moving heat to the coil.
            active.coolingCapacityFactor *= 1.0 - 0.5 * event.magnitude;
            break;
          case FaultKind::SideChannelDropout:
            active.sideChannelDropout = true;
            break;
          case FaultKind::SideChannelStuck:
            active.sideChannelStuck = true;
            break;
          case FaultKind::SideChannelNan:
            active.sideChannelNan = true;
            break;
          case FaultKind::BatteryFade:
            active.batteryCapacityFactor *= 1.0 - event.magnitude;
            break;
          case FaultKind::BmsCutout:
            active.bmsCutout = true;
            break;
          case FaultKind::ServerFailure:
            active.failedServers =
                std::max(active.failedServers, event.count);
            break;
          case FaultKind::TraceGap:
            if (!active.traceGap || event.start < active.traceGapStart)
                active.traceGapStart = event.start;
            active.traceGap = true;
            break;
        }
    }
    return active;
}

MinuteIndex
FaultSchedule::firstStart() const
{
    MinuteIndex first = -1;
    for (const FaultEvent &event : events_) {
        if (first < 0 || event.start < first)
            first = event.start;
    }
    return first;
}

} // namespace ecolo::faults
