/**
 * @file
 * The voltage side channel the attacker uses to time attacks.
 *
 * Following Islam & Ren (CCS'18), every server's power factor correction
 * (PFC) circuit superimposes high-frequency voltage ripples on the shared
 * PDU bus, with ripple amplitude strongly correlated with server load; the
 * IR drop along the shared cable adds a DC component proportional to total
 * current. An attacker sampling its own input voltage with an ADC can
 * therefore estimate the *aggregate* PDU load with a few-percent error
 * (the paper's Fig. 5(b)).
 *
 * The paper measured this channel with an NI DAQ on a real rack; we
 * synthesize the signal chain instead: ripple amplitude = baseline +
 * gain * total_load, corrupted by a one-time calibration bias, per-sample
 * ADC noise, and (optionally) operator jamming noise, then inverted by the
 * attacker's calibrated estimator. Parameters are chosen so the error
 * distribution matches Fig. 5(b) (most mass within about +/-2%).
 */

#ifndef ECOLO_SIDECHANNEL_VOLTAGE_CHANNEL_HH
#define ECOLO_SIDECHANNEL_VOLTAGE_CHANNEL_HH

#include <vector>

#include "util/rng.hh"
#include "util/state_io.hh"
#include "util/units.hh"

namespace ecolo::sidechannel {

/**
 * Injected sensor failure mode (faults::FaultSchedule). All faulted modes
 * return WITHOUT advancing the RNG, so a fault window shifts no downstream
 * random draws: the stream resumes exactly where it left off once the
 * sensor heals, keeping campaigns seed-reproducible.
 */
enum class SensorFaultMode
{
    Healthy,
    Dropout, //!< ADC reads nothing: estimate is NaN
    Stuck,   //!< DAQ buffer wedged: repeats the last healthy estimate
    Nan,     //!< corrupted samples: estimate is NaN
};

/** Signal-chain parameters of the voltage side channel. */
struct SideChannelParams
{
    double rippleGainVoltsPerKw = 0.020; //!< PFC ripple slope
    double baselineRippleVolts = 0.010;  //!< load-independent floor
    double adcNoiseVolts = 0.0022;       //!< DAQ/ADC noise, rms
    double calibrationErrorStd = 0.008;  //!< one-time gain bias, relative
    /** Extra rms noise injected by the operator's jammer (defense). */
    double jammingNoiseVolts = 0.0;
    /** Extra relative estimation noise (Fig. 12(b) sensitivity knob). */
    double extraRelativeNoise = 0.0;
    /**
     * Ripple samples the attacker averages per one-minute estimate. A
     * DAQ captures many ripple periods per slot, so per-sample noise is
     * averaged down by sqrt(N) in the per-minute estimate the policies
     * consume (the calibration bias is NOT averaged away).
     */
    int samplesPerEstimate = 4;
};

/**
 * One attacker-side channel instance. The calibration bias is drawn once at
 * construction (it models the attacker's imperfect offline calibration) and
 * every estimate then sees fresh measurement noise.
 */
class VoltageSideChannel
{
  public:
    VoltageSideChannel(SideChannelParams params, Rng rng);

    /**
     * Synthesize one voltage-ripple observation for the given true total
     * PDU load and return the attacker's load estimate.
     */
    Kilowatts estimateTotalLoad(Kilowatts true_total);

    /**
     * Average `samples` ripple observations of the same true load into
     * one per-minute estimate (the DAQ captures many ripple periods per
     * slot, so per-sample ADC noise shrinks by sqrt(N) while the
     * calibration bias persists). Draws exactly `samples` ADC-noise
     * normals -- plus `samples` extra-noise normals when
     * extraRelativeNoise > 0 -- so the RNG stream advances by a fixed,
     * documented amount per call. lastRelativeError() reflects the
     * averaged estimate.
     */
    Kilowatts estimateAveraged(Kilowatts true_total, int samples);

    /**
     * As above, but records the individual per-sample estimates (kW)
     * into `sample_scratch`, reusing the caller's buffer: the vector is
     * resized to `samples` (a no-op after the first minute, so the
     * steady-state slot loop stays allocation-free) instead of building
     * a temporary per call. Draws the same RNG normals as the two-arg
     * overload -- the two are bit-identical in their returned estimate
     * and stream position. Faulted modes record nothing (scratch is
     * cleared): a wedged DAQ produces no fresh samples.
     */
    Kilowatts estimateAveraged(Kilowatts true_total, int samples,
                               std::vector<double> &sample_scratch);

    /** Relative error of the most recent estimate (est - true) / true. */
    double lastRelativeError() const { return lastRelativeError_; }

    const SideChannelParams &params() const { return params_; }

    /** The realized calibration bias (tests / introspection). */
    double calibrationBias() const { return calibrationBias_; }

    /** Inject (or clear) a sensor fault; see SensorFaultMode. */
    void setFaultMode(SensorFaultMode mode) { faultMode_ = mode; }
    SensorFaultMode faultMode() const { return faultMode_; }

    /** Most recent healthy estimate (what a Stuck sensor repeats). */
    Kilowatts lastHealthyEstimate() const { return lastHealthyEstimate_; }

    /** Serialize / restore the mutable state (checkpointing). */
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);

  private:
    SideChannelParams params_;
    Rng rng_;
    double calibrationBias_;
    double lastRelativeError_ = 0.0;
    Kilowatts lastHealthyEstimate_{0.0};
    SensorFaultMode faultMode_ = SensorFaultMode::Healthy;
};

} // namespace ecolo::sidechannel

#endif // ECOLO_SIDECHANNEL_VOLTAGE_CHANNEL_HH
