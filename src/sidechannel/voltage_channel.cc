#include "sidechannel/voltage_channel.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace ecolo::sidechannel {

VoltageSideChannel::VoltageSideChannel(SideChannelParams params, Rng rng)
    : params_(params), rng_(rng),
      calibrationBias_(rng_.normal(0.0, params.calibrationErrorStd))
{
    ECOLO_ASSERT(params_.rippleGainVoltsPerKw > 0.0,
                 "ripple gain must be positive");
}

Kilowatts
VoltageSideChannel::estimateTotalLoad(Kilowatts true_total)
{
    ECOLO_ASSERT(true_total.value() >= 0.0, "negative true load");

    // Faulted modes return before any RNG draw (see SensorFaultMode).
    if (faultMode_ == SensorFaultMode::Dropout ||
        faultMode_ == SensorFaultMode::Nan) {
        lastRelativeError_ = std::numeric_limits<double>::quiet_NaN();
        return Kilowatts(std::numeric_limits<double>::quiet_NaN());
    }
    if (faultMode_ == SensorFaultMode::Stuck) {
        const double est = lastHealthyEstimate_.value();
        lastRelativeError_ =
            true_total.value() > 1e-9
                ? (est - true_total.value()) / true_total.value()
                : 0.0;
        return lastHealthyEstimate_;
    }

    // Forward path: the physical ripple amplitude on the bus. The
    // attacker's calibration error perturbs the gain it *believes* in.
    const double true_gain = params_.rippleGainVoltsPerKw;
    const double believed_gain = true_gain * (1.0 + calibrationBias_);

    const double noise_rms = std::sqrt(
        params_.adcNoiseVolts * params_.adcNoiseVolts +
        params_.jammingNoiseVolts * params_.jammingNoiseVolts);
    const double amplitude = params_.baselineRippleVolts +
                             true_gain * true_total.value() +
                             rng_.normal(0.0, noise_rms);

    // Inverse path: the attacker's estimator.
    double estimate =
        (amplitude - params_.baselineRippleVolts) / believed_gain;
    if (params_.extraRelativeNoise > 0.0) {
        estimate += true_total.value() *
                    rng_.normal(0.0, params_.extraRelativeNoise);
    }
    estimate = std::max(0.0, estimate);

    lastRelativeError_ =
        true_total.value() > 1e-9
            ? (estimate - true_total.value()) / true_total.value()
            : 0.0;
    lastHealthyEstimate_ = Kilowatts(estimate);
    return Kilowatts(estimate);
}

Kilowatts
VoltageSideChannel::estimateAveraged(Kilowatts true_total, int samples)
{
    // Faulted modes draw zero samples: a wedged DAQ produces no fresh
    // observations to average, and the RNG stream must not advance.
    if (faultMode_ != SensorFaultMode::Healthy)
        return estimateTotalLoad(true_total);

    samples = std::max(1, samples);
    double sum_kw = 0.0;
    for (int k = 0; k < samples; ++k)
        sum_kw += estimateTotalLoad(true_total).value();
    const double mean_kw = sum_kw / samples;
    lastRelativeError_ =
        true_total.value() > 1e-9
            ? (mean_kw - true_total.value()) / true_total.value()
            : 0.0;
    lastHealthyEstimate_ = Kilowatts(mean_kw);
    return Kilowatts(mean_kw);
}

Kilowatts
VoltageSideChannel::estimateAveraged(Kilowatts true_total, int samples,
                                     std::vector<double> &sample_scratch)
{
    if (faultMode_ != SensorFaultMode::Healthy) {
        sample_scratch.clear();
        return estimateTotalLoad(true_total);
    }

    samples = std::max(1, samples);
    // resize keeps capacity: after the first call this allocates nothing.
    sample_scratch.resize(static_cast<std::size_t>(samples));
    double sum_kw = 0.0;
    for (int k = 0; k < samples; ++k) {
        const double est = estimateTotalLoad(true_total).value();
        sample_scratch[static_cast<std::size_t>(k)] = est;
        sum_kw += est;
    }
    const double mean_kw = sum_kw / samples;
    lastRelativeError_ =
        true_total.value() > 1e-9
            ? (mean_kw - true_total.value()) / true_total.value()
            : 0.0;
    lastHealthyEstimate_ = Kilowatts(mean_kw);
    return Kilowatts(mean_kw);
}

void
VoltageSideChannel::saveState(util::StateWriter &writer) const
{
    writer.tag("VCHN");
    rng_.saveState(writer);
    writer.f64(calibrationBias_);
    writer.f64(lastRelativeError_);
    writer.f64(lastHealthyEstimate_.value());
    writer.u32(static_cast<std::uint32_t>(faultMode_));
}

void
VoltageSideChannel::loadState(util::StateReader &reader)
{
    reader.tag("VCHN");
    rng_.loadState(reader);
    calibrationBias_ = reader.f64();
    lastRelativeError_ = reader.f64();
    lastHealthyEstimate_ = Kilowatts(reader.f64());
    faultMode_ = static_cast<SensorFaultMode>(reader.u32());
}

} // namespace ecolo::sidechannel
