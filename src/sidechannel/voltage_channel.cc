#include "sidechannel/voltage_channel.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::sidechannel {

VoltageSideChannel::VoltageSideChannel(SideChannelParams params, Rng rng)
    : params_(params), rng_(rng),
      calibrationBias_(rng_.normal(0.0, params.calibrationErrorStd))
{
    ECOLO_ASSERT(params_.rippleGainVoltsPerKw > 0.0,
                 "ripple gain must be positive");
}

Kilowatts
VoltageSideChannel::estimateTotalLoad(Kilowatts true_total)
{
    ECOLO_ASSERT(true_total.value() >= 0.0, "negative true load");

    // Forward path: the physical ripple amplitude on the bus. The
    // attacker's calibration error perturbs the gain it *believes* in.
    const double true_gain = params_.rippleGainVoltsPerKw;
    const double believed_gain = true_gain * (1.0 + calibrationBias_);

    const double noise_rms = std::sqrt(
        params_.adcNoiseVolts * params_.adcNoiseVolts +
        params_.jammingNoiseVolts * params_.jammingNoiseVolts);
    const double amplitude = params_.baselineRippleVolts +
                             true_gain * true_total.value() +
                             rng_.normal(0.0, noise_rms);

    // Inverse path: the attacker's estimator.
    double estimate =
        (amplitude - params_.baselineRippleVolts) / believed_gain;
    if (params_.extraRelativeNoise > 0.0) {
        estimate += true_total.value() *
                    rng_.normal(0.0, params_.extraRelativeNoise);
    }
    estimate = std::max(0.0, estimate);

    lastRelativeError_ =
        true_total.value() > 1e-9
            ? (estimate - true_total.value()) / true_total.value()
            : 0.0;
    return Kilowatts(estimate);
}

Kilowatts
VoltageSideChannel::estimateAveraged(Kilowatts true_total, int samples)
{
    samples = std::max(1, samples);
    double sum_kw = 0.0;
    for (int k = 0; k < samples; ++k)
        sum_kw += estimateTotalLoad(true_total).value();
    const double mean_kw = sum_kw / samples;
    lastRelativeError_ =
        true_total.value() > 1e-9
            ? (mean_kw - true_total.value()) / true_total.value()
            : 0.0;
    return Kilowatts(mean_kw);
}

} // namespace ecolo::sidechannel
