/**
 * @file
 * The gem5-style stats side of the observability layer: nameable,
 * hierarchical simulation statistics collected into a Registry and dumped
 * as aligned text or machine-readable JSON.
 *
 * Four stat kinds cover what the simulator needs:
 *
 * - Counter:    monotonically increasing event count
 *               (`engine.emergency.declared`).
 * - Gauge:      last-written instantaneous value (`battery.soc`).
 * - ScalarStat: a computed result written once per run
 *               (`engine.emergency.fraction`).
 * - Histogram:  fixed log-scale (base-2) buckets plus count/sum/min/max,
 *               for durations and error magnitudes
 *               (`sidechannel.estimate_error_kw`, `profile.*_us`).
 *
 * Stats are registered by dotted hierarchical name; asking for the same
 * name and kind again returns the same instance (so independent modules
 * can share a stat), while re-registering a name under a different kind
 * is a programming error and panics. All mutators are thread-safe: fleet
 * campaigns update shared stats from pool workers.
 */

#ifndef ECOLO_TELEMETRY_STATS_HH
#define ECOLO_TELEMETRY_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/result.hh"

namespace ecolo::telemetry {

/** What a registry entry is; fixed at first registration. */
enum class StatKind
{
    Counter,
    Gauge,
    Scalar,
    Histogram,
};

const char *toString(StatKind kind);

/** Shared base so the registry can own a heterogeneous map. */
class StatBase
{
  public:
    StatBase(std::string name, StatKind kind)
        : name_(std::move(name)), kind_(kind)
    {}
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    StatKind kind() const { return kind_; }

    /** Append this stat's value(s) as a JSON object (no trailing comma). */
    virtual void appendJson(std::ostream &os) const = 0;
    /** One-line human-readable rendering for the text dump. */
    virtual std::string textValue() const = 0;
    /** Drop accumulated values (tests / repeated harness runs). */
    virtual void reset() = 0;

  private:
    std::string name_;
    StatKind kind_;
};

/** Monotonically increasing event count. */
class Counter : public StatBase
{
  public:
    explicit Counter(std::string name)
        : StatBase(std::move(name), StatKind::Counter)
    {}

    void inc(std::uint64_t n = 1)
    { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const
    { return value_.load(std::memory_order_relaxed); }

    void appendJson(std::ostream &os) const override;
    std::string textValue() const override;
    void reset() override { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value. */
class Gauge : public StatBase
{
  public:
    explicit Gauge(std::string name)
        : StatBase(std::move(name), StatKind::Gauge)
    {}

    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

    void appendJson(std::ostream &os) const override;
    std::string textValue() const override;
    void reset() override { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** A computed per-run result (set once when the run summarizes itself). */
class ScalarStat : public StatBase
{
  public:
    explicit ScalarStat(std::string name)
        : StatBase(std::move(name), StatKind::Scalar)
    {}

    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

    void appendJson(std::ostream &os) const override;
    std::string textValue() const override;
    void reset() override { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed log-scale histogram: bucket 0 holds [0, 1), bucket i >= 1 holds
 * [2^(i-1), 2^i), and the top bucket absorbs everything larger (including
 * +inf). The unit is the caller's choice (microseconds for the profiling
 * timers, watts for estimate error); base-2 buckets keep add() branch-free
 * and the dump compact over the 9-decade range a year-long run produces.
 *
 * NaN and negative samples are *rejected* (counted separately, never
 * binned): a NaN estimate error must not silently poison the sum.
 */
class TelemetryHistogram : public StatBase
{
  public:
    static constexpr std::size_t kNumBuckets = 64;

    explicit TelemetryHistogram(std::string name)
        : StatBase(std::move(name), StatKind::Histogram)
    {}

    void add(double v);

    /** Bucket index a value would land in (exposed for tests). */
    static std::size_t bucketIndex(double v);
    /** Inclusive lower bound of bucket i. */
    static double bucketLo(std::size_t i);
    /** Exclusive upper bound of bucket i (inf for the top bucket). */
    static double bucketHi(std::size_t i);

    std::uint64_t count() const
    { return count_.load(std::memory_order_relaxed); }
    std::uint64_t rejected() const
    { return rejected_.load(std::memory_order_relaxed); }
    std::uint64_t bucketCount(std::size_t i) const
    { return buckets_[i].load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const;
    double min() const;
    double max() const;

    void appendJson(std::ostream &os) const override;
    std::string textValue() const override;
    void reset() override;

  private:
    std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * The stats registry: dotted-name -> stat instance. Registration is
 * thread-safe and idempotent per (name, kind); returned references stay
 * valid for the registry's lifetime. Names must be non-empty sequences of
 * [A-Za-z0-9_-] segments separated by single dots.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    ScalarStat &scalar(const std::string &name);
    TelemetryHistogram &histogram(const std::string &name);

    /** Look up any stat by name; nullptr when absent. */
    const StatBase *find(const std::string &name) const;

    std::size_t size() const;

    /** True iff `name` is a legal dotted stat name. */
    static bool validName(const std::string &name);

    /** Aligned name/kind/value table, sorted by name. */
    void dumpText(std::ostream &os) const;
    /** One JSON object keyed by stat name, sorted, schema-versioned. */
    void dumpJson(std::ostream &os) const;
    /** dumpJson to a file (atomic enough for a run-end sink). */
    util::Result<void> writeJsonFile(const std::string &path) const;

    /** Reset every stat's value (names stay registered). */
    void resetValues();
    /** Drop every stat (invalidates outstanding references; tests only). */
    void clear();

  private:
    template <typename T>
    T &getOrCreate(const std::string &name, StatKind kind);

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<StatBase>> stats_;
};

} // namespace ecolo::telemetry

#endif // ECOLO_TELEMETRY_STATS_HH
