/**
 * @file
 * Structured event log: a bounded ring buffer of typed simulation events.
 *
 * Where the stats registry answers "how much / how often", the event log
 * answers "when and in what order": every protocol transition the paper's
 * analysis cares about (emergency onsets, capping windows, outages,
 * fault activations, degraded-mode tier changes, checkpoint traffic,
 * battery depletion) is recorded with its MinuteIndex and a short detail
 * string, and can be exported as JSONL for post-hoc timeline analysis of
 * any run.
 *
 * The buffer is bounded (default 64k events) so a pathological year-long
 * run cannot exhaust memory: once full, the oldest events are overwritten
 * and the drop count records how many were lost.
 */

#ifndef ECOLO_TELEMETRY_EVENTS_HH
#define ECOLO_TELEMETRY_EVENTS_HH

#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/result.hh"
#include "util/sim_time.hh"

namespace ecolo::telemetry {

/** Event taxonomy (see docs/observability.md for semantics). */
enum class EventKind
{
    EmergencyDeclared,  //!< operator entered Emergency; value = inlet C
    EmergencyCleared,   //!< capping window expired; value = inlet C
    CappingStart,       //!< per-server cap came into force; value = cap kW
    CappingEnd,         //!< cap lifted; value = cap kW that was in force
    Outage,             //!< PDU de-energized; value = inlet C
    OutageEnded,        //!< restart window expired
    FaultActivated,     //!< first minute with any fault in force
    FaultExpired,       //!< first minute with no fault in force again
    DegradedTierChange, //!< value = new tier (0 none .. 3 shedding)
    CheckpointSaved,    //!< value = checkpoint minute
    CheckpointRestored, //!< value = resume minute
    BatteryDepleted,    //!< SoC fell below one attack-minute; value = SoC
};

const char *toString(EventKind kind);

/** One timeline entry. */
struct Event
{
    MinuteIndex minute = 0;
    EventKind kind = EventKind::EmergencyDeclared;
    double value = 0.0;
    std::string detail; //!< short free-form context, may be empty
};

/** Bounded, thread-safe ring buffer of Events. */
class EventLog
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    explicit EventLog(std::size_t capacity = kDefaultCapacity);

    /** Append one event (oldest entry is overwritten when full). */
    void emit(MinuteIndex minute, EventKind kind, double value = 0.0,
              std::string detail = {});

    /** Events currently retained, oldest first. */
    std::vector<Event> snapshot() const;

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    /** Events overwritten because the buffer was full. */
    std::size_t dropped() const;

    /**
     * Replace the capacity and drop all retained events. Call before a
     * run, not during one.
     */
    void setCapacity(std::size_t capacity);

    void clear();

    /** One JSON object per line, oldest first. */
    void writeJsonl(std::ostream &os) const;
    util::Result<void> writeJsonlFile(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::size_t head_ = 0; //!< next write slot once the ring is full
    std::size_t dropped_ = 0;
    std::vector<Event> ring_;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace ecolo::telemetry

#endif // ECOLO_TELEMETRY_EVENTS_HH
