/**
 * @file
 * Process-wide telemetry facade: one stats Registry, one EventLog, one
 * TraceSession, and the master on/off switch the instrumented hot paths
 * key off.
 *
 * Cost contract (verified by the fault-free bit-identity tests):
 *
 * - Compile-time off (-DEDGETHERM_TELEMETRY=0): enabled() is constexpr
 *   false, so every instrumentation site dead-codes away entirely.
 * - Runtime off (the default): enabled() is one relaxed atomic load;
 *   no clocks are read, no locks taken, no allocations made.
 * - On: stats/events go through mutex- or atomic-protected sinks that
 *   never touch simulation state or RNG streams, so enabling telemetry
 *   cannot move a simulation by even one ULP.
 *
 * Telemetry state is deliberately excluded from checkpoints: a resumed
 * run re-observes from the resume point, and kill+resume stays
 * bit-identical whether or not telemetry was on.
 */

#ifndef ECOLO_TELEMETRY_TELEMETRY_HH
#define ECOLO_TELEMETRY_TELEMETRY_HH

#include <atomic>
#include <string>
#include <utility>

#include "telemetry/events.hh"
#include "telemetry/stats.hh"
#include "telemetry/trace.hh"

#ifndef EDGETHERM_TELEMETRY
#define EDGETHERM_TELEMETRY 1
#endif

namespace ecolo::telemetry {

/** True when the instrumentation is compiled in at all. */
inline constexpr bool kCompiledIn = EDGETHERM_TELEMETRY != 0;

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** The master switch every instrumentation site checks first. */
inline bool
enabled()
{
    if constexpr (!kCompiledIn)
        return false;
    else
        return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Turn collection on or off. Enabling also installs the ThreadPool task
 * hook (per-worker task timing); disabling removes it. With telemetry
 * compiled out this is a no-op and enabled() stays false.
 */
void setEnabled(bool on);

/** The process-wide stats registry. */
Registry &registry();
/** The process-wide structured event log. */
EventLog &events();
/** The process-wide Chrome-trace session (inactive until begin()). */
TraceSession &trace();

/** Emit an event iff telemetry is enabled (the usual call shape). */
inline void
emitEvent(MinuteIndex minute, EventKind kind, double value = 0.0,
          std::string detail = {})
{
    if (enabled())
        events().emit(minute, kind, value, std::move(detail));
}

/**
 * Disable collection and drop all registered stats, events, trace data
 * and thread registrations. Tests only: outstanding stat references from
 * before the reset dangle.
 */
void resetForTest();

} // namespace ecolo::telemetry

#endif // ECOLO_TELEMETRY_TELEMETRY_HH
