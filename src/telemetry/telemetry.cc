#include "telemetry/telemetry.hh"

#include "util/parallel.hh"

namespace ecolo::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

/**
 * ThreadPool task hook: attribute each completed parallelFor body to the
 * executing worker's trace track and the shared task histogram. Runs on
 * the worker thread; installed only while telemetry is enabled.
 */
void
poolTaskHook(std::size_t index,
             std::chrono::steady_clock::time_point start,
             std::chrono::steady_clock::time_point end)
{
    if (!enabled())
        return;
    const double us =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count() /
        1000.0;
    registry().histogram("profile.pool.task_us").add(us);
    TraceSession &session = trace();
    if (session.active()) {
        session.record("pool.task[" + std::to_string(index) + "]",
                       session.toUs(start),
                       session.toUs(end) - session.toUs(start));
    }
}

} // namespace

void
setEnabled(bool on)
{
    if constexpr (!kCompiledIn)
        return;
    detail::g_enabled.store(on, std::memory_order_relaxed);
    util::ThreadPool::setTaskHook(on ? &poolTaskHook : nullptr);
}

Registry &
registry()
{
    static Registry instance;
    return instance;
}

EventLog &
events()
{
    static EventLog instance;
    return instance;
}

TraceSession &
trace()
{
    static TraceSession instance;
    return instance;
}

void
resetForTest()
{
    setEnabled(false);
    registry().clear();
    events().clear();
    trace().clear();
}

} // namespace ecolo::telemetry
