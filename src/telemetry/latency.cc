#include "telemetry/latency.hh"

#include <algorithm>
#include <cmath>

#include "telemetry/stats.hh"

namespace ecolo::telemetry {

TailLatency::TailLatency(std::size_t sample_capacity)
    : sampleCapacity_(std::max<std::size_t>(1, sample_capacity)),
      buckets_(TelemetryHistogram::kNumBuckets, 0)
{
    samples_.reserve(std::min<std::size_t>(sampleCapacity_, 1024));
}

void
TailLatency::record(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::isnan(value) || value < 0.0) {
        ++rejected_;
        return;
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    if (samples_.size() < sampleCapacity_)
        samples_.push_back(value);
    ++buckets_[TelemetryHistogram::bucketIndex(value)];
}

std::uint64_t
TailLatency::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

void
TailLatency::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.clear();
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = rejected_ = 0;
    mean_ = m2_ = min_ = max_ = 0.0;
}

double
TailLatency::quantileLocked(double q) const
{
    // Log-bucket path: find the bucket holding the rank, interpolate
    // linearly inside it, clamped to the observed [min, max].
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (seen + buckets_[i] <= rank) {
            seen += buckets_[i];
            continue;
        }
        const double within = buckets_[i] <= 1
            ? 0.0
            : static_cast<double>(rank - seen) /
                  static_cast<double>(buckets_[i] - 1);
        const double lo =
            std::max(TelemetryHistogram::bucketLo(i), min_);
        const double hi = std::min(
            std::isinf(TelemetryHistogram::bucketHi(i))
                ? max_
                : TelemetryHistogram::bucketHi(i),
            max_);
        return lo + within * std::max(0.0, hi - lo);
    }
    return max_;
}

TailLatency::Snapshot
TailLatency::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot s;
    s.count = count_;
    s.rejected = rejected_;
    if (count_ == 0)
        return s;
    s.mean = mean_;
    s.jitter = std::sqrt(m2_ / static_cast<double>(count_));
    s.min = min_;
    s.max = max_;
    s.exact = samples_.size() == count_;
    if (s.exact) {
        std::vector<double> sorted(samples_);
        std::sort(sorted.begin(), sorted.end());
        const auto at = [&](double q) {
            const std::size_t idx = static_cast<std::size_t>(
                q * static_cast<double>(sorted.size() - 1) + 0.5);
            return sorted[std::min(idx, sorted.size() - 1)];
        };
        s.p50 = at(0.50);
        s.p95 = at(0.95);
        s.p99 = at(0.99);
    } else {
        s.p50 = quantileLocked(0.50);
        s.p95 = quantileLocked(0.95);
        s.p99 = quantileLocked(0.99);
    }
    return s;
}

} // namespace ecolo::telemetry
