/**
 * @file
 * Profiling hooks: RAII wall-clock spans recorded into the stats registry
 * and (optionally) into a Chrome trace-event JSON file.
 *
 * A TraceSpan times a phase of real work -- the per-minute thermal step,
 * a side-channel estimate, one CFD spike column, one campaign of a bench
 * batch, one thread-pool task -- and on destruction:
 *
 *  1. feeds the duration (microseconds) into the registry histogram
 *     `profile.<name>_us`, so even a metrics-only run gets a per-phase
 *     wall-clock profile; and
 *  2. when a TraceSession is active, appends a complete ("ph":"X")
 *     trace event on the calling thread's track, producing a file that
 *     loads directly in chrome://tracing or Perfetto.
 *
 * Threads get stable integer track ids on first use; ThreadPool workers
 * carry their pthread name ("edgetherm-N") into the trace via thread-name
 * metadata events. Everything is a no-op (two relaxed atomic loads) when
 * telemetry is disabled, and compiles out entirely with
 * EDGETHERM_TELEMETRY=0.
 */

#ifndef ECOLO_TELEMETRY_TRACE_HH
#define ECOLO_TELEMETRY_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/result.hh"

namespace ecolo::telemetry {

/** One completed span, timestamped in microseconds since session start. */
struct TraceEvent
{
    std::string name;
    std::int32_t tid = 0;
    std::uint64_t startUs = 0;
    std::uint64_t durationUs = 0;
};

/**
 * Collects TraceEvents and serializes them as Chrome trace-event JSON.
 * Inactive by default: spans only append events between begin() and the
 * final write, so year-long metrics runs pay nothing for the trace path.
 */
class TraceSession
{
  public:
    /** Start collecting; resets any previously collected events. */
    void begin();
    bool active() const
    { return active_.load(std::memory_order_relaxed); }
    /** Stop collecting (events are retained for writing). */
    void end();

    /** Microseconds since begin() on the session's steady clock. */
    std::uint64_t nowUs() const;
    /** Convert a steady-clock instant to microseconds since begin(). */
    std::uint64_t toUs(std::chrono::steady_clock::time_point t) const;

    /** Track id of the calling thread, assigning one on first use. */
    std::int32_t currentTid();

    /** Record a completed span ending "now". */
    void record(std::string name, std::uint64_t start_us,
                std::uint64_t duration_us);
    /** Record with explicit thread attribution (pool hook path). */
    void recordOnTid(std::string name, std::int32_t tid,
                     std::uint64_t start_us, std::uint64_t duration_us);

    std::size_t eventCount() const;

    /**
     * Full Chrome trace-event JSON: thread-name metadata first, then
     * every span, loadable in chrome://tracing or ui.perfetto.dev.
     */
    void writeChromeJson(std::ostream &os) const;
    util::Result<void> writeChromeJsonFile(const std::string &path) const;

    /** Drop all events and thread registrations. */
    void clear();

  private:
    std::atomic<bool> active_{false};
    std::atomic<std::uint64_t> generation_{0}; //!< invalidates cached tids
    std::chrono::steady_clock::time_point epoch_{};
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::vector<std::string> threadNames_; //!< index = tid
};

/**
 * RAII wall-clock span. Cheap to construct when telemetry is disabled;
 * see the file comment for the enabled-path behavior.
 */
class TraceSpan
{
  public:
    /**
     * Literal-name form: when telemetry is disabled nothing is copied, so
     * a span on a per-minute path costs one relaxed load and nothing else.
     */
    explicit TraceSpan(const char *name);
    /** Dynamic-name form (per-campaign labels etc.). */
    explicit TraceSpan(std::string name);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Finish early (idempotent; the destructor then does nothing). */
    void stop();

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_{};
    bool armed_ = false;
};

/** Alias matching the gem5-ish naming used around the codebase. */
using ScopedTimer = TraceSpan;

} // namespace ecolo::telemetry

#endif // ECOLO_TELEMETRY_TRACE_HH
