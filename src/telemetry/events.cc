#include "telemetry/events.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace ecolo::telemetry {

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::EmergencyDeclared:
        return "emergency_declared";
      case EventKind::EmergencyCleared:
        return "emergency_cleared";
      case EventKind::CappingStart:
        return "capping_start";
      case EventKind::CappingEnd:
        return "capping_end";
      case EventKind::Outage:
        return "outage";
      case EventKind::OutageEnded:
        return "outage_ended";
      case EventKind::FaultActivated:
        return "fault_activated";
      case EventKind::FaultExpired:
        return "fault_expired";
      case EventKind::DegradedTierChange:
        return "degraded_tier_change";
      case EventKind::CheckpointSaved:
        return "checkpoint_saved";
      case EventKind::CheckpointRestored:
        return "checkpoint_restored";
      case EventKind::BatteryDepleted:
        return "battery_depleted";
    }
    return "unknown";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity)
{
    ECOLO_ASSERT(capacity_ > 0, "event log needs a positive capacity");
}

void
EventLog::emit(MinuteIndex minute, EventKind kind, double value,
               std::string detail)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back(
            Event{minute, kind, value, std::move(detail)});
        head_ = ring_.size() % capacity_;
        return;
    }
    ring_[head_] = Event{minute, kind, value, std::move(detail)};
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

std::vector<Event>
EventLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Event> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;
        return out;
    }
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % capacity_]);
    return out;
}

std::size_t
EventLog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::size_t
EventLog::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

void
EventLog::setCapacity(std::size_t capacity)
{
    ECOLO_ASSERT(capacity > 0, "event log needs a positive capacity");
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
}

void
EventLog::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
}

void
EventLog::writeJsonl(std::ostream &os) const
{
    for (const Event &e : snapshot()) {
        os << "{\"minute\":" << e.minute << ",\"kind\":\""
           << toString(e.kind) << "\",\"value\":";
        if (std::isfinite(e.value)) {
            std::ostringstream num;
            num << std::setprecision(17) << e.value;
            os << num.str();
        } else {
            os << "null";
        }
        os << ",\"detail\":\"" << jsonEscape(e.detail) << "\"}\n";
    }
}

util::Result<void>
EventLog::writeJsonlFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "cannot open event log output file: ", path);
    }
    writeJsonl(os);
    os.flush();
    if (!os) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "short write to event log output file: ", path);
    }
    return {};
}

} // namespace ecolo::telemetry
