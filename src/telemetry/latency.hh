/**
 * @file
 * TailLatency: a thread-safe latency/jitter accumulator with exact
 * quantiles for small populations and log-bucket interpolation beyond.
 *
 * The serve tier keeps one per priority lane to publish p50/p95/p99 and
 * jitter (the Welford running standard deviation) per SLO window. Up to
 * `sampleCapacity` raw samples are retained, so quantiles are *exact*
 * until the buffer fills; after that, new samples land only in base-2
 * log buckets (the TelemetryHistogram layout) and quantiles are
 * interpolated within the winning bucket -- bounded error, bounded
 * memory, no locks held across allocation.
 */

#ifndef ECOLO_TELEMETRY_LATENCY_HH
#define ECOLO_TELEMETRY_LATENCY_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ecolo::telemetry {

/** Welford-style mean/stddev plus quantile tracking for latencies. */
class TailLatency
{
  public:
    explicit TailLatency(std::size_t sample_capacity = 8192);

    /** Record one sample; NaN and negatives are rejected (counted). */
    void record(double value);

    struct Snapshot
    {
        std::uint64_t count = 0;
        std::uint64_t rejected = 0;
        double mean = 0.0;
        double jitter = 0.0; //!< running standard deviation (Welford)
        double min = 0.0;
        double max = 0.0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
        bool exact = true; //!< quantiles from raw samples, not buckets
    };

    Snapshot snapshot() const;
    std::uint64_t count() const;
    void reset();

  private:
    double quantileLocked(double q) const;

    mutable std::mutex mutex_;
    std::size_t sampleCapacity_;
    std::vector<double> samples_; //!< raw values until capacity
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t rejected_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace ecolo::telemetry

#endif // ECOLO_TELEMETRY_LATENCY_HH
