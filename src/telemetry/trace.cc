#include "telemetry/trace.hh"

#include <fstream>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "telemetry/events.hh" // jsonEscape
#include "telemetry/telemetry.hh"

namespace ecolo::telemetry {

namespace {

/**
 * Span names are free-form ("fleet.site[3]", "bench.campaign:myopic"),
 * registry names are not: map a span name onto a valid stat name, keeping
 * dots when that yields a legal name and flattening them otherwise.
 */
std::string
histogramNameFor(const std::string &span_name)
{
    std::string sanitized;
    sanitized.reserve(span_name.size());
    for (char c : span_name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                        c == '.';
        sanitized += ok ? c : '_';
    }
    std::string candidate = "profile." + sanitized + "_us";
    if (Registry::validName(candidate))
        return candidate;
    for (char &c : sanitized) {
        if (c == '.')
            c = '_';
    }
    return "profile." + sanitized + "_us";
}

/** Cached per-thread track id, invalidated when the session restarts. */
struct CachedTid
{
    std::uint64_t generation = 0;
    std::int32_t tid = -1;
};
thread_local CachedTid t_cached_tid;

std::string
currentThreadName(std::int32_t tid)
{
#if defined(__linux__)
    char name[32] = {};
    if (pthread_getname_np(pthread_self(), name, sizeof(name)) == 0 &&
        name[0] != '\0') {
        return name;
    }
#endif
    return tid == 0 ? "main" : "thread-" + std::to_string(tid);
}

} // namespace

void
TraceSession::begin()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    threadNames_.clear();
    epoch_ = std::chrono::steady_clock::now();
    generation_.fetch_add(1, std::memory_order_relaxed);
    active_.store(true, std::memory_order_relaxed);
}

void
TraceSession::end()
{
    active_.store(false, std::memory_order_relaxed);
}

std::uint64_t
TraceSession::nowUs() const
{
    return toUs(std::chrono::steady_clock::now());
}

std::uint64_t
TraceSession::toUs(std::chrono::steady_clock::time_point t) const
{
    if (t < epoch_)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
            .count());
}

std::int32_t
TraceSession::currentTid()
{
    const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
    if (t_cached_tid.tid >= 0 && t_cached_tid.generation == gen)
        return t_cached_tid.tid;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto tid = static_cast<std::int32_t>(threadNames_.size());
    threadNames_.push_back(currentThreadName(tid));
    t_cached_tid = CachedTid{gen, tid};
    return tid;
}

void
TraceSession::record(std::string name, std::uint64_t start_us,
                     std::uint64_t duration_us)
{
    recordOnTid(std::move(name), currentTid(), start_us, duration_us);
}

void
TraceSession::recordOnTid(std::string name, std::int32_t tid,
                          std::uint64_t start_us,
                          std::uint64_t duration_us)
{
    if (!active())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(
        TraceEvent{std::move(name), tid, start_us, duration_us});
}

std::size_t
TraceSession::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
TraceSession::writeChromeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    // Thread-name metadata events give each pool worker its own named
    // track in chrome://tracing / Perfetto.
    for (std::size_t tid = 0; tid < threadNames_.size(); ++tid) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(threadNames_[tid]) << "\"}}";
    }
    for (const TraceEvent &e : events_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"name\":\""
           << jsonEscape(e.name) << "\",\"ts\":" << e.startUs
           << ",\"dur\":" << e.durationUs << "}";
    }
    os << "]}\n";
}

util::Result<void>
TraceSession::writeChromeJsonFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "cannot open profile output file: ", path);
    }
    writeChromeJson(os);
    os.flush();
    if (!os) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "short write to profile output file: ", path);
    }
    return {};
}

void
TraceSession::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    active_.store(false, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_relaxed);
    events_.clear();
    threadNames_.clear();
}

// ---- TraceSpan ----

TraceSpan::TraceSpan(const char *name)
{
    if (!enabled())
        return;
    name_ = name;
    start_ = std::chrono::steady_clock::now();
    armed_ = true;
}

TraceSpan::TraceSpan(std::string name)
{
    if (!enabled())
        return;
    name_ = std::move(name);
    start_ = std::chrono::steady_clock::now();
    armed_ = true;
}

TraceSpan::~TraceSpan()
{
    stop();
}

void
TraceSpan::stop()
{
    if (!armed_)
        return;
    armed_ = false;
    const auto end = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count() /
        1000.0;
    registry().histogram(histogramNameFor(name_)).add(us);
    TraceSession &session = trace();
    if (session.active()) {
        session.record(name_, session.toUs(start_),
                       session.toUs(end) - session.toUs(start_));
    }
}

} // namespace ecolo::telemetry
