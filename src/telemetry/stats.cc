#include "telemetry/stats.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/logging.hh"
#include "util/table.hh"

namespace ecolo::telemetry {

namespace {

/** JSON-format a double: finite values round-trip, non-finite as null. */
void
appendJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    std::ostringstream oss;
    oss << std::setprecision(17) << v;
    os << oss.str();
}

/** Relaxed CAS accumulate (atomic<double> has no fetch_add pre-C++20
 * library support everywhere). */
void
atomicAdd(std::atomic<double> &target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMin(std::atomic<double> &target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (v < cur && !target.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (v > cur && !target.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}

} // namespace

const char *
toString(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:
        return "counter";
      case StatKind::Gauge:
        return "gauge";
      case StatKind::Scalar:
        return "scalar";
      case StatKind::Histogram:
        return "histogram";
    }
    return "unknown";
}

// ---- Counter / Gauge / ScalarStat ----

void
Counter::appendJson(std::ostream &os) const
{
    os << "{\"kind\":\"counter\",\"value\":" << value() << "}";
}

std::string
Counter::textValue() const
{
    return std::to_string(value());
}

void
Gauge::appendJson(std::ostream &os) const
{
    os << "{\"kind\":\"gauge\",\"value\":";
    appendJsonNumber(os, value());
    os << "}";
}

std::string
Gauge::textValue() const
{
    std::ostringstream oss;
    oss << value();
    return oss.str();
}

void
ScalarStat::appendJson(std::ostream &os) const
{
    os << "{\"kind\":\"scalar\",\"value\":";
    appendJsonNumber(os, value());
    os << "}";
}

std::string
ScalarStat::textValue() const
{
    std::ostringstream oss;
    oss << value();
    return oss.str();
}

// ---- TelemetryHistogram ----

std::size_t
TelemetryHistogram::bucketIndex(double v)
{
    // Callers must reject NaN/negatives before binning.
    if (v < 1.0)
        return 0;
    if (std::isinf(v))
        return kNumBuckets - 1;
    const int e = std::ilogb(v); // floor(log2(v)), v >= 1 here
    const std::size_t i = static_cast<std::size_t>(e) + 1;
    return std::min(i, kNumBuckets - 1);
}

double
TelemetryHistogram::bucketLo(std::size_t i)
{
    return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

double
TelemetryHistogram::bucketHi(std::size_t i)
{
    if (i >= kNumBuckets - 1)
        return std::numeric_limits<double>::infinity();
    return std::ldexp(1.0, static_cast<int>(i));
}

void
TelemetryHistogram::add(double v)
{
    if (std::isnan(v) || v < 0.0) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t prev =
        count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
    if (prev == 0) {
        // First sample initializes min/max; races with concurrent adds
        // resolve through the CAS loops below.
        double expected = 0.0;
        min_.compare_exchange_strong(expected, v,
                                     std::memory_order_relaxed);
        expected = 0.0;
        max_.compare_exchange_strong(expected, v,
                                     std::memory_order_relaxed);
    }
    atomicMin(min_, v);
    atomicMax(max_, v);
}

double
TelemetryHistogram::mean() const
{
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
}

double
TelemetryHistogram::min() const
{
    return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double
TelemetryHistogram::max() const
{
    return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

void
TelemetryHistogram::appendJson(std::ostream &os) const
{
    os << "{\"kind\":\"histogram\",\"count\":" << count()
       << ",\"rejected\":" << rejected() << ",\"sum\":";
    appendJsonNumber(os, sum());
    os << ",\"mean\":";
    appendJsonNumber(os, mean());
    os << ",\"min\":";
    appendJsonNumber(os, min());
    os << ",\"max\":";
    appendJsonNumber(os, max());
    os << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        const std::uint64_t c = bucketCount(i);
        if (c == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"lo\":";
        appendJsonNumber(os, bucketLo(i));
        os << ",\"hi\":";
        appendJsonNumber(os, bucketHi(i));
        os << ",\"count\":" << c << "}";
    }
    os << "]}";
}

std::string
TelemetryHistogram::textValue() const
{
    std::ostringstream oss;
    oss << "n=" << count() << " mean=" << mean() << " min=" << min()
        << " max=" << max();
    if (rejected() > 0)
        oss << " rejected=" << rejected();
    return oss.str();
}

void
TelemetryHistogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    rejected_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

// ---- Registry ----

bool
Registry::validName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    bool prev_dot = false;
    for (char c : name) {
        if (c == '.') {
            if (prev_dot)
                return false;
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

template <typename T>
T &
Registry::getOrCreate(const std::string &name, StatKind kind)
{
    ECOLO_ASSERT(validName(name), "invalid stat name '", name,
                 "' (expected dotted [A-Za-z0-9_-] segments)");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stats_.find(name);
    if (it == stats_.end()) {
        auto stat = std::make_unique<T>(name);
        T &ref = *stat;
        stats_.emplace(name, std::move(stat));
        return ref;
    }
    ECOLO_ASSERT(it->second->kind() == kind, "stat name collision: '",
                 name, "' is already registered as ",
                 toString(it->second->kind()), ", requested ",
                 toString(kind));
    return static_cast<T &>(*it->second);
}

Counter &
Registry::counter(const std::string &name)
{
    return getOrCreate<Counter>(name, StatKind::Counter);
}

Gauge &
Registry::gauge(const std::string &name)
{
    return getOrCreate<Gauge>(name, StatKind::Gauge);
}

ScalarStat &
Registry::scalar(const std::string &name)
{
    return getOrCreate<ScalarStat>(name, StatKind::Scalar);
}

TelemetryHistogram &
Registry::histogram(const std::string &name)
{
    return getOrCreate<TelemetryHistogram>(name, StatKind::Histogram);
}

const StatBase *
Registry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second.get();
}

std::size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_.size();
}

void
Registry::dumpText(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    TextTable table({"stat", "kind", "value"});
    for (const auto &[name, stat] : stats_)
        table.addRow(name, toString(stat->kind()), stat->textValue());
    table.print(os);
}

void
Registry::dumpJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"schema\":\"edgetherm-metrics-v1\",\"stats\":{";
    bool first = true;
    for (const auto &[name, stat] : stats_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":";
        stat->appendJson(os);
    }
    os << "}}\n";
}

util::Result<void>
Registry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "cannot open metrics output file: ", path);
    }
    dumpJson(os);
    os.flush();
    if (!os) {
        return ECOLO_ERROR(util::ErrorCode::IoError,
                           "short write to metrics output file: ", path);
    }
    return {};
}

void
Registry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, stat] : stats_)
        stat->reset();
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.clear();
}

} // namespace ecolo::telemetry
