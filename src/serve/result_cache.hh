/**
 * @file
 * Content-addressed result cache for served simulation runs.
 *
 * The engine is deterministic: a (scenario, policy, parameter, horizon)
 * tuple fully determines the run, so the serialized report is cacheable
 * by the *content* of the request. The key hashes the canonical scenario
 * form (KeyValueConfig::entries(): key-sorted pairs, comments and
 * declaration order already normalized away) together with the policy,
 * its parameter's exact IEEE-754 bits, the horizon, and the engine
 * schema version (core/version.hh) -- so two textually different but
 * semantically identical scenario files hit the same entry, while a
 * report produced by an older, behaviorally different build can never
 * be served by a newer one.
 *
 * Values are the response payload bytes verbatim: a hit is byte-
 * identical to the miss that populated it. Eviction is LRU under both
 * an entry-count and a byte budget. All operations are thread-safe;
 * hit/miss/eviction counts are kept internally (always on) and mirrored
 * into the telemetry registry as serve.cache.* by Server::metricsJson.
 */

#ifndef ECOLO_SERVE_RESULT_CACHE_HH
#define ECOLO_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/version.hh"
#include "thermal/heat_matrix.hh"
#include "util/keyvalue.hh"

namespace ecolo::serve {

/** 64-bit FNV-1a over a byte string (stable across platforms/builds). */
std::uint64_t fnv1a64(const std::string &bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/** Content hash of one request. */
struct CacheKey
{
    std::uint64_t hash = 0;

    bool operator==(const CacheKey &other) const
    { return hash == other.hash; }
};

/**
 * Build the content-addressed key. @param scenario is the parsed
 * request scenario; @param kernel_mode is the thermal kernel the run
 * resolves to from the applied config (a mode switch changes the
 * fp-level trajectory, so it is part of the content address even when
 * the scenario text omits thermal.kernel); @param schema_version
 * defaults to the build's engine version and is overridable for
 * regression tests.
 */
CacheKey makeCacheKey(const KeyValueConfig &scenario,
                      const std::string &policy, double param,
                      std::int64_t horizon_minutes,
                      thermal::KernelMode kernel_mode,
                      std::uint32_t schema_version =
                          core::kEngineSchemaVersion);

/** LRU map from CacheKey to response payload bytes. */
class ResultCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t insertions = 0;
        std::uint64_t oversizeRejected = 0;
        std::size_t entries = 0;
        std::size_t bytes = 0;
    };

    ResultCache(std::size_t max_bytes, std::size_t max_entries);

    /**
     * Return the cached bytes and refresh the entry's recency, or
     * std::nullopt. Counts a hit or a miss.
     */
    std::optional<std::string> lookup(const CacheKey &key);

    /**
     * Insert (or refresh) an entry, evicting least-recently-used ones
     * until both budgets hold. A value larger than the whole byte
     * budget is rejected (counted, not stored) rather than flushing
     * the entire cache for one giant report.
     */
    void insert(const CacheKey &key, std::string bytes);

    Stats stats() const;
    std::size_t maxBytes() const { return maxBytes_; }
    std::size_t maxEntries() const { return maxEntries_; }

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        std::string bytes;
    };

    void evictWhileOverBudgetLocked();

    const std::size_t maxBytes_;
    const std::size_t maxEntries_;

    mutable std::mutex mutex_;
    std::list<Entry> lru_; //!< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    std::size_t bytes_ = 0;
    Stats stats_;
};

} // namespace ecolo::serve

#endif // ECOLO_SERVE_RESULT_CACHE_HH
