#include "serve/client.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "serve/result_cache.hh" // fnv1a64
#include "util/rng.hh"
#include "util/socket.hh"

namespace ecolo::serve {

const char *
toString(OutcomeStatus status)
{
    switch (status) {
    case OutcomeStatus::Completed:
        return "completed";
    case OutcomeStatus::Cancelled:
        return "cancelled";
    case OutcomeStatus::Drained:
        return "drained";
    case OutcomeStatus::RetryLater:
        return "retry-later";
    case OutcomeStatus::Error:
        return "error";
    }
    return "?";
}

util::Result<SubmitOutcome>
ServeClient::submit(const RequestSpec &spec,
                    const AcceptedCallback &on_accepted,
                    const StatusCallback &on_status)
{
    auto conn = util::connectTo(host_, port_);
    if (!conn)
        return conn.error();
    if (receiveTimeoutMs_ > 0)
        (void)conn.value().setReceiveTimeout(receiveTimeoutMs_);

    SubmitPayload payload;
    payload.priority = spec.priority;
    payload.clientId = spec.clientId;
    payload.policy = spec.policy;
    payload.param = spec.param;
    payload.paramSet = spec.paramSet;
    payload.horizonMinutes = spec.horizonMinutes;
    payload.scenarioText = spec.scenarioText;
    ECOLO_TRY_VOID(writeFrame(conn.value(), MessageType::Submit, 0,
                              encodeSubmit(payload), spec.deadlineMs));

    SubmitOutcome outcome;
    for (;;) {
        auto frame = readFrame(conn.value());
        if (!frame)
            return frame.error();
        outcome.requestId = frame.value().requestId;
        switch (frame.value().type) {
        case MessageType::Accepted: {
            auto accepted = decodeAccepted(frame.value().payload);
            if (!accepted)
                return accepted.error();
            outcome.cacheHit = accepted.value().cacheHit;
            if (on_accepted)
                on_accepted(frame.value().requestId, accepted.value());
            continue; // the terminal frame follows
        }
        case MessageType::Status: {
            auto status = decodeStatus(frame.value().payload);
            if (!status)
                return status.error();
            if (on_status)
                on_status(status.value());
            continue;
        }
        case MessageType::ResultReport: {
            auto result = decodeResult(frame.value().payload);
            if (!result)
                return result.error();
            outcome.status = OutcomeStatus::Completed;
            outcome.report = std::move(result.value().report);
            return outcome;
        }
        case MessageType::Cancelled: {
            auto cancelled = decodeCancelled(frame.value().payload);
            if (!cancelled)
                return cancelled.error();
            outcome.status = OutcomeStatus::Cancelled;
            outcome.minutesDone = cancelled.value().minutesDone;
            return outcome;
        }
        case MessageType::Drained: {
            auto drained = decodeDrained(frame.value().payload);
            if (!drained)
                return drained.error();
            outcome.status = OutcomeStatus::Drained;
            outcome.minutesDone = drained.value().minutesDone;
            outcome.checkpointPath =
                std::move(drained.value().checkpointPath);
            return outcome;
        }
        case MessageType::RetryAfter: {
            auto retry = decodeRetryAfter(frame.value().payload);
            if (!retry)
                return retry.error();
            outcome.status = OutcomeStatus::RetryLater;
            outcome.retryAfterMs = retry.value().retryAfterMs;
            return outcome;
        }
        case MessageType::ErrorReply: {
            auto error = decodeError(frame.value().payload);
            if (!error)
                return error.error();
            outcome.status = OutcomeStatus::Error;
            outcome.errorCode = error.value().code;
            outcome.errorMessage = std::move(error.value().message);
            return outcome;
        }
        default:
            return ECOLO_ERROR(util::ErrorCode::ParseError,
                               "unexpected frame ",
                               toString(frame.value().type),
                               " in submit conversation");
        }
    }
}

std::uint32_t
backoffDelayMs(const RetryPolicy &policy, std::size_t attempt,
               double jitter)
{
    if (attempt == 0)
        attempt = 1;
    // base * 2^(attempt-1), saturating well before uint32 overflow.
    double delay = static_cast<double>(policy.baseBackoffMs);
    for (std::size_t i = 1;
         i < attempt && delay < static_cast<double>(policy.maxBackoffMs);
         ++i)
        delay *= 2.0;
    delay = std::min(delay, static_cast<double>(policy.maxBackoffMs));
    // +-50% jitter de-synchronizes a retry stampede; deterministic so a
    // seeded chaos run is reproducible end to end.
    delay *= 0.5 + jitter;
    return static_cast<std::uint32_t>(std::max(delay, 1.0));
}

std::uint64_t
retryJitterSeed(const RetryPolicy &policy, const RequestSpec &spec,
                std::uint64_t sequence)
{
    // Hash the request content so two *different* requests retried
    // concurrently de-synchronize, and the submission counter so two
    // submissions of the *same* request do too. FNV over the spec's
    // identifying fields, seeded by the policy's own seed, keeps the
    // derivation deterministic for a given client history.
    std::string salt;
    salt.reserve(spec.scenarioText.size() + spec.policy.size() +
                 spec.clientId.size() + 64);
    salt += spec.clientId;
    salt += '\0';
    salt += spec.policy;
    salt += '\0';
    salt += spec.scenarioText;
    salt += '\0';
    salt += std::to_string(spec.horizonMinutes);
    salt += '\0';
    salt += std::to_string(sequence);
    return fnv1a64(salt, policy.jitterSeed ^ 0x9e3779b97f4a7c15ULL);
}

util::Result<SubmitOutcome>
ServeClient::submitWithRetry(const RequestSpec &spec,
                             const RetryPolicy &policy,
                             std::size_t *attempts_out,
                             const AcceptedCallback &on_accepted,
                             const StatusCallback &on_status)
{
    const std::size_t max_attempts = std::max<std::size_t>(
        policy.maxAttempts, 1);
    Rng jitter(retryJitterSeed(
        policy, spec,
        submitSequence_.fetch_add(1, std::memory_order_relaxed)));
    util::Result<SubmitOutcome> last =
        ECOLO_ERROR(util::ErrorCode::StateError, "no submit attempted");
    for (std::size_t attempt = 1;; ++attempt) {
        last = submit(spec, on_accepted, on_status);
        if (attempts_out)
            *attempts_out = attempt;
        std::uint32_t wait_ms = 0;
        if (!last) {
            // Transport failure: the conversation died without a
            // terminal frame. Content-addressing makes the re-submit
            // idempotent.
            wait_ms = backoffDelayMs(policy, attempt, jitter.uniform());
        } else if (last.value().status == OutcomeStatus::RetryLater) {
            // Honor the server's hint, but never back off less than
            // the policy says.
            wait_ms = std::max(last.value().retryAfterMs,
                               backoffDelayMs(policy, attempt,
                                              jitter.uniform()));
        } else {
            return last; // terminal: completed, cancelled, ... or ERROR
        }
        if (attempt >= max_attempts)
            return last;
        std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    }
}

util::Result<bool>
ServeClient::cancel(std::uint64_t request_id)
{
    auto conn = util::connectTo(host_, port_);
    if (!conn)
        return conn.error();
    if (receiveTimeoutMs_ > 0)
        (void)conn.value().setReceiveTimeout(receiveTimeoutMs_);
    ECOLO_TRY_VOID(writeFrame(conn.value(), MessageType::Cancel, 0,
                              encodeCancel(CancelPayload{request_id})));
    auto frame = readFrame(conn.value());
    if (!frame)
        return frame.error();
    if (frame.value().type != MessageType::CancelAck)
        return ECOLO_ERROR(util::ErrorCode::ParseError,
                           "expected CANCEL_ACK, got ",
                           toString(frame.value().type));
    auto ack = decodeCancelAck(frame.value().payload);
    if (!ack)
        return ack.error();
    return ack.value().found;
}

util::Result<std::string>
ServeClient::stats()
{
    auto conn = util::connectTo(host_, port_);
    if (!conn)
        return conn.error();
    if (receiveTimeoutMs_ > 0)
        (void)conn.value().setReceiveTimeout(receiveTimeoutMs_);
    ECOLO_TRY_VOID(
        writeFrame(conn.value(), MessageType::Stats, 0, ""));
    auto frame = readFrame(conn.value());
    if (!frame)
        return frame.error();
    if (frame.value().type != MessageType::StatsReport)
        return ECOLO_ERROR(util::ErrorCode::ParseError,
                           "expected STATS_REPORT, got ",
                           toString(frame.value().type));
    auto report = decodeStatsReport(frame.value().payload);
    if (!report)
        return report.error();
    return std::move(report.value().metricsJson);
}

util::Result<void>
ServeClient::shutdown()
{
    auto conn = util::connectTo(host_, port_);
    if (!conn)
        return conn.error();
    if (receiveTimeoutMs_ > 0)
        (void)conn.value().setReceiveTimeout(receiveTimeoutMs_);
    ECOLO_TRY_VOID(
        writeFrame(conn.value(), MessageType::Shutdown, 0, ""));
    auto frame = readFrame(conn.value());
    if (!frame)
        return frame.error();
    if (frame.value().type != MessageType::ShutdownAck)
        return ECOLO_ERROR(util::ErrorCode::ParseError,
                           "expected SHUTDOWN_ACK, got ",
                           toString(frame.value().type));
    return {};
}

} // namespace ecolo::serve
