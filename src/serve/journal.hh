/**
 * @file
 * RequestJournal: a write-ahead log of admitted-but-unfinished SUBMIT
 * requests, so a killed edgetherm-serve replays in-flight work on
 * restart and reproduces the results byte-identically (the cache key is
 * content-addressed, so a replayed run fills the same cache slot the
 * retrying client will hit).
 *
 * Format: `requests.wal` inside the journal directory, a flat sequence
 * of records:
 *
 *     u32 magic     "EJL1" (0x314c4a45)
 *     u8  kind      1 = ADMIT, 2 = OUTCOME
 *     u64 requestId
 *     u32 payloadLen
 *     u8[payloadLen] payload  (ADMIT: encodeSubmit bytes;
 *                              OUTCOME: one JournalOutcome byte)
 *     u64 checksum  FNV-1a 64 over kind..payload
 *
 * Appends are fdatasync'd before the server answers ACCEPTED, so an
 * admitted request is durable before the client learns about it.
 * Scanning is tolerant of a torn tail (kill -9 mid-append): the scan
 * stops at the first malformed, truncated, or checksum-failing record
 * and keeps everything before it. open() compacts the file down to the
 * still-pending ADMITs.
 */

#ifndef ECOLO_SERVE_JOURNAL_HH
#define ECOLO_SERVE_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "util/result.hh"

namespace ecolo::serve {

/** Terminal state recorded for a journaled request. */
enum class JournalOutcome : std::uint8_t
{
    Completed = 1,
    Cancelled = 2,
    Drained = 3, //!< checkpointed by the drain path; do not replay
    Error = 4,
    DeadlineExceeded = 5,
    Bounced = 6, //!< journaled, then refused admission (backpressure)
};

class RequestJournal
{
  public:
    struct PendingRequest
    {
        std::uint64_t id = 0;
        SubmitPayload request;
    };

    /**
     * Create `dir` if needed, scan any existing journal, compact it to
     * the pending ADMITs, and open for appending. recovered() holds the
     * requests that were admitted but never reached an outcome.
     */
    static util::Result<RequestJournal> open(const std::string &dir);

    RequestJournal(RequestJournal &&other) noexcept;
    RequestJournal &operator=(RequestJournal &&other) noexcept;
    RequestJournal(const RequestJournal &) = delete;
    RequestJournal &operator=(const RequestJournal &) = delete;
    ~RequestJournal();

    const std::vector<PendingRequest> &recovered() const
    { return recovered_; }

    /** Durably record an admission; call before answering ACCEPTED. */
    util::Result<void> recordAdmit(std::uint64_t id,
                                   const SubmitPayload &request);

    /** Record a terminal outcome (best-effort durable). */
    util::Result<void> recordOutcome(std::uint64_t id,
                                     JournalOutcome outcome);

    const std::string &path() const { return path_; }

    /**
     * Scan a journal file, tolerating a torn tail; returns the pending
     * (admitted, outcome-less) requests in admission order. Exposed for
     * tests and offline inspection.
     */
    static util::Result<std::vector<PendingRequest>>
    scanFile(const std::string &path);

  private:
    RequestJournal() = default;

    util::Result<void> append(const std::string &record);

    std::string path_;
    int fd_ = -1;
    std::vector<PendingRequest> recovered_;
    std::mutex mutex_;
};

} // namespace ecolo::serve

#endif // ECOLO_SERVE_JOURNAL_HH
