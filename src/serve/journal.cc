#include "serve/journal.hh"

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "serve/result_cache.hh"
#include "util/logging.hh"

namespace ecolo::serve {

namespace {

constexpr std::uint32_t kJournalMagic = 0x314c4a45; // "EJL1"
constexpr std::uint8_t kKindAdmit = 1;
constexpr std::uint8_t kKindOutcome = 2;
// magic + kind + requestId + payloadLen (checksum trails the payload)
constexpr std::size_t kRecordHeadBytes = 4 + 1 + 8 + 4;

void
putU32(std::string &out, std::uint32_t v)
{
    char b[4];
    std::memcpy(b, &v, 4);
    out.append(b, 4);
}

void
putU64(std::string &out, std::uint64_t v)
{
    char b[8];
    std::memcpy(b, &v, 8);
    out.append(b, 8);
}

std::string
encodeRecord(std::uint8_t kind, std::uint64_t id,
             const std::string &payload)
{
    std::string out;
    out.reserve(kRecordHeadBytes + payload.size() + 8);
    putU32(out, kJournalMagic);
    out.push_back(static_cast<char>(kind));
    putU64(out, id);
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    // Checksum covers kind..payload (everything after the magic).
    putU64(out, fnv1a64(out.substr(4)));
    return out;
}

util::Error
errnoError(const std::string &what, int err)
{
    return ECOLO_ERROR(util::ErrorCode::IoError, what, ": ",
                       std::strerror(err));
}

util::Result<void>
writeWholeFile(const std::string &path, const std::string &bytes)
{
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        return errnoError("cannot create " + path, errno);
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + done, bytes.size() - done);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            const int err = errno;
            ::close(fd);
            return errnoError("cannot write " + path, err);
        }
        done += static_cast<std::size_t>(n);
    }
    if (::fdatasync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        return errnoError("cannot sync " + path, err);
    }
    ::close(fd);
    return {};
}

} // namespace

RequestJournal::RequestJournal(RequestJournal &&other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      recovered_(std::move(other.recovered_))
{}

RequestJournal &
RequestJournal::operator=(RequestJournal &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        path_ = std::move(other.path_);
        fd_ = std::exchange(other.fd_, -1);
        recovered_ = std::move(other.recovered_);
    }
    return *this;
}

RequestJournal::~RequestJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

util::Result<std::vector<RequestJournal::PendingRequest>>
RequestJournal::scanFile(const std::string &path)
{
    std::string bytes;
    {
        const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0) {
            if (errno == ENOENT)
                return std::vector<PendingRequest>{};
            return errnoError("cannot open " + path, errno);
        }
        char buf[1 << 16];
        for (;;) {
            const ssize_t n = ::read(fd, buf, sizeof(buf));
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0) {
                const int err = errno;
                ::close(fd);
                return errnoError("cannot read " + path, err);
            }
            if (n == 0)
                break;
            bytes.append(buf, static_cast<std::size_t>(n));
        }
        ::close(fd);
    }

    std::vector<PendingRequest> admits;
    std::map<std::uint64_t, std::size_t> live; // id -> index in admits
    std::size_t pos = 0;
    bool torn = false;
    while (pos + kRecordHeadBytes + 8 <= bytes.size()) {
        std::uint32_t magic, payload_len;
        std::uint64_t id;
        std::memcpy(&magic, bytes.data() + pos, 4);
        const std::uint8_t kind =
            static_cast<std::uint8_t>(bytes[pos + 4]);
        std::memcpy(&id, bytes.data() + pos + 5, 8);
        std::memcpy(&payload_len, bytes.data() + pos + 13, 4);
        if (magic != kJournalMagic ||
            payload_len > kMaxPayloadBytes ||
            pos + kRecordHeadBytes + payload_len + 8 > bytes.size()) {
            torn = true;
            break;
        }
        const std::string body =
            bytes.substr(pos + 4, 1 + 8 + 4 + payload_len);
        std::uint64_t checksum;
        std::memcpy(&checksum,
                    bytes.data() + pos + kRecordHeadBytes + payload_len,
                    8);
        if (checksum != fnv1a64(body)) {
            torn = true;
            break;
        }
        const std::string payload =
            bytes.substr(pos + kRecordHeadBytes, payload_len);
        if (kind == kKindAdmit) {
            auto request = decodeSubmit(payload);
            if (!request.ok()) {
                torn = true;
                break;
            }
            live[id] = admits.size();
            admits.push_back(PendingRequest{id, request.take()});
        } else if (kind == kKindOutcome && payload_len == 1) {
            live.erase(id);
        } else {
            torn = true;
            break;
        }
        pos += kRecordHeadBytes + payload_len + 8;
    }
    if (torn || pos != bytes.size()) {
        ecolo::warn("request journal ", path, ": torn tail at byte ",
                    pos, " of ", bytes.size(), "; keeping ", live.size(),
                    " pending record(s) before it");
    }

    std::vector<PendingRequest> pending;
    pending.reserve(live.size());
    for (const PendingRequest &admit : admits) {
        const auto it = live.find(admit.id);
        if (it != live.end() && admits[it->second].id == admit.id &&
            &admits[it->second] == &admit) {
            pending.push_back(admit);
        }
    }
    return pending;
}

util::Result<RequestJournal>
RequestJournal::open(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        return errnoError("cannot create journal dir " + dir, errno);

    RequestJournal journal;
    journal.path_ = dir + "/requests.wal";

    auto pending = scanFile(journal.path_);
    if (!pending.ok())
        return pending.error();
    journal.recovered_ = pending.take();

    // Compact: rewrite only the still-pending ADMITs, atomically.
    std::string compacted;
    for (const PendingRequest &p : journal.recovered_)
        compacted += encodeRecord(kKindAdmit, p.id,
                                  encodeSubmit(p.request));
    const std::string tmp = journal.path_ + ".tmp";
    ECOLO_TRY_VOID(writeWholeFile(tmp, compacted));
    if (::rename(tmp.c_str(), journal.path_.c_str()) != 0)
        return errnoError("cannot rename " + tmp, errno);

    journal.fd_ = ::open(journal.path_.c_str(),
                         O_WRONLY | O_APPEND | O_CLOEXEC);
    if (journal.fd_ < 0)
        return errnoError("cannot open " + journal.path_, errno);
    return journal;
}

util::Result<void>
RequestJournal::append(const std::string &record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0) {
        return ECOLO_ERROR(util::ErrorCode::StateError,
                           "request journal is closed");
    }
    std::size_t done = 0;
    while (done < record.size()) {
        const ssize_t n =
            ::write(fd_, record.data() + done, record.size() - done);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0)
            return errnoError("cannot append to " + path_, errno);
        done += static_cast<std::size_t>(n);
    }
    if (::fdatasync(fd_) != 0)
        return errnoError("cannot sync " + path_, errno);
    return {};
}

util::Result<void>
RequestJournal::recordAdmit(std::uint64_t id,
                            const SubmitPayload &request)
{
    return append(encodeRecord(kKindAdmit, id, encodeSubmit(request)));
}

util::Result<void>
RequestJournal::recordOutcome(std::uint64_t id, JournalOutcome outcome)
{
    std::string payload(1, static_cast<char>(outcome));
    return append(encodeRecord(kKindOutcome, id, payload));
}

} // namespace ecolo::serve
