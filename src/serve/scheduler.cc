#include "serve/scheduler.hh"

#include <algorithm>
#include <cassert>
#include <exception>
#include <utility>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace ecolo::serve {

void
Scheduler::LaneQueue::push(const std::string &client, Job job)
{
    auto &fifo = perClient[client];
    if (fifo.empty())
        rotation.push_back(client);
    fifo.push_back(std::move(job));
    ++size;
}

Scheduler::Job
Scheduler::LaneQueue::pop()
{
    const std::string client = rotation.front();
    rotation.pop_front();
    auto it = perClient.find(client);
    Job job = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty())
        perClient.erase(it);
    else
        rotation.push_back(client); // one job per client per turn
    --size;
    return job;
}

Scheduler::Scheduler(Options options)
    : options_([&] {
          Options o = std::move(options);
          if (o.numWorkers == 0)
              o.numWorkers = 1;
          if (o.batchBoostEvery == 0)
              o.batchBoostEvery = 1;
          if (o.batchMaxLanes == 0)
              o.batchMaxLanes = 1;
          return o;
      }()),
      pool_(options_.numWorkers)
{}

Scheduler::~Scheduler() { drain(false); }

Scheduler::SubmitResult
Scheduler::submitLocked(const std::string &client_id, Job entry)
{
    ++stats_.submitted;
    const std::size_t queued = lanes_[0].size + lanes_[1].size;
    if (draining_) {
        ++stats_.rejectedDraining;
        return {Admission::Draining, queued};
    }
    if (queued >= options_.maxQueued) {
        ++stats_.rejectedQueueFull;
        return {Admission::QueueFull, queued};
    }
    entry.enqueued = std::chrono::steady_clock::now();
    liveTokens_.emplace(entry.id, entry.token);
    lanes_[static_cast<int>(entry.lane)].push(client_id,
                                              std::move(entry));
    ++stats_.admitted;
    // notify_all, not notify_one: a worker holding a batching window
    // open also waits on this condvar, and it must not swallow the
    // only wakeup meant for an idle worker (or vice versa).
    workAvailable_.notify_all();
    return {Admission::Admitted, queued + 1};
}

Scheduler::SubmitResult
Scheduler::submit(std::uint64_t id, Lane lane,
                  const std::string &client_id, JobFn job,
                  std::optional<std::chrono::steady_clock::time_point>
                      deadline)
{
    Job entry;
    entry.id = id;
    entry.lane = lane;
    entry.fn = std::move(job);
    entry.deadline = deadline;
    std::lock_guard<std::mutex> lock(mutex_);
    return submitLocked(client_id, std::move(entry));
}

Scheduler::SubmitResult
Scheduler::submitBatchable(
    std::uint64_t id, Lane lane, const std::string &client_id,
    std::uint64_t batch_key, std::shared_ptr<void> payload,
    std::optional<std::chrono::steady_clock::time_point> deadline)
{
    assert(options_.batchExecutor && batch_key != 0);
    Job entry;
    entry.id = id;
    entry.lane = lane;
    entry.batchKey = batch_key;
    entry.payload = std::move(payload);
    entry.deadline = deadline;
    std::lock_guard<std::mutex> lock(mutex_);
    return submitLocked(client_id, std::move(entry));
}

bool
Scheduler::cancel(std::uint64_t id, CancelReason reason)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = liveTokens_.find(id);
    if (it == liveTokens_.end())
        return false;
    it->second.cancel(reason);
    return true;
}

bool
Scheduler::popNextLocked(Job &out)
{
    LaneQueue &interactive = lanes_[static_cast<int>(Lane::Interactive)];
    LaneQueue &batch = lanes_[static_cast<int>(Lane::Batch)];
    if (interactive.empty() && batch.empty())
        return false;

    const bool boost_batch = !batch.empty() &&
                             (interactive.empty() ||
                              interactiveStreak_ >=
                                  options_.batchBoostEvery);
    if (boost_batch) {
        interactiveStreak_ = 0;
        out = batch.pop();
        ++stats_.dispatchedBatch;
    } else {
        ++interactiveStreak_;
        out = interactive.pop();
        ++stats_.dispatchedInteractive;
    }
    return true;
}

void
Scheduler::noteDispatchLocked(Job &job)
{
    const auto now = std::chrono::steady_clock::now();
    queueWait_[static_cast<int>(job.lane)].record(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - job.enqueued)
                .count()));
    if (job.deadline && !job.token.cancelled() && now >= *job.deadline) {
        job.token.cancel(CancelReason::Deadline);
        ++stats_.deadlineExpiredQueued;
    }
}

std::size_t
Scheduler::collectPeersLocked(std::uint64_t key, std::size_t max,
                              std::vector<Job> &out)
{
    std::size_t taken = 0;
    for (LaneQueue &lane : lanes_) {
        for (auto it = lane.perClient.begin();
             taken < max && it != lane.perClient.end();) {
            auto &fifo = it->second;
            for (auto jit = fifo.begin();
                 taken < max && jit != fifo.end();) {
                if (jit->batchKey != key) {
                    ++jit;
                    continue;
                }
                if (jit->lane == Lane::Interactive)
                    ++stats_.dispatchedInteractive;
                else
                    ++stats_.dispatchedBatch;
                noteDispatchLocked(*jit);
                out.push_back(std::move(*jit));
                jit = fifo.erase(jit);
                --lane.size;
                ++taken;
            }
            if (fifo.empty()) {
                const auto rot =
                    std::find(lane.rotation.begin(),
                              lane.rotation.end(), it->first);
                if (rot != lane.rotation.end())
                    lane.rotation.erase(rot);
                it = lane.perClient.erase(it);
            } else {
                ++it;
            }
        }
        if (taken >= max)
            break;
    }
    return taken;
}

void
Scheduler::gatherBatchLocked(const Job &seed, std::vector<Job> &peers,
                             std::unique_lock<std::mutex> &lock)
{
    const std::size_t max_peers = options_.batchMaxLanes - 1;
    collectPeersLocked(seed.batchKey, max_peers, peers);

    const bool bypass = seed.lane == Lane::Interactive &&
                        options_.batchWindowInteractiveBypass;
    double waited_us = 0.0;
    if (options_.batchWindow.count() > 0 && !bypass && !draining_ &&
        peers.size() < max_peers) {
        ++stats_.batchWindowWaits;
        const auto opened = std::chrono::steady_clock::now();
        const auto closes = opened + options_.batchWindow;
        while (peers.size() < max_peers && !draining_) {
            if (workAvailable_.wait_until(lock, closes) ==
                std::cv_status::timeout) {
                collectPeersLocked(seed.batchKey,
                                   max_peers - peers.size(), peers);
                break;
            }
            collectPeersLocked(seed.batchKey,
                               max_peers - peers.size(), peers);
        }
        waited_us = static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - opened)
                .count());
    }
    batchWindowDelay_.record(waited_us);
    batchOccupancy_.record(static_cast<double>(1 + peers.size()));
    if (peers.empty()) {
        ++stats_.batchScalarFallbacks;
    } else {
        ++stats_.batchesDispatched;
        stats_.batchedJobs += 1 + peers.size();
        stats_.batchMaxOccupancy =
            std::max(stats_.batchMaxOccupancy, 1 + peers.size());
    }
}

void
Scheduler::workerLoop()
{
    std::vector<Job> peers;
    std::vector<BatchItem> items;
    for (;;) {
        Job job;
        peers.clear();
        items.clear();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [&] {
                return draining_ || lanes_[0].size + lanes_[1].size > 0;
            });
            if (!popNextLocked(job)) {
                if (draining_)
                    return;
                continue;
            }
            noteDispatchLocked(job);
            if (job.batchKey != 0 && options_.batchExecutor)
                gatherBatchLocked(job, peers, lock);
            stats_.runningNow += 1 + peers.size();
        }

        if (job.batchKey != 0 && options_.batchExecutor) {
            items.reserve(1 + peers.size());
            items.push_back(
                {job.id, job.lane, job.token, std::move(job.payload)});
            for (Job &peer : peers)
                items.push_back({peer.id, peer.lane, peer.token,
                                 std::move(peer.payload)});
            telemetry::TraceSpan span("serve.batch");
            try {
                options_.batchExecutor(items);
            } catch (const std::exception &e) {
                ecolo::warn("serve: batch of ", items.size(),
                            " failed with exception: ", e.what());
            } catch (...) {
                ecolo::warn("serve: batch of ", items.size(),
                            " failed with unknown exception");
            }
        } else {
            telemetry::TraceSpan span("serve.request");
            try {
                job.fn(job.token);
            } catch (const std::exception &e) {
                ecolo::warn("serve: request ", job.id,
                            " failed with exception: ", e.what());
            } catch (...) {
                ecolo::warn("serve: request ", job.id,
                            " failed with unknown exception");
            }
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            stats_.runningNow -= 1 + peers.size();
            const auto retire = [&](const Job &done) {
                if (done.token.cancelled())
                    ++stats_.cancelled;
                else
                    ++stats_.completed;
                liveTokens_.erase(done.id);
            };
            retire(job);
            for (const Job &peer : peers)
                retire(peer);
        }
        // A finished job may have been the last thing a drain was
        // waiting on; make sure idle workers re-check the exit
        // condition.
        workAvailable_.notify_all();
    }
}

void
Scheduler::run()
{
    // Each index is one persistent worker loop; parallelFor returns
    // only when every loop has observed the drain and exited.
    pool_.parallelFor(0, options_.numWorkers,
                      [this](std::size_t) { workerLoop(); });
}

void
Scheduler::drain(bool cancel_in_flight)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
        if (cancel_in_flight) {
            for (auto &[id, token] : liveTokens_)
                token.cancel(CancelReason::Drain);
        }
    }
    workAvailable_.notify_all();
}

Scheduler::Stats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = stats_;
    s.queuedNow = lanes_[0].size + lanes_[1].size;
    return s;
}

std::size_t
Scheduler::queuedNow() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lanes_[0].size + lanes_[1].size;
}

telemetry::TailLatency::Snapshot
Scheduler::queueWaitSnapshot(Lane lane) const
{
    return queueWait_[static_cast<int>(lane)].snapshot();
}

telemetry::TailLatency::Snapshot
Scheduler::batchOccupancySnapshot() const
{
    return batchOccupancy_.snapshot();
}

telemetry::TailLatency::Snapshot
Scheduler::batchWindowDelaySnapshot() const
{
    return batchWindowDelay_.snapshot();
}

} // namespace ecolo::serve
