#include "serve/scheduler.hh"

#include <exception>
#include <utility>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace ecolo::serve {

void
Scheduler::LaneQueue::push(const std::string &client, Job job)
{
    auto &fifo = perClient[client];
    if (fifo.empty())
        rotation.push_back(client);
    fifo.push_back(std::move(job));
    ++size;
}

Scheduler::Job
Scheduler::LaneQueue::pop()
{
    const std::string client = rotation.front();
    rotation.pop_front();
    auto it = perClient.find(client);
    Job job = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty())
        perClient.erase(it);
    else
        rotation.push_back(client); // one job per client per turn
    --size;
    return job;
}

Scheduler::Scheduler(Options options)
    : options_([&] {
          Options o = options;
          if (o.numWorkers == 0)
              o.numWorkers = 1;
          if (o.batchBoostEvery == 0)
              o.batchBoostEvery = 1;
          return o;
      }()),
      pool_(options_.numWorkers)
{}

Scheduler::~Scheduler() { drain(false); }

Scheduler::SubmitResult
Scheduler::submit(std::uint64_t id, Lane lane,
                  const std::string &client_id, JobFn job,
                  std::optional<std::chrono::steady_clock::time_point>
                      deadline)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
    const std::size_t queued = lanes_[0].size + lanes_[1].size;
    if (draining_) {
        ++stats_.rejectedDraining;
        return {Admission::Draining, queued};
    }
    if (queued >= options_.maxQueued) {
        ++stats_.rejectedQueueFull;
        return {Admission::QueueFull, queued};
    }
    Job entry;
    entry.id = id;
    entry.lane = lane;
    entry.fn = std::move(job);
    entry.deadline = deadline;
    liveTokens_.emplace(id, entry.token);
    lanes_[static_cast<int>(lane)].push(client_id, std::move(entry));
    ++stats_.admitted;
    workAvailable_.notify_one();
    return {Admission::Admitted, queued + 1};
}

bool
Scheduler::cancel(std::uint64_t id, CancelReason reason)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = liveTokens_.find(id);
    if (it == liveTokens_.end())
        return false;
    it->second.cancel(reason);
    return true;
}

bool
Scheduler::popNextLocked(Job &out)
{
    LaneQueue &interactive = lanes_[static_cast<int>(Lane::Interactive)];
    LaneQueue &batch = lanes_[static_cast<int>(Lane::Batch)];
    if (interactive.empty() && batch.empty())
        return false;

    const bool boost_batch = !batch.empty() &&
                             (interactive.empty() ||
                              interactiveStreak_ >=
                                  options_.batchBoostEvery);
    if (boost_batch) {
        interactiveStreak_ = 0;
        out = batch.pop();
        ++stats_.dispatchedBatch;
    } else {
        ++interactiveStreak_;
        out = interactive.pop();
        ++stats_.dispatchedInteractive;
    }
    return true;
}

void
Scheduler::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [&] {
                return draining_ || lanes_[0].size + lanes_[1].size > 0;
            });
            if (!popNextLocked(job)) {
                if (draining_)
                    return;
                continue;
            }
            if (job.deadline && !job.token.cancelled() &&
                std::chrono::steady_clock::now() >= *job.deadline) {
                job.token.cancel(CancelReason::Deadline);
                ++stats_.deadlineExpiredQueued;
            }
            ++stats_.runningNow;
        }

        {
            telemetry::TraceSpan span("serve.request");
            try {
                job.fn(job.token);
            } catch (const std::exception &e) {
                ecolo::warn("serve: request ", job.id,
                            " failed with exception: ", e.what());
            } catch (...) {
                ecolo::warn("serve: request ", job.id,
                            " failed with unknown exception");
            }
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            --stats_.runningNow;
            if (job.token.cancelled())
                ++stats_.cancelled;
            else
                ++stats_.completed;
            liveTokens_.erase(job.id);
        }
        // A finished job may have been the last thing a drain was
        // waiting on; make sure idle workers re-check the exit
        // condition.
        workAvailable_.notify_all();
    }
}

void
Scheduler::run()
{
    // Each index is one persistent worker loop; parallelFor returns
    // only when every loop has observed the drain and exited.
    pool_.parallelFor(0, options_.numWorkers,
                      [this](std::size_t) { workerLoop(); });
}

void
Scheduler::drain(bool cancel_in_flight)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
        if (cancel_in_flight) {
            for (auto &[id, token] : liveTokens_)
                token.cancel(CancelReason::Drain);
        }
    }
    workAvailable_.notify_all();
}

Scheduler::Stats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = stats_;
    s.queuedNow = lanes_[0].size + lanes_[1].size;
    return s;
}

std::size_t
Scheduler::queuedNow() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lanes_[0].size + lanes_[1].size;
}

} // namespace ecolo::serve
