/**
 * @file
 * edgetherm-rpc-v2: the length-prefixed binary wire protocol between
 * edgetherm-serve and its clients.
 *
 * Every message is one frame:
 *
 *     u32 magic      "ERPC" (0x45525043)
 *     u32 version    2
 *     u32 type       MessageType
 *     u64 requestId  server-assigned id (0 before assignment)
 *     u32 deadlineMs request budget in ms from server receipt (0 = none)
 *     u32 payloadLen bytes that follow (<= kMaxPayloadBytes)
 *     u8[payloadLen] type-specific payload
 *
 * v2 extends v1 by inserting the deadlineMs header field; the deadline
 * is meaningful on request frames only (responses carry 0). A request
 * whose budget expires -- queued or mid-simulation -- is answered with
 * ErrorReply{DeadlineExceeded}, never silence.
 *
 * All integers little-endian; doubles are raw IEEE-754 bytes; strings
 * are u32 length + bytes. Parsing is strict and total: decode functions
 * return util::Result, never throw, and reject bad magic/version,
 * unknown types, oversized lengths, truncated payloads, and trailing
 * bytes. A conversation is one request frame followed by the server's
 * response stream on the same connection:
 *
 *   Submit   -> RetryAfter | ErrorReply
 *             | Accepted, Status*, (ResultReport|Cancelled|Drained)
 *   Cancel   -> CancelAck | ErrorReply
 *   Stats    -> StatsReport | ErrorReply
 *   Shutdown -> ShutdownAck     (server then drains and exits)
 *
 * See docs/serving.md for the full protocol spec.
 */

#ifndef ECOLO_SERVE_PROTOCOL_HH
#define ECOLO_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "util/result.hh"
#include "util/socket.hh"

namespace ecolo::serve {

inline constexpr std::uint32_t kRpcMagic = 0x45525043; // "ERPC"
inline constexpr std::uint32_t kRpcVersion = 2;
/** Upper bound on one frame's payload (reports are ~10 KiB). */
inline constexpr std::size_t kMaxPayloadBytes = 4u << 20;
inline constexpr std::size_t kHeaderBytes = 28;

/** Frame types. Requests are 1..9, responses 10+. */
enum class MessageType : std::uint32_t
{
    Submit = 1,
    Cancel = 2,
    Stats = 3,
    Shutdown = 4,

    Accepted = 10,
    RetryAfter = 11,
    Status = 12,
    ResultReport = 13,
    Cancelled = 14,
    Drained = 15,
    ErrorReply = 16,
    StatsReport = 17,
    ShutdownAck = 18,
    CancelAck = 19,
};

const char *toString(MessageType type);
bool isKnownMessageType(std::uint32_t raw);

/** Scheduling lane requested by the client. */
enum class Priority : std::uint8_t
{
    Interactive = 0, //!< one-shot what-if runs; never starved
    Batch = 1,       //!< year-long campaigns; filled in around them
};

/** Wire error codes carried by ErrorReply. */
enum class RpcErrorCode : std::uint32_t
{
    ParseError = 1,      //!< malformed scenario/request payload
    ValidationError = 2, //!< well-formed but inconsistent request
    Unavailable = 3,     //!< server draining; resubmit elsewhere/later
    UnknownRequest = 4,  //!< cancel target not queued or running
    Internal = 5,        //!< server-side failure
    DeadlineExceeded = 6, //!< request budget expired before completion
};

// ---- Payload structs ----

struct SubmitPayload
{
    Priority priority = Priority::Interactive;
    std::string clientId;      //!< fairness bucket (tenant name)
    std::string policy;        //!< standby|random|myopic|foresighted|oneshot
    double param = 0.0;        //!< policy parameter
    bool paramSet = false;     //!< false: server applies policy default
    std::int64_t horizonMinutes = 0;
    std::string scenarioText;  //!< key=value lines on top of Table I
};

struct CancelPayload
{
    std::uint64_t targetId = 0;
};

struct AcceptedPayload
{
    bool cacheHit = false;       //!< result follows immediately from cache
    std::uint32_t queueDepth = 0; //!< jobs queued ahead (0 on hit)
};

struct RetryAfterPayload
{
    std::uint32_t retryAfterMs = 0;
};

struct StatusPayload
{
    std::int64_t minutesDone = 0;
    std::int64_t horizonMinutes = 0;
};

/** The serialized campaign report; bytes are cached verbatim. */
struct ResultPayload
{
    std::string report;
};

struct CancelledPayload
{
    std::int64_t minutesDone = 0;
};

struct DrainedPayload
{
    std::int64_t minutesDone = 0;
    std::string checkpointPath; //!< empty when no spool dir configured
};

struct ErrorPayload
{
    RpcErrorCode code = RpcErrorCode::Internal;
    std::string message;
};

struct StatsReportPayload
{
    std::string metricsJson; //!< edgetherm-metrics-v1 document
};

struct CancelAckPayload
{
    bool found = false;
};

/** One decoded frame. */
struct Frame
{
    MessageType type = MessageType::ErrorReply;
    std::uint64_t requestId = 0;
    std::uint32_t deadlineMs = 0; //!< request budget (0 = no deadline)
    std::string payload;
};

// ---- Encoding ----

std::string encodeFrame(MessageType type, std::uint64_t request_id,
                        const std::string &payload,
                        std::uint32_t deadline_ms = 0);

std::string encodeSubmit(const SubmitPayload &p);
std::string encodeCancel(const CancelPayload &p);
std::string encodeAccepted(const AcceptedPayload &p);
std::string encodeRetryAfter(const RetryAfterPayload &p);
std::string encodeStatus(const StatusPayload &p);
std::string encodeResult(const ResultPayload &p);
std::string encodeCancelled(const CancelledPayload &p);
std::string encodeDrained(const DrainedPayload &p);
std::string encodeError(const ErrorPayload &p);
std::string encodeStatsReport(const StatsReportPayload &p);
std::string encodeCancelAck(const CancelAckPayload &p);

// ---- Strict decoding ----

/** Parse a 28-byte header; validates magic, version, type, length. */
struct FrameHeader
{
    MessageType type = MessageType::ErrorReply;
    std::uint64_t requestId = 0;
    std::uint32_t deadlineMs = 0;
    std::uint32_t payloadLen = 0;
};
util::Result<FrameHeader> decodeHeader(const unsigned char (&buf)[kHeaderBytes]);

util::Result<SubmitPayload> decodeSubmit(const std::string &bytes);
util::Result<CancelPayload> decodeCancel(const std::string &bytes);
util::Result<AcceptedPayload> decodeAccepted(const std::string &bytes);
util::Result<RetryAfterPayload> decodeRetryAfter(const std::string &bytes);
util::Result<StatusPayload> decodeStatus(const std::string &bytes);
util::Result<ResultPayload> decodeResult(const std::string &bytes);
util::Result<CancelledPayload> decodeCancelled(const std::string &bytes);
util::Result<DrainedPayload> decodeDrained(const std::string &bytes);
util::Result<ErrorPayload> decodeError(const std::string &bytes);
util::Result<StatsReportPayload>
decodeStatsReport(const std::string &bytes);
util::Result<CancelAckPayload> decodeCancelAck(const std::string &bytes);

// ---- Connection I/O ----

/** Read one complete frame (header + payload) from the connection. */
util::Result<Frame> readFrame(util::TcpConnection &conn);

/** Write one complete frame to the connection. */
util::Result<void> writeFrame(util::TcpConnection &conn, MessageType type,
                              std::uint64_t request_id,
                              const std::string &payload,
                              std::uint32_t deadline_ms = 0);

} // namespace ecolo::serve

#endif // ECOLO_SERVE_PROTOCOL_HH
