#include "serve/protocol.hh"

#include <cstring>

namespace ecolo::serve {

namespace {

// ---- Little-endian buffer primitives (mirrors util/state_io.cc; the
// wire format is fixed little-endian on every platform we target). ----

void
putU32(std::string &out, std::uint32_t v)
{
    char b[4];
    std::memcpy(b, &v, 4);
    out.append(b, 4);
}

void
putU64(std::string &out, std::uint64_t v)
{
    char b[8];
    std::memcpy(b, &v, 8);
    out.append(b, 8);
}

void
putI64(std::string &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(out, bits);
}

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

/**
 * Strict cursor over a payload: latches the first failure, and finish()
 * additionally rejects trailing bytes so a payload must be consumed
 * exactly.
 */
class Cursor
{
  public:
    explicit Cursor(const std::string &bytes) : bytes_(bytes) {}

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        raw(&v, 1);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        raw(&v, 4);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        raw(&v, 8);
        return v;
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        if (!ok_)
            return {};
        if (len > bytes_.size() - pos_) {
            fail("string length ", len, " exceeds remaining payload (",
                 bytes_.size() - pos_, " bytes)");
            return {};
        }
        std::string s = bytes_.substr(pos_, len);
        pos_ += len;
        return s;
    }

    bool ok() const { return ok_; }

    util::Result<void>
    finish()
    {
        if (!ok_)
            return error_;
        if (pos_ != bytes_.size()) {
            return ECOLO_ERROR(util::ErrorCode::ParseError,
                               "trailing bytes in payload: consumed ",
                               pos_, " of ", bytes_.size());
        }
        return {};
    }

    template <typename... Args>
    void
    fail(Args &&...args)
    {
        if (ok_) {
            ok_ = false;
            error_ = ECOLO_ERROR(util::ErrorCode::ParseError,
                                 std::forward<Args>(args)...);
        }
    }

  private:
    void
    raw(void *out, std::size_t n)
    {
        if (!ok_)
            return;
        if (n > bytes_.size() - pos_) {
            fail("truncated payload: need ", n, " bytes at offset ", pos_,
                 ", have ", bytes_.size() - pos_);
            return;
        }
        std::memcpy(out, bytes_.data() + pos_, n);
        pos_ += n;
    }

    const std::string &bytes_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    util::Error error_;
};

/** Shared tail: propagate the cursor's status, else return the value. */
template <typename T>
util::Result<T>
finishAs(Cursor &c, T value)
{
    if (auto done = c.finish(); !done.ok())
        return done.error();
    return value;
}

} // namespace

const char *
toString(MessageType type)
{
    switch (type) {
    case MessageType::Submit: return "submit";
    case MessageType::Cancel: return "cancel";
    case MessageType::Stats: return "stats";
    case MessageType::Shutdown: return "shutdown";
    case MessageType::Accepted: return "accepted";
    case MessageType::RetryAfter: return "retry_after";
    case MessageType::Status: return "status";
    case MessageType::ResultReport: return "result";
    case MessageType::Cancelled: return "cancelled";
    case MessageType::Drained: return "drained";
    case MessageType::ErrorReply: return "error";
    case MessageType::StatsReport: return "stats_report";
    case MessageType::ShutdownAck: return "shutdown_ack";
    case MessageType::CancelAck: return "cancel_ack";
    }
    return "unknown";
}

bool
isKnownMessageType(std::uint32_t raw)
{
    switch (static_cast<MessageType>(raw)) {
    case MessageType::Submit:
    case MessageType::Cancel:
    case MessageType::Stats:
    case MessageType::Shutdown:
    case MessageType::Accepted:
    case MessageType::RetryAfter:
    case MessageType::Status:
    case MessageType::ResultReport:
    case MessageType::Cancelled:
    case MessageType::Drained:
    case MessageType::ErrorReply:
    case MessageType::StatsReport:
    case MessageType::ShutdownAck:
    case MessageType::CancelAck:
        return true;
    }
    return false;
}

// ---- Encoding ----

std::string
encodeFrame(MessageType type, std::uint64_t request_id,
            const std::string &payload, std::uint32_t deadline_ms)
{
    std::string out;
    out.reserve(kHeaderBytes + payload.size());
    putU32(out, kRpcMagic);
    putU32(out, kRpcVersion);
    putU32(out, static_cast<std::uint32_t>(type));
    putU64(out, request_id);
    putU32(out, deadline_ms);
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    return out;
}

std::string
encodeSubmit(const SubmitPayload &p)
{
    std::string out;
    putU8(out, static_cast<std::uint8_t>(p.priority));
    putStr(out, p.clientId);
    putStr(out, p.policy);
    putF64(out, p.param);
    putU8(out, p.paramSet ? 1 : 0);
    putI64(out, p.horizonMinutes);
    putStr(out, p.scenarioText);
    return out;
}

std::string
encodeCancel(const CancelPayload &p)
{
    std::string out;
    putU64(out, p.targetId);
    return out;
}

std::string
encodeAccepted(const AcceptedPayload &p)
{
    std::string out;
    putU8(out, p.cacheHit ? 1 : 0);
    putU32(out, p.queueDepth);
    return out;
}

std::string
encodeRetryAfter(const RetryAfterPayload &p)
{
    std::string out;
    putU32(out, p.retryAfterMs);
    return out;
}

std::string
encodeStatus(const StatusPayload &p)
{
    std::string out;
    putI64(out, p.minutesDone);
    putI64(out, p.horizonMinutes);
    return out;
}

std::string
encodeResult(const ResultPayload &p)
{
    std::string out;
    putStr(out, p.report);
    return out;
}

std::string
encodeCancelled(const CancelledPayload &p)
{
    std::string out;
    putI64(out, p.minutesDone);
    return out;
}

std::string
encodeDrained(const DrainedPayload &p)
{
    std::string out;
    putI64(out, p.minutesDone);
    putStr(out, p.checkpointPath);
    return out;
}

std::string
encodeError(const ErrorPayload &p)
{
    std::string out;
    putU32(out, static_cast<std::uint32_t>(p.code));
    putStr(out, p.message);
    return out;
}

std::string
encodeStatsReport(const StatsReportPayload &p)
{
    std::string out;
    putStr(out, p.metricsJson);
    return out;
}

std::string
encodeCancelAck(const CancelAckPayload &p)
{
    std::string out;
    putU8(out, p.found ? 1 : 0);
    return out;
}

// ---- Decoding ----

util::Result<FrameHeader>
decodeHeader(const unsigned char (&buf)[kHeaderBytes])
{
    std::uint32_t magic, version, type, deadline_ms, payload_len;
    std::uint64_t request_id;
    std::memcpy(&magic, buf + 0, 4);
    std::memcpy(&version, buf + 4, 4);
    std::memcpy(&type, buf + 8, 4);
    std::memcpy(&request_id, buf + 12, 8);
    std::memcpy(&deadline_ms, buf + 20, 4);
    std::memcpy(&payload_len, buf + 24, 4);

    if (magic != kRpcMagic) {
        return ECOLO_ERROR(util::ErrorCode::ParseError,
                           "bad frame magic 0x", std::hex, magic,
                           " (not an edgetherm-rpc peer?)");
    }
    if (version != kRpcVersion) {
        return ECOLO_ERROR(util::ErrorCode::ParseError,
                           "unsupported protocol version ", version,
                           " (this build speaks v", kRpcVersion, ")");
    }
    if (!isKnownMessageType(type)) {
        return ECOLO_ERROR(util::ErrorCode::ParseError,
                           "unknown message type ", type);
    }
    if (payload_len > kMaxPayloadBytes) {
        return ECOLO_ERROR(util::ErrorCode::ParseError,
                           "payload length ", payload_len,
                           " exceeds the ", kMaxPayloadBytes,
                           "-byte frame cap");
    }
    FrameHeader header;
    header.type = static_cast<MessageType>(type);
    header.requestId = request_id;
    header.deadlineMs = deadline_ms;
    header.payloadLen = payload_len;
    return header;
}

util::Result<SubmitPayload>
decodeSubmit(const std::string &bytes)
{
    Cursor c(bytes);
    SubmitPayload p;
    const std::uint8_t lane = c.u8();
    if (c.ok() && lane > 1)
        c.fail("bad priority lane ", static_cast<unsigned>(lane));
    p.priority = static_cast<Priority>(lane);
    p.clientId = c.str();
    p.policy = c.str();
    p.param = c.f64();
    p.paramSet = c.u8() != 0;
    p.horizonMinutes = c.i64();
    p.scenarioText = c.str();
    return finishAs(c, std::move(p));
}

util::Result<CancelPayload>
decodeCancel(const std::string &bytes)
{
    Cursor c(bytes);
    CancelPayload p;
    p.targetId = c.u64();
    return finishAs(c, p);
}

util::Result<AcceptedPayload>
decodeAccepted(const std::string &bytes)
{
    Cursor c(bytes);
    AcceptedPayload p;
    p.cacheHit = c.u8() != 0;
    p.queueDepth = c.u32();
    return finishAs(c, p);
}

util::Result<RetryAfterPayload>
decodeRetryAfter(const std::string &bytes)
{
    Cursor c(bytes);
    RetryAfterPayload p;
    p.retryAfterMs = c.u32();
    return finishAs(c, p);
}

util::Result<StatusPayload>
decodeStatus(const std::string &bytes)
{
    Cursor c(bytes);
    StatusPayload p;
    p.minutesDone = c.i64();
    p.horizonMinutes = c.i64();
    return finishAs(c, p);
}

util::Result<ResultPayload>
decodeResult(const std::string &bytes)
{
    Cursor c(bytes);
    ResultPayload p;
    p.report = c.str();
    return finishAs(c, std::move(p));
}

util::Result<CancelledPayload>
decodeCancelled(const std::string &bytes)
{
    Cursor c(bytes);
    CancelledPayload p;
    p.minutesDone = c.i64();
    return finishAs(c, p);
}

util::Result<DrainedPayload>
decodeDrained(const std::string &bytes)
{
    Cursor c(bytes);
    DrainedPayload p;
    p.minutesDone = c.i64();
    p.checkpointPath = c.str();
    return finishAs(c, std::move(p));
}

util::Result<ErrorPayload>
decodeError(const std::string &bytes)
{
    Cursor c(bytes);
    ErrorPayload p;
    const std::uint32_t code = c.u32();
    if (c.ok() && (code < 1 || code > 6))
        c.fail("bad rpc error code ", code);
    p.code = static_cast<RpcErrorCode>(code);
    p.message = c.str();
    return finishAs(c, std::move(p));
}

util::Result<StatsReportPayload>
decodeStatsReport(const std::string &bytes)
{
    Cursor c(bytes);
    StatsReportPayload p;
    p.metricsJson = c.str();
    return finishAs(c, std::move(p));
}

util::Result<CancelAckPayload>
decodeCancelAck(const std::string &bytes)
{
    Cursor c(bytes);
    CancelAckPayload p;
    p.found = c.u8() != 0;
    return finishAs(c, p);
}

// ---- Connection I/O ----

util::Result<Frame>
readFrame(util::TcpConnection &conn)
{
    unsigned char header_buf[kHeaderBytes];
    ECOLO_TRY_VOID(conn.readAll(header_buf, kHeaderBytes));
    auto header = decodeHeader(header_buf);
    if (!header.ok())
        return header.error();

    Frame frame;
    frame.type = header.value().type;
    frame.requestId = header.value().requestId;
    frame.deadlineMs = header.value().deadlineMs;
    frame.payload.resize(header.value().payloadLen);
    if (header.value().payloadLen > 0) {
        ECOLO_TRY_VOID(
            conn.readAll(frame.payload.data(), frame.payload.size()));
    }
    return frame;
}

util::Result<void>
writeFrame(util::TcpConnection &conn, MessageType type,
           std::uint64_t request_id, const std::string &payload,
           std::uint32_t deadline_ms)
{
    const std::string frame =
        encodeFrame(type, request_id, payload, deadline_ms);
    return conn.writeAll(frame.data(), frame.size());
}

} // namespace ecolo::serve
