#include "serve/result_cache.hh"

#include <cstring>

namespace ecolo::serve {

std::uint64_t
fnv1a64(const std::string &bytes, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

CacheKey
makeCacheKey(const KeyValueConfig &scenario, const std::string &policy,
             double param, std::int64_t horizon_minutes,
             thermal::KernelMode kernel_mode,
             std::uint32_t schema_version)
{
    // Canonical request byte string. Fields are separated by '\x1f'
    // (never produced by the scenario grammar) so adjacent fields can't
    // alias; the scenario contributes key-sorted key=value lines.
    std::string canon;
    canon.reserve(256);
    canon += "edgetherm-rpc-v1\x1f";
    canon += "schema=" + std::to_string(schema_version) + "\x1f";
    canon += "policy=" + policy + "\x1f";
    std::uint64_t param_bits = 0;
    std::memcpy(&param_bits, &param, sizeof(param_bits));
    canon += "param=" + std::to_string(param_bits) + "\x1f";
    canon += "horizon=" + std::to_string(horizon_minutes) + "\x1f";
    canon += "kernel=";
    canon += thermal::kernelModeName(kernel_mode);
    canon += '\x1f';
    for (const auto &[key, value] : scenario.entries()) {
        canon += key;
        canon += '=';
        canon += value;
        canon += '\x1f';
    }
    return CacheKey{fnv1a64(canon)};
}

ResultCache::ResultCache(std::size_t max_bytes, std::size_t max_entries)
    : maxBytes_(max_bytes), maxEntries_(max_entries)
{}

std::optional<std::string>
ResultCache::lookup(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key.hash);
    if (it == index_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return it->second->bytes;
}

void
ResultCache::insert(const CacheKey &key, std::string bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (bytes.size() > maxBytes_) {
        ++stats_.oversizeRejected;
        return;
    }
    const auto it = index_.find(key.hash);
    if (it != index_.end()) {
        // Deterministic engine: same key means same bytes. Refresh
        // recency, keep the original value (preserves byte identity
        // even if a bugged caller hands us different bytes).
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    bytes_ += bytes.size();
    lru_.push_front(Entry{key.hash, std::move(bytes)});
    index_[key.hash] = lru_.begin();
    ++stats_.insertions;
    evictWhileOverBudgetLocked();
}

void
ResultCache::evictWhileOverBudgetLocked()
{
    while (!lru_.empty() &&
           (bytes_ > maxBytes_ || lru_.size() > maxEntries_)) {
        const Entry &victim = lru_.back();
        bytes_ -= victim.bytes.size();
        index_.erase(victim.key);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = stats_;
    s.entries = lru_.size();
    s.bytes = bytes_;
    return s;
}

} // namespace ecolo::serve
