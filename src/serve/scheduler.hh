/**
 * @file
 * The serving request scheduler: bounded admission, two priority lanes,
 * per-client fairness, backpressure, and cooperative cancellation, with
 * execution on a util::ThreadPool.
 *
 * Dispatch policy:
 *
 * - Two lanes. Interactive (one-shot what-if runs) has strict priority
 *   over Batch (year-long campaigns), so the interactive lane can never
 *   starve behind background work. To keep batch work from starving
 *   *completely* under a sustained interactive flood, every
 *   `batchBoostEvery`-th consecutive interactive dispatch yields one
 *   batch slot when batch work is waiting.
 * - Within a lane, clients are served round-robin: each client has its
 *   own FIFO, and one job is taken per client turn, so a client that
 *   dumps 100 requests cannot delay another client's first request by
 *   more than one job.
 * - Admission is bounded: past `maxQueued` waiting jobs, submit()
 *   returns QueueFull and the server translates that into RETRY_AFTER
 *   backpressure instead of buffering unboundedly.
 * - Cancellation is cooperative: every job carries a CancelToken that
 *   the job's body (ultimately Simulation's per-minute cancel check)
 *   polls. Cancelling a queued job does not unqueue it -- the job is
 *   dispatched and observes its token immediately, so the completion
 *   path (responding CANCELLED to the waiting client) always runs and
 *   no pool task is ever leaked.
 *
 * Execution: run() dispatches the worker loops onto a dedicated
 * util::ThreadPool via one long parallelFor (each index is a persistent
 * worker), so the serving stack reuses the pool's thread lifecycle,
 * telemetry task hooks, and worker naming rather than growing a second
 * threading substrate.
 */

#ifndef ECOLO_SERVE_SCHEDULER_HH
#define ECOLO_SERVE_SCHEDULER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "util/parallel.hh"

namespace ecolo::serve {

/** Scheduling lane. */
enum class Lane : int
{
    Interactive = 0,
    Batch = 1,
};

/** Why a job was asked to stop. */
enum class CancelReason : int
{
    None = 0,
    Client = 1,   //!< explicit CANCEL request
    Drain = 2,    //!< server shutting down; checkpoint if configured
    Deadline = 3, //!< request budget expired (queued or mid-run)
};

/** Shared cooperative-cancellation flag; cheap to copy into jobs. */
class CancelToken
{
  public:
    CancelToken() : state_(std::make_shared<std::atomic<int>>(0)) {}

    bool cancelled() const
    { return state_->load(std::memory_order_acquire) != 0; }

    CancelReason reason() const
    {
        return static_cast<CancelReason>(
            state_->load(std::memory_order_acquire));
    }

    /** First cancellation wins; later calls with another reason no-op. */
    void cancel(CancelReason reason) const
    {
        int expected = 0;
        state_->compare_exchange_strong(expected,
                                        static_cast<int>(reason),
                                        std::memory_order_acq_rel);
    }

  private:
    std::shared_ptr<std::atomic<int>> state_;
};

class Scheduler
{
  public:
    /** A job body; must poll the token to honor cancellation. */
    using JobFn = std::function<void(const CancelToken &)>;

    struct Options
    {
        std::size_t numWorkers = 2;
        std::size_t maxQueued = 32;     //!< waiting jobs across both lanes
        std::size_t batchBoostEvery = 4; //!< see file comment
    };

    enum class Admission
    {
        Admitted,
        QueueFull, //!< backpressure: retry later
        Draining,  //!< shutting down: no new work
    };

    struct SubmitResult
    {
        Admission admission = Admission::Admitted;
        std::size_t queueDepth = 0; //!< waiting jobs after this submit
    };

    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t admitted = 0;
        std::uint64_t rejectedQueueFull = 0;
        std::uint64_t rejectedDraining = 0;
        std::uint64_t completed = 0;
        std::uint64_t cancelled = 0; //!< completed with a cancelled token
        /** Jobs whose deadline had already expired at dispatch. */
        std::uint64_t deadlineExpiredQueued = 0;
        std::uint64_t dispatchedInteractive = 0;
        std::uint64_t dispatchedBatch = 0;
        std::size_t queuedNow = 0;
        std::size_t runningNow = 0;
    };

    explicit Scheduler(Options options);

    /**
     * Drains (without cancelling). The thread calling run() must have
     * been joined before the Scheduler is destroyed.
     */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Enqueue a job under (lane, client). @param id must be unique among
     * live jobs (the server's request id). Never blocks. An optional
     * deadline makes the timeout cooperative end to end: a job whose
     * deadline has passed by the time a worker picks it up is dispatched
     * with its token already cancelled (CancelReason::Deadline), so the
     * body answers the client immediately instead of simulating.
     */
    SubmitResult
    submit(std::uint64_t id, Lane lane, const std::string &client_id,
           JobFn job,
           std::optional<std::chrono::steady_clock::time_point>
               deadline = std::nullopt);

    /**
     * Flag a queued or running job's token. Returns false when the id
     * is unknown (never admitted, or already completed).
     */
    bool cancel(std::uint64_t id, CancelReason reason);

    /**
     * Execute jobs until drain() completes. Blocks the calling thread
     * (it participates as a worker); call from a dedicated thread.
     */
    void run();

    /**
     * Stop admitting new work and let run() return once the queues are
     * empty and every in-flight job finished. With cancel_in_flight,
     * all queued and running jobs are flagged with CancelReason::Drain
     * first so long campaigns stop at the next simulated minute
     * (and can checkpoint) instead of running to their horizon.
     */
    void drain(bool cancel_in_flight);

    Stats stats() const;
    std::size_t queuedNow() const;

  private:
    /** Per-lane client-fair queue: round-robin of per-client FIFOs. */
    struct Job
    {
        std::uint64_t id = 0;
        Lane lane = Lane::Interactive;
        JobFn fn;
        CancelToken token;
        std::optional<std::chrono::steady_clock::time_point> deadline;
    };

    struct LaneQueue
    {
        std::map<std::string, std::deque<Job>> perClient;
        std::deque<std::string> rotation; //!< clients with queued work
        std::size_t size = 0;

        bool empty() const { return size == 0; }
        void push(const std::string &client, Job job);
        Job pop(); //!< precondition: !empty()
    };

    bool popNextLocked(Job &out);
    void workerLoop();

    const Options options_;
    util::ThreadPool pool_;

    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    LaneQueue lanes_[2];
    std::map<std::uint64_t, CancelToken> liveTokens_;
    std::size_t interactiveStreak_ = 0;
    bool draining_ = false;
    Stats stats_;
};

} // namespace ecolo::serve

#endif // ECOLO_SERVE_SCHEDULER_HH
