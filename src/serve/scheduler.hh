/**
 * @file
 * The serving request scheduler: bounded admission, two priority lanes,
 * per-client fairness, backpressure, and cooperative cancellation, with
 * execution on a util::ThreadPool.
 *
 * Dispatch policy:
 *
 * - Two lanes. Interactive (one-shot what-if runs) has strict priority
 *   over Batch (year-long campaigns), so the interactive lane can never
 *   starve behind background work. To keep batch work from starving
 *   *completely* under a sustained interactive flood, every
 *   `batchBoostEvery`-th consecutive interactive dispatch yields one
 *   batch slot when batch work is waiting.
 * - Within a lane, clients are served round-robin: each client has its
 *   own FIFO, and one job is taken per client turn, so a client that
 *   dumps 100 requests cannot delay another client's first request by
 *   more than one job.
 * - Admission is bounded: past `maxQueued` waiting jobs, submit()
 *   returns QueueFull and the server translates that into RETRY_AFTER
 *   backpressure instead of buffering unboundedly.
 * - Cancellation is cooperative: every job carries a CancelToken that
 *   the job's body (ultimately Simulation's per-minute cancel check)
 *   polls. Cancelling a queued job does not unqueue it -- the job is
 *   dispatched and observes its token immediately, so the completion
 *   path (responding CANCELLED to the waiting client) always runs and
 *   no pool task is ever leaked.
 * - Cross-request micro-batching. A job submitted with a nonzero
 *   batch key (the lane-compatibility key: same formation rule as
 *   core::LaneBatchRunner group packing) is dispatched through the
 *   configured BatchFn executor instead of its own JobFn. When a
 *   worker pops such a job it first sweeps the queues for every other
 *   job with the same key (up to batchMaxLanes total), then -- batch
 *   lane only, unless bypass is disabled -- waits up to batchWindow
 *   for more compatible arrivals before dispatching the whole set as
 *   one executor call. The executor packs the members into one SoA
 *   LaneThermalBank pass and fans per-lane results back per request.
 *   Client fairness is unchanged for scalar jobs; a swept batch
 *   member may run ahead of its own client's earlier non-matching
 *   jobs (batching trades strict per-client FIFO order within a
 *   client for lane occupancy; cross-client ordering is unaffected).
 *
 * Execution: run() dispatches the worker loops onto a dedicated
 * util::ThreadPool via one long parallelFor (each index is a persistent
 * worker), so the serving stack reuses the pool's thread lifecycle,
 * telemetry task hooks, and worker naming rather than growing a second
 * threading substrate.
 */

#ifndef ECOLO_SERVE_SCHEDULER_HH
#define ECOLO_SERVE_SCHEDULER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/latency.hh"
#include "util/parallel.hh"

namespace ecolo::serve {

/** Scheduling lane. */
enum class Lane : int
{
    Interactive = 0,
    Batch = 1,
};

/** Why a job was asked to stop. */
enum class CancelReason : int
{
    None = 0,
    Client = 1,   //!< explicit CANCEL request
    Drain = 2,    //!< server shutting down; checkpoint if configured
    Deadline = 3, //!< request budget expired (queued or mid-run)
};

/** Shared cooperative-cancellation flag; cheap to copy into jobs. */
class CancelToken
{
  public:
    CancelToken() : state_(std::make_shared<std::atomic<int>>(0)) {}

    bool cancelled() const
    { return state_->load(std::memory_order_acquire) != 0; }

    CancelReason reason() const
    {
        return static_cast<CancelReason>(
            state_->load(std::memory_order_acquire));
    }

    /** First cancellation wins; later calls with another reason no-op. */
    void cancel(CancelReason reason) const
    {
        int expected = 0;
        state_->compare_exchange_strong(expected,
                                        static_cast<int>(reason),
                                        std::memory_order_acq_rel);
    }

  private:
    std::shared_ptr<std::atomic<int>> state_;
};

class Scheduler
{
  public:
    /** A job body; must poll the token to honor cancellation. */
    using JobFn = std::function<void(const CancelToken &)>;

    /**
     * One member of a micro-batch handed to the BatchFn executor. The
     * payload is the opaque per-request state the submitter attached
     * (the server's pending-run record); the executor downcasts it.
     */
    struct BatchItem
    {
        std::uint64_t id = 0;
        Lane lane = Lane::Interactive;
        CancelToken token;
        std::shared_ptr<void> payload;
    };

    /**
     * Executes one micro-batch (1..batchMaxLanes compatible members).
     * Must answer every member -- including ones whose token is
     * already cancelled -- exactly as the scalar path would.
     */
    using BatchFn = std::function<void(std::vector<BatchItem> &)>;

    struct Options
    {
        std::size_t numWorkers = 2;
        std::size_t maxQueued = 32;     //!< waiting jobs across both lanes
        std::size_t batchBoostEvery = 4; //!< see file comment
        /** Max members per micro-batch (SIMD lane count upstream). */
        std::size_t batchMaxLanes = 8;
        /**
         * How long a dispatching worker may hold an under-full batch
         * open for more compatible arrivals. Zero batches only what is
         * already queued (purely opportunistic).
         */
        std::chrono::milliseconds batchWindow{0};
        /** Interactive-lane seeds dispatch immediately, never waiting. */
        bool batchWindowInteractiveBypass = true;
        /** Executor for batchable jobs; required by submitBatchable(). */
        BatchFn batchExecutor;
    };

    enum class Admission
    {
        Admitted,
        QueueFull, //!< backpressure: retry later
        Draining,  //!< shutting down: no new work
    };

    struct SubmitResult
    {
        Admission admission = Admission::Admitted;
        std::size_t queueDepth = 0; //!< waiting jobs after this submit
    };

    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t admitted = 0;
        std::uint64_t rejectedQueueFull = 0;
        std::uint64_t rejectedDraining = 0;
        std::uint64_t completed = 0;
        std::uint64_t cancelled = 0; //!< completed with a cancelled token
        /** Jobs whose deadline had already expired at dispatch. */
        std::uint64_t deadlineExpiredQueued = 0;
        std::uint64_t dispatchedInteractive = 0;
        std::uint64_t dispatchedBatch = 0;
        /** Executor dispatches with >= 2 members. */
        std::uint64_t batchesDispatched = 0;
        /** Jobs that ran in a >= 2 member batch. */
        std::uint64_t batchedJobs = 0;
        /** Batchable jobs that ran alone (no compatible peer found). */
        std::uint64_t batchScalarFallbacks = 0;
        /** Dispatches that held the batching window open. */
        std::uint64_t batchWindowWaits = 0;
        /** Largest batch ever dispatched. */
        std::size_t batchMaxOccupancy = 0;
        std::size_t queuedNow = 0;
        std::size_t runningNow = 0;
    };

    explicit Scheduler(Options options);

    /**
     * Drains (without cancelling). The thread calling run() must have
     * been joined before the Scheduler is destroyed.
     */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Enqueue a job under (lane, client). @param id must be unique among
     * live jobs (the server's request id). Never blocks. An optional
     * deadline makes the timeout cooperative end to end: a job whose
     * deadline has passed by the time a worker picks it up is dispatched
     * with its token already cancelled (CancelReason::Deadline), so the
     * body answers the client immediately instead of simulating.
     */
    SubmitResult
    submit(std::uint64_t id, Lane lane, const std::string &client_id,
           JobFn job,
           std::optional<std::chrono::steady_clock::time_point>
               deadline = std::nullopt);

    /**
     * Enqueue a batchable job: instead of a body, it carries the
     * lane-compatibility key (nonzero; equal keys may share one SoA
     * pass) and an opaque payload for the BatchFn executor, which
     * must be configured in Options. Admission, fairness, deadlines
     * and cancellation behave exactly as for submit().
     */
    SubmitResult
    submitBatchable(std::uint64_t id, Lane lane,
                    const std::string &client_id,
                    std::uint64_t batch_key,
                    std::shared_ptr<void> payload,
                    std::optional<std::chrono::steady_clock::time_point>
                        deadline = std::nullopt);

    /**
     * Flag a queued or running job's token. Returns false when the id
     * is unknown (never admitted, or already completed).
     */
    bool cancel(std::uint64_t id, CancelReason reason);

    /**
     * Execute jobs until drain() completes. Blocks the calling thread
     * (it participates as a worker); call from a dedicated thread.
     */
    void run();

    /**
     * Stop admitting new work and let run() return once the queues are
     * empty and every in-flight job finished. With cancel_in_flight,
     * all queued and running jobs are flagged with CancelReason::Drain
     * first so long campaigns stop at the next simulated minute
     * (and can checkpoint) instead of running to their horizon.
     */
    void drain(bool cancel_in_flight);

    Stats stats() const;
    std::size_t queuedNow() const;

    /** Time jobs spent queued before dispatch, per lane (microseconds). */
    telemetry::TailLatency::Snapshot queueWaitSnapshot(Lane lane) const;
    /** Members per executor dispatch (the lanes-occupied histogram). */
    telemetry::TailLatency::Snapshot batchOccupancySnapshot() const;
    /** Extra delay the batching window added per dispatch (microseconds). */
    telemetry::TailLatency::Snapshot batchWindowDelaySnapshot() const;

  private:
    /** Per-lane client-fair queue: round-robin of per-client FIFOs. */
    struct Job
    {
        std::uint64_t id = 0;
        Lane lane = Lane::Interactive;
        JobFn fn;
        std::uint64_t batchKey = 0; //!< nonzero routes to batchExecutor
        std::shared_ptr<void> payload;
        CancelToken token;
        std::optional<std::chrono::steady_clock::time_point> deadline;
        std::chrono::steady_clock::time_point enqueued;
    };

    struct LaneQueue
    {
        std::map<std::string, std::deque<Job>> perClient;
        std::deque<std::string> rotation; //!< clients with queued work
        std::size_t size = 0;

        bool empty() const { return size == 0; }
        void push(const std::string &client, Job job);
        Job pop(); //!< precondition: !empty()
    };

    bool popNextLocked(Job &out);
    SubmitResult submitLocked(const std::string &client_id, Job entry);
    void noteDispatchLocked(Job &job);
    std::size_t collectPeersLocked(std::uint64_t key, std::size_t max,
                                   std::vector<Job> &out);
    void gatherBatchLocked(const Job &seed, std::vector<Job> &peers,
                           std::unique_lock<std::mutex> &lock);
    void workerLoop();

    const Options options_;
    util::ThreadPool pool_;

    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    LaneQueue lanes_[2];
    std::map<std::uint64_t, CancelToken> liveTokens_;
    std::size_t interactiveStreak_ = 0;
    bool draining_ = false;
    Stats stats_;
    telemetry::TailLatency queueWait_[2];
    telemetry::TailLatency batchOccupancy_;
    telemetry::TailLatency batchWindowDelay_;
};

} // namespace ecolo::serve

#endif // ECOLO_SERVE_SCHEDULER_HH
