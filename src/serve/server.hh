/**
 * @file
 * edgetherm-serve: the long-running simulation server.
 *
 * Wires the edgetherm-rpc-v2 protocol, the priority scheduler, and the
 * content-addressed result cache into one drainable service:
 *
 * - an acceptor thread polls the loopback listener and hands each
 *   connection to a short-lived handler thread;
 * - SUBMIT handlers parse + validate the scenario up front (errors are
 *   answered without touching the scheduler), consult the cache
 *   (hit -> ACCEPTED{cacheHit} + the cached RESULT bytes immediately),
 *   and otherwise admit the run, handing the connection to the job so
 *   STATUS/RESULT frames stream from the worker that simulates;
 * - drain (SIGTERM or a SHUTDOWN frame) stops admission, lets accepted
 *   work finish -- or, when a drain spool directory is configured,
 *   cancels in-flight runs at the next simulated minute and checkpoints
 *   them via the PR-2 checkpoint layer, answering DRAINED with the
 *   checkpoint path -- then joins every thread.
 *
 * Serving statistics are kept in plain atomically-updated structs
 * (always on) and mirrored into the telemetry registry as serve.* by
 * metricsJson(), so a --metrics-out dump carries them alongside the
 * engine's own stats.
 */

#ifndef ECOLO_SERVE_SERVER_HH
#define ECOLO_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hh"
#include "core/setup_cache.hh"
#include "serve/journal.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/scheduler.hh"
#include "telemetry/latency.hh"
#include "util/result.hh"
#include "util/socket.hh"

namespace ecolo::core {
class Simulation;
}

namespace ecolo::serve {

/**
 * A SUBMIT payload validated and canonicalized into a runnable form:
 * the applied simulation config, the content-addressed cache key, and
 * the scheduling lane. Shared by the in-process server (admission and
 * journal replay) and the HTTP gateway, whose coordinator needs the
 * same validation and the same cache key to shard requests onto the
 * worker that will cache them.
 */
struct PreparedSubmit
{
    core::SimulationConfig config;
    CacheKey key;
    Lane lane = Lane::Interactive;
};

/**
 * Validate + canonicalize a SUBMIT payload: policy/horizon checks,
 * scenario parse/apply, default param fill-in, cache key derivation.
 * Mutates `request` (clientId default, param default) exactly like the
 * server's own admission path, so a forwarded payload hashes
 * identically on the worker.
 */
util::Result<PreparedSubmit>
prepareSubmitPayload(SubmitPayload &request,
                     std::int64_t max_horizon_minutes);

struct ServerOptions
{
    std::uint16_t port = 0;        //!< 0 = ephemeral; see port()
    std::size_t numWorkers = 2;    //!< concurrent simulations
    std::size_t maxQueued = 32;    //!< admission bound (both lanes)
    std::size_t batchBoostEvery = 4;
    /**
     * Cross-request micro-batching: lane-compatible admitted runs
     * (same server count, thermal key, and horizon) share one SoA
     * LaneThermalBank pass and one process-wide core::SetupCache.
     * Responses stay byte-identical to the scalar path. Off restores
     * the one-job-per-worker dispatch exactly as before.
     */
    bool batching = true;
    /** Members per micro-batch (clamped to the SIMD lane count). */
    std::size_t batchMaxLanes = 8;
    /**
     * How long a batch-lane dispatch may hold an under-full batch open
     * for more compatible arrivals. Interactive requests never wait.
     */
    std::uint32_t batchWindowMs = 2;
    std::size_t cacheMaxBytes = 32u << 20;
    std::size_t cacheMaxEntries = 1024;
    /** RETRY_AFTER hint handed to backpressured clients. */
    std::uint32_t retryAfterMs = 250;
    /** STATUS streaming granularity (simulated minutes). */
    std::int64_t statusEveryMinutes = 10080;
    /** Max accepted request horizon. */
    std::int64_t maxHorizonMinutes = 366L * 24 * 60 * 100;
    /** Kill idle/stuck request reads after this long. */
    int receiveTimeoutMs = 30000;
    /**
     * When non-empty, drain checkpoints in-flight runs into this
     * directory (request-<id>.ckpt) instead of running them to their
     * horizon.
     */
    std::string drainCheckpointDir;
    /**
     * When non-empty, admitted requests are journaled (write-ahead,
     * fdatasync'd before ACCEPTED) into `<journalDir>/requests.wal`,
     * and a restarted server replays admitted-but-unfinished requests
     * so their results land in the cache byte-identically.
     */
    std::string journalDir;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, then start the scheduler and acceptor threads. */
    util::Result<void> start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Begin the drain sequence; idempotent, returns immediately. */
    void requestDrain();

    /** True once a drain was requested (signal or SHUTDOWN frame). */
    bool drainRequested() const
    { return draining_.load(std::memory_order_acquire); }

    /** True from start() until the drain completed. */
    bool running() const
    { return running_.load(std::memory_order_acquire); }

    /** Block until the drain completed and every thread was joined. */
    void waitUntilStopped();

    /** Introspection for tests and the stats endpoint. */
    ResultCache::Stats cacheStats() const { return cache_.stats(); }
    Scheduler::Stats schedulerStats() const { return scheduler_.stats(); }
    /** Zeroed counters when batching (and thus the cache) is off. */
    core::SetupCache::Counters setupCacheCounters() const
    {
        return setupCache_ ? setupCache_->counters()
                           : core::SetupCache::Counters{};
    }

    /** Journal counters (zeros when no journalDir is configured). */
    struct JournalStats
    {
        std::uint64_t recovered = 0; //!< pending found at startup
        std::uint64_t replayed = 0;  //!< replays that reached an outcome
        std::uint64_t pending = 0;   //!< recovered minus replayed
        std::uint64_t appendFailures = 0;
    };
    JournalStats journalStats() const;

    /** Per-lane request latency (submit receipt -> terminal frame). */
    telemetry::TailLatency::Snapshot latencySnapshot(Lane lane) const
    { return latency_[static_cast<int>(lane)].snapshot(); }

    /** Requests answered with ErrorReply{DeadlineExceeded}. */
    std::uint64_t deadlineExceededCount() const
    { return deadlineExceeded_.load(std::memory_order_relaxed); }

    /**
     * Mirror serve.* stats into the telemetry registry and render the
     * edgetherm-metrics-v1 JSON document.
     */
    std::string metricsJson() const;

  private:
    void acceptLoop();
    void handleConnection(std::shared_ptr<util::TcpConnection> conn);
    void handleSubmit(std::shared_ptr<util::TcpConnection> conn,
                      const Frame &frame);
    /** prepareSubmitPayload with this server's horizon bound. */
    util::Result<PreparedSubmit> prepareRequest(SubmitPayload &request);
    /**
     * Run one admitted simulation. `conn` may be null (journal replay):
     * all frame writes are skipped, but the cache fill, journal outcome,
     * and latency accounting still happen.
     */
    void runSimulationJob(
        std::shared_ptr<util::TcpConnection> conn,
        std::uint64_t request_id, const SubmitPayload &request,
        const core::SimulationConfig &config, const CacheKey &key,
        const CancelToken &token,
        std::optional<std::chrono::steady_clock::time_point> deadline,
        std::chrono::steady_clock::time_point received);
    /**
     * Run one micro-batch of admitted simulations as lanes of a
     * LaneBatchRunner (the scheduler's BatchFn). Every member is
     * answered exactly as runSimulationJob would: same frames, same
     * journal outcomes, same cache fills, byte-identical reports.
     */
    void runSimulationBatch(std::vector<Scheduler::BatchItem> &items);
    /**
     * Policy construction + Simulation + cooperative cancel check, the
     * common prologue of the scalar and batched paths. Null after an
     * error (already answered and journaled).
     */
    std::unique_ptr<core::Simulation> startSimulation(
        const std::shared_ptr<util::TcpConnection> &conn,
        std::uint64_t request_id, const SubmitPayload &request,
        const core::SimulationConfig &config, const CancelToken &token,
        std::optional<std::chrono::steady_clock::time_point> deadline,
        std::chrono::steady_clock::time_point received);
    /**
     * Terminal handling once a run stopped simulating (cancelled,
     * drained, deadline, or horizon reached): frames, checkpoint,
     * cache fill, journal outcome, latency. Shared verbatim by the
     * scalar and batched paths so responses cannot diverge.
     */
    void concludeSimulation(
        const std::shared_ptr<util::TcpConnection> &conn,
        std::uint64_t request_id, const SubmitPayload &request,
        const core::SimulationConfig &config, const CacheKey &key,
        const CancelToken &token, core::Simulation &sim,
        std::chrono::steady_clock::time_point received);
    void replayRecovered();
    void recordLatency(Lane lane,
                       std::chrono::steady_clock::time_point received);
    void recordJournalOutcome(std::uint64_t request_id,
                              JournalOutcome outcome);
    void reapHandlerThreadsLocked();

    const ServerOptions options_;
    util::TcpListener listener_;
    std::uint16_t port_ = 0;

    Scheduler scheduler_;
    ResultCache cache_;
    /** Process-wide setup artifact cache; null when batching is off. */
    std::shared_ptr<core::SetupCache> setupCache_;
    std::unique_ptr<RequestJournal> journal_;
    mutable telemetry::TailLatency latency_[2];

    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};
    std::atomic<std::uint64_t> nextRequestId_{1};

    std::atomic<std::uint64_t> connectionsAccepted_{0};
    std::atomic<std::uint64_t> protocolErrors_{0};
    std::atomic<std::uint64_t> deadlineExceeded_{0};
    std::atomic<std::uint64_t> journalRecovered_{0};
    std::atomic<std::uint64_t> journalReplayed_{0};
    std::atomic<std::uint64_t> journalAppendFailures_{0};

    std::thread schedulerThread_;
    std::thread acceptThread_;

    /** Short-lived per-connection handlers; reaped as they finish. */
    struct Handler
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };
    std::mutex handlersMutex_;
    std::vector<Handler> handlers_;

    std::mutex stopMutex_; //!< serializes waitUntilStopped joins
    bool stopped_ = false;
};

} // namespace ecolo::serve

#endif // ECOLO_SERVE_SERVER_HH
