#include "serve/server.hh"

#include <algorithm>
#include <future>
#include <sstream>
#include <utility>

#include "core/checkpoint.hh"
#include "core/engine.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "telemetry/telemetry.hh"
#include "util/keyvalue.hh"
#include "util/logging.hh"
#include "util/sim_time.hh"

namespace ecolo::serve {

namespace {

/** Accept-poll period; bounds drain latency of an idle acceptor. */
constexpr int kAcceptPollMs = 200;

bool
isKnownPolicy(const std::string &name)
{
    return name == "standby" || name == "random" || name == "myopic" ||
           name == "foresighted" || name == "oneshot";
}

RpcErrorCode
toRpcError(util::ErrorCode code)
{
    switch (code) {
    case util::ErrorCode::ParseError:
        return RpcErrorCode::ParseError;
    case util::ErrorCode::ValidationError:
        return RpcErrorCode::ValidationError;
    default:
        return RpcErrorCode::Internal;
    }
}

void
replyError(util::TcpConnection &conn, std::uint64_t request_id,
           RpcErrorCode code, const std::string &message)
{
    (void)writeFrame(conn, MessageType::ErrorReply, request_id,
                     encodeError(ErrorPayload{code, message}));
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      scheduler_(Scheduler::Options{options_.numWorkers,
                                    options_.maxQueued,
                                    options_.batchBoostEvery}),
      cache_(options_.cacheMaxBytes, options_.cacheMaxEntries)
{}

Server::~Server()
{
    requestDrain();
    waitUntilStopped();
}

util::Result<void>
Server::start()
{
    auto listener = util::TcpListener::listenLoopback(options_.port);
    if (!listener)
        return listener.error();
    listener_ = listener.take();
    port_ = listener_.port();
    running_.store(true, std::memory_order_release);
    schedulerThread_ = std::thread([this] { scheduler_.run(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    ecolo::inform("edgetherm-serve listening on 127.0.0.1:", port_, " (",
                  options_.numWorkers, " workers, queue bound ",
                  options_.maxQueued, ")");
    return {};
}

void
Server::requestDrain()
{
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel))
        return;
    // With a spool dir, in-flight runs stop at the next simulated
    // minute and checkpoint; without one they run to their horizon.
    scheduler_.drain(!options_.drainCheckpointDir.empty());
}

void
Server::waitUntilStopped()
{
    std::lock_guard<std::mutex> lock(stopMutex_);
    if (stopped_)
        return;
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (schedulerThread_.joinable())
        schedulerThread_.join();
    {
        std::lock_guard<std::mutex> handlers_lock(handlersMutex_);
        for (Handler &handler : handlers_) {
            if (handler.thread.joinable())
                handler.thread.join();
        }
        handlers_.clear();
    }
    running_.store(false, std::memory_order_release);
    stopped_ = true;
}

void
Server::reapHandlerThreadsLocked()
{
    auto it = handlers_.begin();
    while (it != handlers_.end()) {
        if (it->done->load(std::memory_order_acquire)) {
            it->thread.join();
            it = handlers_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::acceptLoop()
{
    while (!draining_.load(std::memory_order_acquire)) {
        auto accepted = listener_.acceptFor(kAcceptPollMs);
        if (!accepted) {
            if (!draining_.load(std::memory_order_acquire))
                ecolo::warn("serve: accept failed: ",
                            accepted.error().message);
            break;
        }
        if (!accepted.value().has_value())
            continue; // poll timeout: re-check the drain flag
        connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_shared<util::TcpConnection>(
            std::move(*accepted.value()));
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::thread thread([this, conn, done] {
            handleConnection(conn);
            done->store(true, std::memory_order_release);
        });
        std::lock_guard<std::mutex> lock(handlersMutex_);
        reapHandlerThreadsLocked();
        handlers_.push_back(Handler{std::move(thread), std::move(done)});
    }
    // Late connects get a hard refusal instead of an unanswered backlog.
    listener_.close();
}

void
Server::handleConnection(std::shared_ptr<util::TcpConnection> conn)
{
    (void)conn->setReceiveTimeout(options_.receiveTimeoutMs);
    auto frame = readFrame(*conn);
    if (!frame) {
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        replyError(*conn, 0, RpcErrorCode::ParseError,
                   frame.error().message);
        return;
    }

    switch (frame.value().type) {
    case MessageType::Submit:
        handleSubmit(conn, frame.value());
        return;
    case MessageType::Cancel: {
        auto payload = decodeCancel(frame.value().payload);
        if (!payload) {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            replyError(*conn, 0, RpcErrorCode::ParseError,
                       payload.error().message);
            return;
        }
        const std::uint64_t target = payload.value().targetId;
        const bool found =
            scheduler_.cancel(target, CancelReason::Client);
        (void)writeFrame(*conn, MessageType::CancelAck, target,
                         encodeCancelAck(CancelAckPayload{found}));
        return;
    }
    case MessageType::Stats:
        (void)writeFrame(*conn, MessageType::StatsReport, 0,
                         encodeStatsReport(
                             StatsReportPayload{metricsJson()}));
        return;
    case MessageType::Shutdown:
        // Ack first: requestDrain() closes the listener side of the
        // world, but this connection stays answerable.
        (void)writeFrame(*conn, MessageType::ShutdownAck, 0, "");
        requestDrain();
        return;
    default:
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        replyError(*conn, frame.value().requestId,
                   RpcErrorCode::ParseError,
                   std::string("unexpected client frame type ") +
                       toString(frame.value().type));
        return;
    }
}

void
Server::handleSubmit(std::shared_ptr<util::TcpConnection> conn,
                     const Frame &frame)
{
    auto decoded = decodeSubmit(frame.payload);
    if (!decoded) {
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        replyError(*conn, 0, RpcErrorCode::ParseError,
                   decoded.error().message);
        return;
    }
    SubmitPayload request = decoded.take();
    if (request.clientId.empty())
        request.clientId = "anon";

    // Validate everything up front: a request that can't run is
    // answered here and never touches the scheduler or the cache.
    if (!isKnownPolicy(request.policy)) {
        replyError(*conn, 0, RpcErrorCode::ValidationError,
                   "unknown policy '" + request.policy +
                       "' (expected standby|random|myopic|foresighted|"
                       "oneshot)");
        return;
    }
    if (request.horizonMinutes <= 0 ||
        request.horizonMinutes > options_.maxHorizonMinutes) {
        replyError(*conn, 0, RpcErrorCode::ValidationError,
                   "horizon must be in [1, " +
                       std::to_string(options_.maxHorizonMinutes) +
                       "] minutes, got " +
                       std::to_string(request.horizonMinutes));
        return;
    }
    std::istringstream scenario_stream(request.scenarioText);
    auto kv = KeyValueConfig::tryParse(scenario_stream,
                                       "<request scenario>");
    if (!kv) {
        replyError(*conn, 0, RpcErrorCode::ParseError,
                   kv.error().message);
        return;
    }
    core::SimulationConfig config = core::SimulationConfig::paperDefault();
    if (auto applied = core::tryApplyScenario(kv.value(), config);
        !applied) {
        replyError(*conn, 0, toRpcError(applied.error().code),
                   applied.error().message);
        return;
    }
    if (auto valid = config.validated(); !valid) {
        replyError(*conn, 0, RpcErrorCode::ValidationError,
                   valid.error().message);
        return;
    }
    if (!request.paramSet) {
        request.param = core::defaultPolicyParam(request.policy);
        request.paramSet = true;
    }

    // Content address: the canonical scenario (sorted key=value pairs,
    // comments and ordering already gone) + policy + param + horizon +
    // the thermal kernel the applied config resolves to + engine schema
    // version. The kernel is hashed explicitly so a mode switch (even
    // via a changed server default, with no thermal.kernel in the
    // scenario text) can never serve a stale cross-kernel result.
    const CacheKey key =
        makeCacheKey(kv.value(), request.policy, request.param,
                     request.horizonMinutes, config.thermalMode);
    const std::uint64_t id =
        nextRequestId_.fetch_add(1, std::memory_order_relaxed);

    if (auto hit = cache_.lookup(key); hit.has_value()) {
        (void)writeFrame(*conn, MessageType::Accepted, id,
                         encodeAccepted(AcceptedPayload{true, 0}));
        (void)writeFrame(*conn, MessageType::ResultReport, id,
                         encodeResult(ResultPayload{*hit}));
        return;
    }

    // The job must not stream before this handler has written ACCEPTED
    // (two threads interleaving frames on one socket would corrupt the
    // stream), so it waits on a gate the handler opens after replying.
    auto gate = std::make_shared<std::promise<void>>();
    std::shared_future<void> accepted_sent = gate->get_future().share();
    const Lane lane = request.priority == Priority::Batch
                          ? Lane::Batch
                          : Lane::Interactive;
    auto job = [this, conn, id, request, config, key,
                accepted_sent](const CancelToken &token) {
        accepted_sent.wait();
        runSimulationJob(conn, id, request, config, key, token);
    };
    const Scheduler::SubmitResult submitted =
        scheduler_.submit(id, lane, request.clientId, std::move(job));
    switch (submitted.admission) {
    case Scheduler::Admission::Admitted: {
        const std::uint32_t ahead =
            submitted.queueDepth > 0
                ? static_cast<std::uint32_t>(submitted.queueDepth - 1)
                : 0;
        (void)writeFrame(*conn, MessageType::Accepted, id,
                         encodeAccepted(AcceptedPayload{false, ahead}));
        gate->set_value();
        return;
    }
    case Scheduler::Admission::QueueFull:
        (void)writeFrame(
            *conn, MessageType::RetryAfter, id,
            encodeRetryAfter(RetryAfterPayload{options_.retryAfterMs}));
        return;
    case Scheduler::Admission::Draining:
        replyError(*conn, id, RpcErrorCode::Unavailable,
                   "server is draining; no new work accepted");
        return;
    }
}

void
Server::runSimulationJob(std::shared_ptr<util::TcpConnection> conn,
                         std::uint64_t request_id,
                         const SubmitPayload &request,
                         const core::SimulationConfig &config,
                         const CacheKey &key, const CancelToken &token)
{
    auto policy =
        core::tryMakePolicyByName(config, request.policy, request.param);
    if (!policy) {
        // Unreachable after handleSubmit's validation; fail loudly
        // rather than silently if the name sets ever diverge.
        replyError(*conn, request_id, RpcErrorCode::Internal,
                   policy.error().message);
        return;
    }
    core::Simulation sim(config, policy.take());
    sim.setCancelCheck([token] { return token.cancelled(); });

    const MinuteIndex horizon = request.horizonMinutes;
    while (sim.now() < horizon && !token.cancelled()) {
        const MinuteIndex chunk = std::min<MinuteIndex>(
            options_.statusEveryMinutes, horizon - sim.now());
        sim.run(chunk);
        // A failed STATUS write means the client went away; keep
        // simulating anyway so the completed run still fills the cache.
        if (sim.now() < horizon && !token.cancelled())
            (void)writeFrame(*conn, MessageType::Status, request_id,
                             encodeStatus(
                                 StatusPayload{sim.now(), horizon}));
    }

    if (token.cancelled()) {
        if (token.reason() == CancelReason::Drain &&
            !options_.drainCheckpointDir.empty()) {
            const std::string path = options_.drainCheckpointDir +
                                     "/request-" +
                                     std::to_string(request_id) +
                                     ".ckpt";
            if (auto saved = core::saveSimulationCheckpoint(
                    path, sim, request.policy);
                !saved) {
                ecolo::warn("serve: drain checkpoint for request ",
                            request_id,
                            " failed: ", saved.error().message);
                replyError(*conn, request_id, RpcErrorCode::Internal,
                           "drain checkpoint failed: " +
                               saved.error().message);
                return;
            }
            (void)writeFrame(
                *conn, MessageType::Drained, request_id,
                encodeDrained(DrainedPayload{sim.now(), path}));
        } else if (token.reason() == CancelReason::Drain) {
            (void)writeFrame(*conn, MessageType::Drained, request_id,
                             encodeDrained(DrainedPayload{sim.now(), ""}));
        } else {
            (void)writeFrame(
                *conn, MessageType::Cancelled, request_id,
                encodeCancelled(CancelledPayload{sim.now()}));
        }
        return;
    }

    std::ostringstream report_stream;
    core::ReportInputs inputs;
    inputs.policyName = request.policy;
    inputs.policyParameter = request.param;
    inputs.simulatedDays =
        static_cast<double>(horizon) / static_cast<double>(kMinutesPerDay);
    core::writeMarkdownReport(report_stream, config, sim.metrics(),
                              inputs);
    std::string report = report_stream.str();
    cache_.insert(key, report);
    (void)writeFrame(*conn, MessageType::ResultReport, request_id,
                     encodeResult(ResultPayload{std::move(report)}));
}

std::string
Server::metricsJson() const
{
    // Serving counters are authoritative in their own structs (alive
    // even with telemetry compiled out); the registry is only the dump
    // format, refreshed here.
    auto &reg = telemetry::registry();
    const ResultCache::Stats cache = cache_.stats();
    const Scheduler::Stats sched = scheduler_.stats();
    const auto set = [&reg](const char *name, double value) {
        reg.scalar(name).set(value);
    };
    set("serve.cache.hits", static_cast<double>(cache.hits));
    set("serve.cache.misses", static_cast<double>(cache.misses));
    set("serve.cache.evictions", static_cast<double>(cache.evictions));
    set("serve.cache.insertions", static_cast<double>(cache.insertions));
    set("serve.cache.oversize_rejected",
        static_cast<double>(cache.oversizeRejected));
    set("serve.cache.entries", static_cast<double>(cache.entries));
    set("serve.cache.bytes", static_cast<double>(cache.bytes));
    set("serve.requests.submitted",
        static_cast<double>(sched.submitted));
    set("serve.requests.admitted", static_cast<double>(sched.admitted));
    set("serve.requests.rejected_queue_full",
        static_cast<double>(sched.rejectedQueueFull));
    set("serve.requests.rejected_draining",
        static_cast<double>(sched.rejectedDraining));
    set("serve.requests.completed",
        static_cast<double>(sched.completed));
    set("serve.requests.cancelled",
        static_cast<double>(sched.cancelled));
    set("serve.dispatch.interactive",
        static_cast<double>(sched.dispatchedInteractive));
    set("serve.dispatch.batch", static_cast<double>(sched.dispatchedBatch));
    set("serve.queue.depth", static_cast<double>(sched.queuedNow));
    set("serve.queue.running", static_cast<double>(sched.runningNow));
    set("serve.connections.accepted",
        static_cast<double>(
            connectionsAccepted_.load(std::memory_order_relaxed)));
    set("serve.protocol.errors",
        static_cast<double>(
            protocolErrors_.load(std::memory_order_relaxed)));

    std::ostringstream os;
    reg.dumpJson(os);
    return os.str();
}

} // namespace ecolo::serve
